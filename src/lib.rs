//! # RAMSIS — inter-arrival-aware model selection for inference serving
//!
//! This crate is the facade of a workspace reproducing *"Model Selection
//! for Latency-Critical Inference Serving"* (Mendoza, Romero, Trippel —
//! EuroSys '24). It re-exports every subsystem so downstream users can
//! depend on a single crate:
//!
//! - [`stats`] — numerics: count distributions, special functions, summaries.
//! - [`telemetry`] — lifecycle event traces, decision audit, sinks, analysis.
//! - [`mdp`] — generic finite Markov decision processes and exact solvers.
//! - [`profiles`] — the model zoo and latency/accuracy profiling substrate.
//! - [`workload`] — query-load traces, arrival sampling, load monitoring.
//! - [`core`] — the RAMSIS MDP formulation, policy generation, guarantees.
//! - [`sim`] — the discrete-event inference-serving-system simulator.
//! - [`baselines`] — Jellyfish+, ModelSwitching, INFaaS-style selectors.
//!
//! ## Quickstart
//!
//! ```
//! use ramsis::prelude::*;
//!
//! // 1. Profile a worker: the image-classification model zoo of Fig. 3.
//! let catalog = ModelCatalog::torchvision_image();
//! let slo = Duration::from_millis(150);
//! let profile = WorkerProfile::build(&catalog, slo, ProfilerConfig::default());
//!
//! // 2. Generate a model-selection policy for 100 QPS spread over 4 workers.
//! let config = PolicyConfig::builder(slo)
//!     .workers(4)
//!     .discretization(Discretization::fixed_length(20))
//!     .build();
//! let policy = generate_policy(&profile, &PoissonArrivals::per_second(100.0), &config)
//!     .expect("policy generation succeeds");
//!
//! // 3. Inspect the offline guarantees of §5.1.
//! let g = policy.guarantees();
//! assert!(g.expected_accuracy > 0.0 && g.expected_violation_rate < 1.0);
//! ```
pub use ramsis_baselines as baselines;
pub use ramsis_core as core;
pub use ramsis_mdp as mdp;
pub use ramsis_profiles as profiles;
pub use ramsis_sim as sim;
pub use ramsis_stats as stats;
pub use ramsis_telemetry as telemetry;
pub use ramsis_workload as workload;

/// Convenience re-exports of the items used by almost every RAMSIS program.
pub mod prelude {
    pub use std::time::Duration;

    pub use ramsis_core::{
        generate_policy, Discretization, PoissonArrivals, PolicyConfig, PolicySet, WorkerPolicy,
    };
    pub use ramsis_profiles::{ModelCatalog, ProfilerConfig, WorkerProfile};
    pub use ramsis_sim::{Simulation, SimulationConfig, SimulationReport};
    pub use ramsis_workload::{LoadMonitor, Trace, TraceKind};
}
