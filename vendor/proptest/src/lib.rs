//! Offline stand-in for `proptest`.
//!
//! Samples each strategy with a fixed-seed ChaCha8 stream and runs the
//! test body `cases` times. Differences from upstream, acceptable for
//! this workspace: no shrinking on failure (the panic message carries
//! the case number; re-running is deterministic, so a failing case
//! always reproduces), and `prop_assert!`/`prop_assert_eq!` panic
//! directly instead of returning a `TestCaseError`.

use std::ops::Range;

pub use rand_chacha::ChaCha8Rng;

/// Runner configuration. Only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut ChaCha8Rng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rand::Rng::gen::<u64>(rng) % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut ChaCha8Rng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rand::Rng::gen::<u64>(rng) % span) as $t)
            }
        }
    )*};
}

signed_range_strategy!(i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut ChaCha8Rng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let u = rand::Rng::gen::<f64>(rng);
        // Clamp so half-open stays half-open even after rounding.
        (self.start + u * (self.end - self.start)).min(self.end - f64::EPSILON * self.end.abs())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut ChaCha8Rng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        let u = rand::Rng::gen::<f64>(rng) as f32;
        self.start + u * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// Constant strategies for whole primitive domains.
pub struct Any<T>(std::marker::PhantomData<T>);

impl Strategy for Any<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut ChaCha8Rng) -> u64 {
        rand::Rng::gen::<u64>(rng)
    }
}

impl Strategy for Any<u32> {
    type Value = u32;

    fn generate(&self, rng: &mut ChaCha8Rng) -> u32 {
        rand::Rng::gen::<u32>(rng)
    }
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut ChaCha8Rng) -> bool {
        rand::Rng::gen_bool(rng, 0.5)
    }
}

pub mod num {
    pub mod u64 {
        pub const ANY: crate::Any<u64> = crate::Any(std::marker::PhantomData);
    }

    pub mod u32 {
        pub const ANY: crate::Any<u32> = crate::Any(std::marker::PhantomData);
    }
}

pub mod bool {
    pub const ANY: crate::Any<::core::primitive::bool> = crate::Any(std::marker::PhantomData);
}

pub mod collection {
    use super::{ChaCha8Rng, Strategy};
    use std::ops::Range;

    /// Vec strategy: length sampled from `len`, elements from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Seeds the per-test RNG. Fixed constant: runs are reproducible and a
/// reported failing case number always replays.
pub fn test_rng() -> ChaCha8Rng {
    rand::SeedableRng::seed_from_u64(0x5052_4f50_5445_5354) // "PROPTEST"
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng();
            for __case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let _ = __case;
                $body
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = super::test_rng();
        for _ in 0..1_000 {
            let x = Strategy::generate(&(3u32..9), &mut rng);
            assert!((3..9).contains(&x));
            let f = Strategy::generate(&(0.5f64..2.5), &mut rng);
            assert!((0.5..2.5).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = super::test_rng();
        for _ in 0..200 {
            let v = Strategy::generate(
                &super::collection::vec((0.0f64..1.0, 0u64..5), 2..7),
                &mut rng,
            );
            assert!((2..7).contains(&v.len()));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = super::test_rng();
        let mut b = super::test_rng();
        for _ in 0..100 {
            assert_eq!(
                Strategy::generate(&super::num::u64::ANY, &mut a),
                Strategy::generate(&super::num::u64::ANY, &mut b)
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_round_trip(x in 1u64..100, flip in crate::bool::ANY, ) {
            prop_assert!(x >= 1 && x < 100);
            prop_assert_eq!(flip, flip);
        }
    }
}
