//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors a minimal serialization framework with the same *spelling*
//! as serde — `#[derive(Serialize, Deserialize)]`,
//! `use serde::{Serialize, Deserialize}` — but a much simpler design:
//! values round-trip through a self-describing [`Value`] tree, and
//! `serde_json` renders/parses that tree. Only the surface this
//! workspace uses is provided: derived impls for structs and enums
//! (externally tagged), plus impls for primitives, strings, tuples,
//! `Vec`, `Option`, and string-keyed maps. No attributes
//! (`#[serde(...)]`) are supported.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer that fits `i64` (negative numbers land here).
    I64(i64),
    /// Non-negative integer (the parser prefers this for `0..=u64::MAX`).
    U64(u64),
    /// Any other number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object value.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The single `(key, value)` entry of a one-entry object
    /// (externally tagged enums serialize this way).
    pub fn single_entry(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Object(entries) if entries.len() == 1 => {
                Some((entries[0].0.as_str(), &entries[0].1))
            }
            _ => None,
        }
    }

    /// The elements of an array value.
    pub fn elements(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Error for a missing struct field.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        DeError(format!("{ty}: missing field `{field}`"))
    }

    /// Error for a type mismatch.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {}", got.kind()))
    }

    /// Error for an unknown enum variant.
    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        DeError(format!("{ty}: unknown variant `{variant}`"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types renderable to a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the serialized value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructable from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs a value from the tree.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] describing the first mismatch.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls -------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                        *f as u64
                    }
                    other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$t>::try_from(n).map_err(|_| {
                    DeError(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) if *n <= i64::MAX as u64 => *n as i64,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| {
                    DeError(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::Null => Ok(<$t>::NAN), // non-finite serializes as null
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

// 128-bit integers exceed the JSON number model (`u64`/`i64`/`f64`),
// so they round-trip through their decimal string representation,
// which is exact at any width. Small values parsed back from plain
// JSON numbers are also accepted.
macro_rules! impl_int128 {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Str(self.to_string())
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Str(s) => s.parse().map_err(|_| {
                        DeError(format!("invalid {} literal `{s}`", stringify!($t)))
                    }),
                    Value::U64(n) => <$t>::try_from(*n).map_err(|_| {
                        DeError(format!("integer {n} out of range for {}", stringify!($t)))
                    }),
                    Value::I64(n) => <$t>::try_from(*n).map_err(|_| {
                        DeError(format!("integer {n} out of range for {}", stringify!($t)))
                    }),
                    other => Err(DeError::expected("128-bit integer string", other)),
                }
            }
        }
    )*};
}
impl_int128!(u128, i128);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(DeError::expected("single-character string", other)),
        }
    }
}

// ---- composite impls -------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.elements()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.elements()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items: Vec<T>| DeError(format!("expected {N} elements, got {}", items.len())))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.elements().ok_or_else(|| DeError::expected("tuple array", v))?;
                let expected = [$( stringify!($i) ),+].len();
                if items.len() != expected {
                    return Err(DeError(format!(
                        "expected tuple of {expected}, got {} elements",
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$i])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Map keys. JSON object keys are always strings, so non-string keys
/// (integers) round-trip through their decimal representation — the
/// same convention real `serde_json` uses.
pub trait MapKey: Ord + Sized {
    fn to_key(&self) -> String;
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_string())
    }
}

macro_rules! impl_int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse().map_err(|_| {
                    DeError(format!("invalid {} map key `{key}`", stringify!($t)))
                })
            }
        }
    )*};
}

impl_int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl<K: MapKey + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Deterministic key order keeps serialized output reproducible.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: MapKey + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        let some: Option<u32> = Some(5);
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&some.to_value()), Ok(Some(5)));
        assert_eq!(Option::<u32>::from_value(&none.to_value()), Ok(None));
    }

    #[test]
    fn tuple_round_trip() {
        let t = (1.5f64, "x".to_string(), 3u64);
        let v = t.to_value();
        let back: (f64, String, u64) = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn integer_widths_check_range() {
        let v = Value::U64(300);
        assert!(u8::from_value(&v).is_err());
        assert_eq!(u16::from_value(&v), Ok(300));
    }

    #[test]
    fn float_accepts_integral_value() {
        assert_eq!(f64::from_value(&Value::U64(2)), Ok(2.0));
    }

    #[test]
    fn u128_round_trips_through_strings() {
        let big: u128 = u128::MAX - 7;
        assert_eq!(big.to_value(), Value::Str(big.to_string()));
        assert_eq!(u128::from_value(&big.to_value()), Ok(big));
        // Plain JSON numbers are accepted for small values.
        assert_eq!(u128::from_value(&Value::U64(9)), Ok(9));
        assert!(u128::from_value(&Value::I64(-1)).is_err());
    }

    #[test]
    fn vecdeque_round_trip() {
        let dq: std::collections::VecDeque<f64> = [1.0, 2.5, -3.0].into_iter().collect();
        let back: std::collections::VecDeque<f64> = Deserialize::from_value(&dq.to_value()).unwrap();
        assert_eq!(back, dq);
    }
}
