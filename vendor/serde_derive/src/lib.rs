//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! `serde` stand-in.
//!
//! Parses the derive input by hand (the offline environment has no
//! `syn`/`quote`) and emits impls of the stand-in's Value-based traits.
//! Supported shapes — the only ones this workspace uses:
//!
//! - structs with named fields, tuple structs, unit structs
//! - enums whose variants are unit, tuple, or struct-like
//!
//! Not supported (compile error): generics, lifetimes, unions, and any
//! `#[serde(...)]` attribute.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of a struct body or an enum variant's payload.
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// A parsed derive input.
enum Input {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    let body = match &parsed {
        Input::Struct { name, fields } => serialize_struct(name, fields),
        Input::Enum { name, variants } => serialize_enum(name, variants),
    };
    body.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    let body = match &parsed {
        Input::Struct { name, fields } => deserialize_struct(name, fields),
        Input::Enum { name, variants } => deserialize_enum(name, variants),
    };
    body.parse().expect("generated Deserialize impl parses")
}

// ---- parsing ---------------------------------------------------------

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic type `{name}`");
    }
    // Locate the body group (brace for structs/enums, paren for tuple
    // structs); a plain `;` means a unit struct.
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("unsupported struct body for `{name}`: {other:?}"),
            };
            Input::Struct { name, fields }
        }
        "enum" => {
            let Some(TokenTree::Group(g)) = tokens.get(i) else {
                panic!("expected enum body for `{name}`");
            };
            Input::Enum {
                name,
                variants: parse_variants(g.stream()),
            }
        }
        other => panic!("cannot derive for `{other}` items"),
    }
}

/// Advances past `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' plus the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, got {other:?}"),
    }
}

/// Skips tokens until a comma at angle-bracket depth zero, consuming
/// the comma. Groups `() [] {}` are single tokens, so only `<>` needs
/// explicit depth tracking.
fn skip_to_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle: i32 = 0;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            return fields;
        }
        fields.push(expect_ident(&tokens, &mut i));
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field name, got {other:?}"),
        }
        skip_to_comma(&tokens, &mut i);
    }
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut count = 0;
    loop {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            return count;
        }
        count += 1;
        skip_to_comma(&tokens, &mut i);
    }
}

fn parse_variants(body: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            return variants;
        }
        let name = expect_ident(&tokens, &mut i);
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        variants.push((name, fields));
        // Skips an explicit discriminant if present, up to the comma.
        skip_to_comma(&tokens, &mut i);
    }
}

// ---- code generation -------------------------------------------------

fn serialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec::Vec::from([{}]))",
                entries.join(", ")
            )
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "::serde::Value::Array(::std::vec::Vec::from([{}]))",
                items.join(", ")
            )
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn serialize_enum(name: &str, variants: &[(String, Fields)]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|(v, fields)| match fields {
            Fields::Unit => format!(
                "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
            ),
            Fields::Named(names) => {
                let bind = names.join(", ");
                let entries: Vec<String> = names
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), \
                             ::serde::Serialize::to_value({f}))"
                        )
                    })
                    .collect();
                format!(
                    "{name}::{v} {{ {bind} }} => ::serde::Value::Object(::std::vec::Vec::from([\
                     (::std::string::String::from(\"{v}\"), \
                     ::serde::Value::Object(::std::vec::Vec::from([{}])))])),",
                    entries.join(", ")
                )
            }
            Fields::Tuple(n) => {
                let bind: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                let items: Vec<String> = bind
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                format!(
                    "{name}::{v}({}) => ::serde::Value::Object(::std::vec::Vec::from([\
                     (::std::string::String::from(\"{v}\"), \
                     ::serde::Value::Array(::std::vec::Vec::from([{}])))])),",
                    bind.join(", "),
                    items.join(", ")
                )
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         match self {{ {} }}\n\
         }}\n\
         }}",
        arms.join("\n")
    )
}

fn deserialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => format!("::std::result::Result::Ok({name})"),
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")\
                         .ok_or_else(|| ::serde::DeError::missing_field(\"{name}\", \"{f}\"))?)?,"
                    )
                })
                .collect();
            format!(
                "if !matches!(v, ::serde::Value::Object(_)) {{\n\
                 return ::std::result::Result::Err(::serde::DeError::expected(\"struct {name}\", v));\n\
                 }}\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join("\n")
            )
        }
        Fields::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                .collect();
            format!(
                "let items = v.elements()\
                 .ok_or_else(|| ::serde::DeError::expected(\"tuple struct {name}\", v))?;\n\
                 if items.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::DeError(::std::format!(\
                 \"{name}: expected {n} elements, got {{}}\", items.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(" ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}

fn deserialize_enum(name: &str, variants: &[(String, Fields)]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|(_, f)| matches!(f, Fields::Unit))
        .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .map(|(v, fields)| match fields {
            Fields::Unit => format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"),
            Fields::Named(names) => {
                let inits: Vec<String> = names
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(inner.field(\"{f}\")\
                             .ok_or_else(|| ::serde::DeError::missing_field(\"{name}::{v}\", \"{f}\"))?)?,"
                        )
                    })
                    .collect();
                format!(
                    "\"{v}\" => ::std::result::Result::Ok({name}::{v} {{ {} }}),",
                    inits.join(" ")
                )
            }
            Fields::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                    .collect();
                format!(
                    "\"{v}\" => {{\n\
                     let items = inner.elements()\
                     .ok_or_else(|| ::serde::DeError::expected(\"variant {name}::{v}\", inner))?;\n\
                     if items.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::DeError(::std::format!(\
                     \"{name}::{v}: expected {n} elements, got {{}}\", items.len())));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}::{v}({}))\n\
                     }}",
                    inits.join(" ")
                )
            }
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         if let ::serde::Value::Str(s) = v {{\n\
         return match s.as_str() {{\n\
         {}\n\
         other => ::std::result::Result::Err(::serde::DeError::unknown_variant(\"{name}\", other)),\n\
         }};\n\
         }}\n\
         let (tag, inner) = v.single_entry()\
         .ok_or_else(|| ::serde::DeError::expected(\"enum {name}\", v))?;\n\
         let _ = inner;\n\
         match tag {{\n\
         {}\n\
         other => ::std::result::Result::Err(::serde::DeError::unknown_variant(\"{name}\", other)),\n\
         }}\n\
         }}\n\
         }}",
        unit_arms.join("\n"),
        tagged_arms.join("\n")
    )
}
