//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *minimal* API surface it actually uses: [`RngCore`],
//! the [`Rng`] extension trait (`gen::<f64>()`, `gen_range` over float
//! ranges, `gen_bool`), and [`SeedableRng`] with the standard
//! SplitMix64-based `seed_from_u64` expansion. Algorithms match the
//! upstream semantics where determinism matters (53-bit uniform floats,
//! SplitMix64 seed derivation); they are NOT a cryptographic or
//! statistical drop-in for every upstream API.

use std::ops::Range;

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable by [`Rng::gen`] (a tiny subset of upstream's
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Samples one value from the generator.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision — the upstream
    /// `Standard` float algorithm.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty or inverted range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl SampleRange<u64> for Range<u64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "empty or inverted range");
        let span = self.end - self.start;
        // Widening-multiply rejection-free mapping (slightly biased for
        // astronomically large spans; fine for simulation workloads).
        self.start + ((rng.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        (self.start as u64..self.end as u64).sample(rng) as usize
    }
}

impl SampleRange<u32> for Range<u32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> u32 {
        (self.start as u64..self.end as u64).sample(rng) as u32
    }
}

impl SampleRange<i64> for Range<i64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "empty or inverted range");
        let span = (self.end as i128 - self.start as i128) as u128;
        let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
        (self.start as i128 + off) as i64
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` (e.g. `rng.gen::<f64>()` is uniform
    /// in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of [0, 1]: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator seedable from fixed-size entropy.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the upstream
    /// default), then constructs the generator.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Namespaced re-exports mirroring upstream module paths.
pub mod rngs {
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Counter(42);
        for _ in 0..1_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1_000 {
            let x = rng.gen_range(-0.12..0.12);
            assert!((-0.12..0.12).contains(&x));
            let n = rng.gen_range(3usize..9);
            assert!((3..9).contains(&n));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
