//! Offline stand-in for `criterion`.
//!
//! Runs each benchmark closure `sample_size` times after a single
//! warm-up pass and prints the mean/min wall-clock time per iteration.
//! No statistical analysis, outlier rejection, or HTML reports — just
//! enough to keep `cargo bench` (and `cargo test --benches`) compiling
//! and producing comparable numbers offline.

use std::time::{Duration, Instant};

/// Benchmark harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs `f` with a [`Bencher`] and prints a one-line summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(id);
        self
    }

    /// Upstream calls this when the harness finishes; a no-op here.
    pub fn final_summary(&mut self) {}
}

/// How `iter_batched` amortizes setup cost. The stand-in always runs
/// one routine call per setup call, which matches `PerIteration` and is
/// a conservative (never-cheating) stand-in for the batched variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to benchmark closures; collects timing samples.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, running it repeatedly until either the sample
    /// count or the measurement-time budget is reached.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run without recording until the warm-up budget is
        // spent (at least once).
        let warm_start = Instant::now();
        loop {
            std::hint::black_box(routine());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t.elapsed());
            if budget_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }

    /// Times `routine` with a fresh `setup()` product per call; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        loop {
            let input = setup();
            std::hint::black_box(routine(input));
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t.elapsed());
            if budget_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }

    /// Like `iter_batched`, but the routine takes the input by
    /// mutable reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(&mut setup, |mut input| routine(&mut input), _size);
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{id:<40} mean {:>12?}  min {:>12?}  ({} samples)",
            mean,
            min,
            self.samples.len()
        );
    }
}

/// Re-export for code that imports `criterion::black_box` instead of
/// `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_records() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        let mut count = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                count += 1;
            })
        });
        assert!(count >= 3, "routine ran {count} times");
    }

    #[test]
    fn iter_batched_fresh_input_each_call() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        let mut setups = 0u64;
        let mut runs = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8, 2, 3]
                },
                |v| {
                    runs += 1;
                    v.len()
                },
                BatchSize::PerIteration,
            )
        });
        assert_eq!(setups, runs, "one setup per routine call");
    }
}
