//! Offline stand-in for `serde_json`: a JSON writer/parser over the
//! vendored `serde::Value` tree.
//!
//! Covers exactly the API this workspace uses — [`to_string`],
//! [`to_string_pretty`], [`from_str`] — with the properties the tests
//! rely on: integers are emitted exactly, floats use Rust's shortest
//! round-trip `Display`, non-finite floats serialize as `null` (and
//! deserialize back as NaN via the `f64` impl), and object key order
//! is preserved so same-input serialization is byte-identical.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization failure.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to an indented (2-space) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---- writer ----------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Rust's `{}` for f64 is shortest round-trip; make sure
                // the token stays a JSON number (Display can emit "1"
                // for 1.0, which must not re-parse as an integer and
                // change the report's serialized shape on round-trip —
                // the f64 deserializer accepts integers, so "1" is
                // fine; keep it as-is for byte-stable output).
                out.push_str(&x.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one go.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{08}'),
                        Some(b'f') => s.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error("unpaired surrogate".into()));
                                }
                                let second = self.parse_hex4()?;
                                0x10000
                                    + (((first - 0xD800) as u32) << 10)
                                    + (second - 0xDC00) as u32
                            } else {
                                first as u32
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u escape".into()))?,
                            );
                            continue; // parse_hex4 already advanced pos
                        }
                        other => {
                            return Err(Error(format!(
                                "invalid escape {:?} at byte {}",
                                other.map(|c| c as char),
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error("invalid \\u escape".into()))?;
        let n = u16::from_str_radix(hex, 16).map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos += 4;
        Ok(n)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            // Exact integers: prefer U64 (the workspace's counters are
            // unsigned); negatives fall back to I64; anything wider
            // than 64 bits degrades to f64.
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
    }

    #[test]
    fn float_shortest_round_trip() {
        for x in [0.1f64, 1.0 / 3.0, 1e-9, 123456.789, f64::MAX, f64::MIN_POSITIVE] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {s}");
        }
    }

    #[test]
    fn non_finite_floats_become_null_then_nan() {
        let s = to_string(&f64::NAN).unwrap();
        assert_eq!(s, "null");
        let back: f64 = from_str(&s).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "line1\nline2\t\"quoted\" \\ slash \u{1F600} \u{07}".to_string();
        let s = to_string(&original).unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn unicode_escapes_parse() {
        let back: String = from_str("\"\\u0041\\ud83d\\ude00\"").unwrap();
        assert_eq!(back, "A\u{1F600}");
    }

    #[test]
    fn vectors_and_options() {
        let v = vec![1u64, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&s).unwrap(), v);

        let none: Option<f64> = None;
        assert_eq!(to_string(&none).unwrap(), "null");
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<f64>>("2.5").unwrap(), Some(2.5));
    }

    #[test]
    fn tuples_and_nested() {
        let pairs: Vec<(String, u64)> = vec![("a".into(), 1), ("b".into(), 2)];
        let s = to_string(&pairs).unwrap();
        assert_eq!(s, "[[\"a\",1],[\"b\",2]]");
        let back: Vec<(String, u64)> = from_str(&s).unwrap();
        assert_eq!(back, pairs);
    }

    #[test]
    fn pretty_printing_is_indented_and_parseable() {
        let pairs: Vec<(String, u64)> = vec![("a".into(), 1)];
        let s = to_string_pretty(&pairs).unwrap();
        assert!(s.contains('\n'));
        let back: Vec<(String, u64)> = from_str(&s).unwrap();
        assert_eq!(back, pairs);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("42 garbage").is_err());
        assert!(from_str::<Vec<u64>>("[1,2").is_err());
    }

    #[test]
    fn compact_output_is_deterministic() {
        let v = vec![(String::from("k"), 1u64), (String::from("j"), 2u64)];
        assert_eq!(to_string(&v).unwrap(), to_string(&v).unwrap());
    }
}
