//! Offline stand-in for `rand_chacha`: deterministic ChaCha-based RNGs.
//!
//! Implements the real ChaCha block function (IETF variant, 32-byte
//! key, 64-bit block counter) at 8, 12, and 20 rounds. Streams are
//! fully deterministic from the seed; `seed_from_u64` uses the
//! SplitMix64 expansion from the vendored `rand` crate, so same-seed
//! runs reproduce bit-for-bit across platforms. The exact keystream is
//! not guaranteed to match upstream `rand_chacha` word-for-word (the
//! workspace only relies on determinism, never on specific values).

use rand::{RngCore, SeedableRng};

/// ChaCha quarter round.
#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Generic ChaCha core parameterized by the round count.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ChaChaCore<const ROUNDS: usize> {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14).
    counter: u64,
    /// Current block's output words.
    block: [u32; 16],
    /// Next unconsumed word in `block` (16 = exhausted).
    index: usize,
}

impl<const ROUNDS: usize> ChaChaCore<ROUNDS> {
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

    fn new(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&Self::SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter(&mut state, 0, 4, 8, 12);
            quarter(&mut state, 1, 5, 9, 13);
            quarter(&mut state, 2, 6, 10, 14);
            quarter(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut state, 0, 5, 10, 15);
            quarter(&mut state, 1, 6, 11, 12);
            quarter(&mut state, 2, 7, 8, 13);
            quarter(&mut state, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.block[i] = state[i].wrapping_add(input[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    /// Stream position as `(counter, index)`. The key is not included:
    /// restoring requires re-seeding with the original seed first.
    fn state(&self) -> (u64, usize) {
        (self.counter, self.index)
    }

    fn restore_state(&mut self, counter: u64, index: usize) {
        assert!(index <= 16, "ChaCha word index out of range: {index}");
        if index >= 16 {
            // Block exhausted (or fresh core): no cached words to rebuild.
            self.counter = counter;
            self.index = 16;
        } else {
            // Mid-block: regenerate the block the snapshot was reading.
            // `refill` consumes the counter it starts from, so step back
            // one, rebuild, then drop the already-consumed words.
            self.counter = counter.wrapping_sub(1);
            self.refill();
            self.index = index;
        }
    }
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:literal, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct $name {
            core: ChaChaCore<$rounds>,
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.core.next_word()
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.core.next_word() as u64;
                let hi = self.core.next_word() as u64;
                lo | (hi << 32)
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                Self {
                    core: ChaChaCore::new(seed),
                }
            }
        }

        impl $name {
            /// Stream position as `(block counter, word index)`. Together
            /// with the original seed this pins the exact next output
            /// word, so a checkpointed RNG can be restored bit-for-bit.
            pub fn state(&self) -> (u64, usize) {
                self.core.state()
            }

            /// Restore a position previously returned by [`Self::state`].
            /// The receiver must have been seeded with the same seed as
            /// the snapshotted RNG; only the stream position is restored.
            pub fn restore(&mut self, counter: u64, index: usize) {
                self.core.restore_state(counter, index);
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, 8, "ChaCha with 8 rounds (fast simulation RNG).");
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds.");

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_from_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should differ");
    }

    #[test]
    fn uniform_floats_cover_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn state_restore_continues_stream() {
        // Capture the position at various points (fresh, mid-block,
        // block-boundary) and check a re-seeded RNG restored to that
        // position emits the identical remaining stream.
        for advance in [0usize, 1, 7, 15, 16, 17, 33, 64] {
            let mut orig = ChaCha8Rng::seed_from_u64(99);
            for _ in 0..advance {
                orig.next_u32();
            }
            let (counter, index) = orig.state();
            let mut restored = ChaCha8Rng::seed_from_u64(99);
            restored.restore(counter, index);
            for step in 0..100 {
                assert_eq!(
                    orig.next_u64(),
                    restored.next_u64(),
                    "divergence after advance={advance} step={step}"
                );
            }
        }
    }

    #[test]
    fn restore_is_idempotent_on_fresh_rng() {
        let a = ChaCha8Rng::seed_from_u64(5);
        let (c, i) = a.state();
        assert_eq!((c, i), (0, 16));
        let mut b = ChaCha8Rng::seed_from_u64(5);
        b.restore(c, i);
        assert_eq!(a, b);
    }

    #[test]
    fn chacha20_known_answer() {
        // RFC 8439 §2.3.2 test vector: key 00..1f, counter 1 — but our
        // stand-in pins the nonce to zero and starts at counter 0, so
        // just sanity-check the block function is non-trivial and
        // stable across calls.
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let mut rng = ChaCha20Rng::from_seed(key);
        let first = rng.next_u32();
        let mut rng2 = ChaCha20Rng::from_seed(key);
        assert_eq!(first, rng2.next_u32());
    }
}
