//! Capacity planning from offline guarantees (paper §5.1).
//!
//! "Either users or the ISS resource manager can use the expectation of
//! inference accuracy and latency violation rate provided by RAMSIS to
//! direct resource scaling decisions, e.g., via an offline search for
//! resource configurations that achieve sufficient accuracy and latency
//! SLO violation rate." This example performs exactly that search: the
//! fewest workers whose RAMSIS policy is *expected* to deliver a target
//! accuracy at a target violation bound — no simulation required — and
//! then validates the pick by simulating it.
//!
//! Run with `cargo run --release --example capacity_planning`.

use ramsis::prelude::*;
use ramsis::sim::RamsisScheme;
use ramsis::workload::OracleMonitor;

fn main() {
    let slo = Duration::from_millis(300);
    let load_qps = 2_000.0;
    let accuracy_target = 78.0; // percent
    let violation_budget = 0.01; // 1% of queries

    let catalog = ModelCatalog::torchvision_image();
    let profile = WorkerProfile::build(&catalog, slo, ProfilerConfig::default());
    println!(
        "planning for {load_qps} QPS at SLO {:?}: accuracy >= {accuracy_target}%, \
         violations <= {:.1}%",
        slo,
        violation_budget * 100.0
    );

    // Offline search over worker counts using only the §5.1 expectations.
    let mut chosen = None;
    for workers in (10..=100).step_by(10) {
        let config = PolicyConfig::builder(slo)
            .workers(workers)
            .discretization(Discretization::fixed_length(25))
            .build();
        let policy = generate_policy(&profile, &PoissonArrivals::per_second(load_qps), &config)
            .expect("generation succeeds");
        let g = *policy.guarantees();
        let ok =
            g.expected_accuracy >= accuracy_target && g.expected_violation_rate <= violation_budget;
        println!(
            "{workers:>3} workers: E[accuracy] {:.2}%, E[violations] {:.4}% {}",
            g.expected_accuracy,
            g.expected_violation_rate * 100.0,
            if ok { "<- meets both targets" } else { "" }
        );
        if ok && chosen.is_none() {
            chosen = Some((workers, policy));
        }
    }

    let Some((workers, policy)) = chosen else {
        println!("no configuration up to 100 workers meets the targets");
        return;
    };
    println!("\nchosen configuration: {workers} workers. Validating by simulation...");

    // Validation: the guarantees are a lower bound on accuracy and an
    // upper bound on violations (§5.1), so the simulated run should meet
    // the targets too.
    let set = PolicySet::from_policies(vec![policy]).expect("non-empty");
    let trace = Trace::constant(load_qps, 30.0);
    let sim = Simulation::new(&profile, SimulationConfig::new(workers, slo.as_secs_f64()))
        .expect("valid simulation config");
    let mut scheme = RamsisScheme::new(set);
    let mut monitor = OracleMonitor::new(trace.clone());
    let report = sim.run(&trace, &mut scheme, &mut monitor);
    println!(
        "simulated: accuracy {:.2}% (target {accuracy_target}%), violations {:.4}% \
         (budget {:.1}%)",
        report.accuracy_per_satisfied_query,
        report.violation_rate * 100.0,
        violation_budget * 100.0
    );
    assert!(report.accuracy_per_satisfied_query >= accuracy_target - 0.5);
    assert!(report.violation_rate <= violation_budget + 0.005);
    println!("targets met.");
}
