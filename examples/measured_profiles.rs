//! Driving RAMSIS with *measured* latency profiles in the paper
//! artifact's file layout (§A.2.4: `profiles/MODEL/BATCH.json` sample
//! lists plus an accuracy dictionary).
//!
//! In production you would collect these files by invoking each model
//! 100 times per batch size on your real serving stack; here we
//! synthesize them, write the layout to disk, and then pretend to be
//! the consumer: read the directory back, reduce the raw samples to a
//! worker profile, fit a latency spec per model, and generate a policy.
//!
//! Run with `cargo run --release --example measured_profiles`.

use ramsis::prelude::*;
use ramsis::profiles::{RawProfiles, Task};

fn main() {
    let dir = std::env::temp_dir().join("ramsis_measured_profiles_demo");
    std::fs::remove_dir_all(&dir).ok();

    // --- "Measurement" side: produce the artifact layout. ---
    let catalog = ModelCatalog::bert_text();
    let raw = RawProfiles::synthesize(&catalog, 32, 100, 0xACE);
    raw.write_dir(&dir).expect("write profile files");
    println!(
        "wrote {} models x 32 batch sizes x 100 invocations under {}",
        catalog.len(),
        dir.display()
    );

    // --- Consumer side: everything below only touches the files. ---
    let measured = RawProfiles::read_dir(&dir).expect("read profile files");
    let slo = Duration::from_millis(100);
    let profile = measured
        .to_worker_profile(Task::TextClassification, slo.as_secs_f64(), 95.0)
        .expect("reduce raw samples");
    println!(
        "reduced to a worker profile: {} models, B_w = {}, {} on the Pareto front",
        profile.n_models(),
        profile.max_batch(),
        profile.pareto_models().len()
    );
    for &m in profile.pareto_models() {
        let mp = &profile.models[m];
        println!(
            "  {:<12} accuracy {:.1}%  p95(b=1) {:.1} ms  fitted per-item {:.2} ms",
            mp.name,
            mp.accuracy,
            mp.batches[0].p95_s * 1e3,
            mp.spec.per_item_s * 1e3
        );
    }

    // Generate and deploy a policy from the measured profile.
    let config = PolicyConfig::builder(slo)
        .workers(10)
        .discretization(Discretization::fixed_length(25))
        .build();
    let load = 500.0;
    let set = PolicySet::generate_poisson(&profile, &[load], &config).expect("policy generates");
    println!(
        "policy from measured profiles: E[accuracy] {:.2}%, E[violations] {:.4}%",
        set.policies()[0].guarantees().expected_accuracy,
        set.policies()[0].guarantees().expected_violation_rate * 100.0
    );

    let trace = Trace::constant(load, 20.0);
    let sim = Simulation::new(&profile, SimulationConfig::new(10, slo.as_secs_f64()))
        .expect("valid simulation config");
    let mut scheme = ramsis::sim::RamsisScheme::new(set);
    let mut monitor = ramsis::workload::OracleMonitor::new(trace.clone());
    let report = sim.run(&trace, &mut scheme, &mut monitor);
    println!(
        "simulated on the measured profile: accuracy {:.2}%, violations {:.4}%",
        report.accuracy_per_satisfied_query,
        report.violation_rate * 100.0
    );

    std::fs::remove_dir_all(&dir).ok();
}
