//! Custom arrival distributions (paper §3.1.1).
//!
//! "RAMSIS is parameterized by the arrival distribution": any process
//! with stationary independent increments works. This example generates
//! policies for Poisson traffic and for an over-dispersed negative-
//! binomial Lévy process (burstier counts at the same mean rate), then
//! deploys each against matching and mismatched traffic to show why the
//! arrival model matters.
//!
//! Run with `cargo run --release --example custom_arrivals`.

use ramsis::prelude::*;
use ramsis::sim::RamsisScheme;
use ramsis::stats::NegativeBinomialProcess;
use ramsis::workload::{sample_gamma_renewal_arrivals, OracleMonitor};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let slo = Duration::from_millis(150);
    let workers = 20;
    let load = 800.0;
    let catalog = ModelCatalog::torchvision_image();
    let profile = WorkerProfile::build(&catalog, slo, ProfilerConfig::default());
    let config = PolicyConfig::builder(slo)
        .workers(workers)
        .discretization(Discretization::fixed_length(25))
        .build();

    // Two problem models of the same mean load: Poisson (the paper's
    // default) and an over-dispersed process (variance 3x the mean).
    let poisson = PoissonArrivals::per_second(load);
    let bursty = NegativeBinomialProcess::new(load, 3.0);
    let p_policy = generate_policy(&profile, &poisson, &config).expect("poisson policy");
    let b_policy = generate_policy(&profile, &bursty, &config).expect("bursty policy");
    println!(
        "expected accuracy — Poisson-tuned: {:.2}%, burst-tuned: {:.2}% \
         (the burst-aware policy is more conservative)",
        p_policy.guarantees().expected_accuracy,
        b_policy.guarantees().expected_accuracy
    );

    // Traffic generators: Poisson vs bursty gamma-renewal (CV = 2).
    let trace = Trace::constant(load, 30.0);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let bursty_arrivals = sample_gamma_renewal_arrivals(&trace, 0.25, &mut rng);

    let sim = Simulation::new(&profile, SimulationConfig::new(workers, slo.as_secs_f64()))
        .expect("valid simulation config");
    for (policy_label, policy) in [("poisson-tuned", &p_policy), ("burst-tuned", &b_policy)] {
        let set = PolicySet::from_policies(vec![policy.clone()]).expect("non-empty");
        // Poisson traffic.
        let mut scheme = RamsisScheme::new(set.clone());
        let mut monitor = OracleMonitor::new(trace.clone());
        let r_poisson = sim.run(&trace, &mut scheme, &mut monitor);
        // Bursty traffic (same mean rate, CV = 2 inter-arrivals).
        let mut scheme = RamsisScheme::new(set);
        let mut monitor = OracleMonitor::new(trace.clone());
        let r_bursty = sim.run_arrivals(&bursty_arrivals, &mut scheme, &mut monitor);
        println!(
            "{policy_label:<14} on Poisson traffic: acc {:.2}% viol {:.4}% | \
             on bursty traffic: acc {:.2}% viol {:.4}%",
            r_poisson.accuracy_per_satisfied_query,
            r_poisson.violation_rate * 100.0,
            r_bursty.accuracy_per_satisfied_query,
            r_bursty.violation_rate * 100.0
        );
    }
    println!(
        "takeaway: tuning the MDP's arrival distribution to the real traffic trades \
         accuracy for robustness under burstier-than-Poisson arrivals."
    );
}
