//! Arrival drift and the adaptive runtime: ramp the load across the
//! regime grid, shift the arrival process from Poisson to bursty, and
//! watch adaptive RAMSIS hot-swap to pre-solved regime policies while
//! the stale scheme keeps serving with assumptions that stopped holding.
//!
//! Run with `cargo run --release --example drift_adaptation`.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use ramsis::core::{PolicyLibrary, ShedPolicy};
use ramsis::prelude::*;
use ramsis::sim::{AdaptiveRamsis, RamsisScheme, ServingScheme};
use ramsis::workload::{
    sample_gamma_renewal_arrivals, sample_poisson_arrivals, DispersionClass, DriftDetector,
    DriftDetectorConfig, RegimeGrid, RegimeKey,
};

fn main() {
    // 1. Offline inputs: the image-classification zoo at a 150 ms SLO.
    let workers = 4;
    let slo = Duration::from_millis(150);
    let profile = WorkerProfile::build(
        &ModelCatalog::torchvision_image(),
        slo,
        ProfilerConfig::default(),
    );
    let config = PolicyConfig::builder(slo)
        .workers(workers)
        .discretization(Discretization::fixed_length(10))
        .build();

    // 2. A regime grid over the loads we planned for. Poisson bins are
    //    pre-solved offline; bursty regimes are left to the adaptive
    //    scheme's bounded lazy-solve budget.
    let grid = RegimeGrid::new(vec![120.0, 180.0, 280.0]);
    let library = PolicyLibrary::generate_poisson_bins(
        &profile,
        grid.clone(),
        PolicyLibrary::DEFAULT_BURSTY_DISPERSION,
        &config,
    )
    .expect("policy generation succeeds");
    println!(
        "pre-solved {} poisson regimes over grid edges {:?} QPS",
        library.len(),
        grid.rate_edges_qps
    );

    // 3. The drifting stream: 20 s of Poisson at 100 QPS, a ramp to
    //    250 QPS, then 20 s of bursty gamma-renewal arrivals at the peak.
    let mut rng = ChaCha8Rng::seed_from_u64(0xD21F);
    let steps: Vec<f64> = (0..=10).map(|i| 100.0 + 15.0 * i as f64).collect();
    let mut samples = vec![100.0; 10];
    samples.extend(&steps[1..]);
    let poisson_phases = Trace::from_interval_qps(&samples, 2.0, TraceKind::Custom);
    let mut arrivals = sample_poisson_arrivals(&poisson_phases, &mut rng);
    let bursty_phase = Trace::constant(250.0, 20.0);
    arrivals.extend(
        sample_gamma_renewal_arrivals(&bursty_phase, 0.25, &mut rng)
            .into_iter()
            .map(|t| t + 40.0),
    );
    println!("sampled {} arrivals over 60 s of drift", arrivals.len());

    // 4. Race the adaptive runtime against RAMSIS frozen on the initial
    //    regime's policy set, on the very same arrival times.
    let initial = RegimeKey::new(grid.rate_bin(100.0), DispersionClass::Poisson);
    let stale_set = library.get(initial).expect("initial regime solved").clone();
    let detector = DriftDetector::new(grid, DriftDetectorConfig::default(), initial);
    let mut adaptive = AdaptiveRamsis::new(&profile, config, library, detector)
        .expect("initial regime is solved")
        .with_shed_policy(ShedPolicy::Hopeless);
    let mut stale = RamsisScheme::new(stale_set);

    let mut reports = Vec::new();
    for scheme in [&mut adaptive as &mut dyn ServingScheme, &mut stale] {
        let sim = Simulation::new(
            &profile,
            SimulationConfig::new(workers, slo.as_secs_f64()).seeded(0xD21F),
        )
        .expect("valid simulation config");
        let mut monitor = LoadMonitor::new();
        let report = sim.run_arrivals(&arrivals, scheme, &mut monitor);
        println!(
            "{:>16}: miss-or-loss {:.2}%, violations {:.2}%, accuracy {:.2}%",
            scheme.name(),
            report.miss_or_loss_rate() * 100.0,
            report.violation_rate * 100.0,
            report.accuracy_per_satisfied_query,
        );
        reports.push(report);
    }

    // 5. The adaptive accounting: every committed hot-swap with its
    //    detection delay, and completions attributed per regime.
    let stats = reports[0].adaptive.as_ref().expect("adaptive stats");
    println!(
        "\n{} swaps over {} refits, {} lazy solves, {} hopeless queries shed:",
        stats.swaps, stats.refits, stats.lazy_solves, stats.shed_hopeless
    );
    for e in &stats.regime_events {
        println!(
            "  t={:6.2}s  {} -> {}  (fit {:.0} QPS, dispersion {:.2}, detected in {:.2}s)",
            e.at_s, e.from, e.to, e.fitted_rate_qps, e.fitted_dispersion, e.detection_delay_s
        );
    }
    for r in &stats.per_regime {
        println!(
            "  {:>20}: {} served, {} violations ({:.2}%)",
            r.regime,
            r.served,
            r.violations,
            r.violation_rate() * 100.0
        );
    }

    let gap = (reports[1].miss_or_loss_rate() - reports[0].miss_or_loss_rate()) * 100.0;
    println!("\nadaptation saves {gap:.2} percentage points of miss-or-loss on this stream");
}
