//! Multiple latency SLOs (paper appendix §G): per-SLO central queues,
//! workers partitioned by SLO, independent RAMSIS policies per class.
//!
//! Run with `cargo run --release --example multi_slo`.

use ramsis::prelude::*;
use ramsis::sim::{run_multi_slo, LatencyMode, RamsisScheme, ServingScheme, SloClass};
use ramsis::workload::LoadEstimator;

fn main() {
    let catalog = ModelCatalog::torchvision_image();
    let trace = Trace::constant(1_200.0, 30.0);

    // Two application classes sharing the cluster: an interactive one at
    // 150 ms taking 2/3 of the traffic, and an analytics-style one at
    // 500 ms taking 1/3.
    let tight_profile = WorkerProfile::build(
        &catalog,
        Duration::from_millis(150),
        ProfilerConfig::default(),
    );
    let loose_profile = WorkerProfile::build(
        &catalog,
        Duration::from_millis(500),
        ProfilerConfig::default(),
    );
    let plan = [
        ("150ms", &tight_profile, 16usize, 2.0, 800.0),
        ("500ms", &loose_profile, 8usize, 1.0, 400.0),
    ];

    let mut classes = Vec::new();
    let mut schemes: Vec<Box<dyn ServingScheme>> = Vec::new();
    let mut estimators: Vec<Box<dyn LoadEstimator>> = Vec::new();
    for &(name, profile, workers, weight, class_load) in &plan {
        let config = PolicyConfig::builder(Duration::from_secs_f64(profile.slo()))
            .workers(workers)
            .discretization(Discretization::fixed_length(25))
            .build();
        let set = PolicySet::generate_poisson(profile, &[class_load], &config)
            .expect("policies generate");
        println!(
            "class {name}: {workers} workers, E[accuracy] {:.2}%",
            set.policies()[0].guarantees().expected_accuracy
        );
        classes.push(SloClass {
            name: name.to_string(),
            profile,
            workers,
            weight,
        });
        schemes.push(Box::new(RamsisScheme::new(set)));
        estimators.push(Box::new(LoadMonitor::new()));
    }

    let reports = run_multi_slo(
        &classes,
        &mut schemes,
        &mut estimators,
        &trace,
        LatencyMode::DeterministicP95,
        7,
    );
    for r in &reports {
        println!(
            "{:<18} {:>6} queries  accuracy {:.2}%  violations {:.4}%  p99 {:.1} ms",
            r.scheme,
            r.served,
            r.accuracy_per_satisfied_query,
            r.violation_rate * 100.0,
            r.p99_response_s * 1e3
        );
    }
    // The looser class affords visibly more accurate selections.
    assert!(
        reports[1].accuracy_per_satisfied_query > reports[0].accuracy_per_satisfied_query,
        "the 500 ms class should afford more accurate models"
    );
    println!("the looser SLO class achieved higher accuracy, as expected.");
}
