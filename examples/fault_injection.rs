//! Fault injection and graceful degradation: crash a worker mid-run,
//! slow another down, surge the load — and watch the degradation-aware
//! RAMSIS switch to policies pre-solved for the shrunken cluster while
//! the stale scheme keeps planning for workers it no longer has.
//!
//! Run with `cargo run --release --example fault_injection`.

use ramsis::core::{DegradablePolicySet, FallbackPolicy};
use ramsis::prelude::*;
use ramsis::sim::{CrashPolicy, DegradingRamsis, FaultPlan, RamsisScheme, ServingScheme};

fn main() {
    // 1. Offline inputs: the image-classification zoo at a 150 ms SLO.
    let slo = Duration::from_millis(150);
    let profile = WorkerProfile::build(
        &ModelCatalog::torchvision_image(),
        slo,
        ProfilerConfig::default(),
    );

    // 2. Pre-solve policy sets for every cluster size we may degrade to:
    //    4 workers down to 2, each over a grid of design loads spanning
    //    the base load up to the surged peak.
    let workers = 4;
    let config = PolicyConfig::builder(slo)
        .workers(workers)
        .discretization(Discretization::fixed_length(10))
        .build();
    let sets =
        DegradablePolicySet::generate_poisson(&profile, &[50.0, 100.0, 150.0, 330.0], &config, 2)
            .expect("policy generation succeeds");
    println!(
        "pre-solved policy sets for live-worker counts {:?}",
        sets.worker_counts()
    );

    // 3. The fault schedule. `canonical` bundles the same three faults
    //    the robustness_faults experiment uses; plans are plain data and
    //    serialize, so they can be stored alongside results.
    let plan = FaultPlan::canonical(workers).with_crash_policy(CrashPolicy::RequeueToSurvivors);
    println!(
        "fault plan: {}",
        serde_json::to_string_pretty(&plan).expect("plans serialize")
    );

    // 4. Race the degradation-aware scheme against the stale one on the
    //    same seeded 60 s of 100 QPS traffic.
    let trace = Trace::constant(100.0, 60.0);
    let fallback = FallbackPolicy::fastest(&profile).expect("profile has models");
    let mut degrading = DegradingRamsis::new(sets.clone(), fallback);
    let mut stale = RamsisScheme::new(sets.full().clone());

    let mut reports = Vec::new();
    for scheme in [&mut degrading as &mut dyn ServingScheme, &mut stale] {
        let sim = Simulation::new(
            &profile,
            SimulationConfig::new(workers, slo.as_secs_f64()).seeded(0xFA17),
        )
        .expect("valid simulation config");
        let mut monitor = LoadMonitor::new();
        let report = sim
            .run_faulted(&trace, &plan, scheme, &mut monitor)
            .expect("canonical plan validates");
        println!(
            "{:>18}: miss-or-loss {:.2}%, violations inside fault windows \
             {:.2}% vs {:.2}% outside, worker downtime {:.1} s, \
             {} queries requeued off the crashed worker",
            scheme.name(),
            report.miss_or_loss_rate() * 100.0,
            report.faults.violation_rate_in_fault() * 100.0,
            report.faults.violation_rate_outside_fault() * 100.0,
            report.faults.downtime_s,
            report.faults.crash_requeued,
        );
        reports.push(report);
    }

    let gap = (reports[1].miss_or_loss_rate() - reports[0].miss_or_loss_rate()) * 100.0;
    println!(
        "degradation awareness saves {gap:.2} percentage points of miss-or-loss \
         on this schedule"
    );
}
