//! Serving a production trace: the full RAMSIS online pipeline (paper
//! §3.2 and §7.1) against the Jellyfish+ baseline.
//!
//! A Twitter-like five-minute trace drives Poisson arrivals; the 500 ms
//! moving-average load monitor anticipates load; the worker-level model
//! selectors pick the lowest-load policy covering the anticipated load.
//!
//! Run with `cargo run --release --example production_trace`.

use ramsis::baselines::JellyfishPlus;
use ramsis::prelude::*;
use ramsis::sim::RamsisScheme;

fn main() {
    let task_slo = Duration::from_millis(150);
    let workers = 80;
    let catalog = ModelCatalog::torchvision_image();
    let profile = WorkerProfile::build(&catalog, task_slo, ProfilerConfig::default());

    // The production trace: five minutes of ten-second load intervals,
    // 1,617-3,905 QPS, diurnal ramp with spikes (a drop-in substitute
    // for the paper's Twitter trace file — to use a real file, read it
    // with `Trace::parse_artifact_text`).
    let trace = Trace::twitter_like(42);
    println!(
        "trace: {:.0}s, {:.0}-{:.0} QPS, ~{:.0} queries",
        trace.duration(),
        trace.min_qps(),
        trace.max_qps(),
        trace.expected_queries()
    );

    // Pre-compute a policy set spanning the trace's load range (§3.1.3):
    // online, the monitor's anticipated load selects "the lowest-load MS
    // policy that meets the anticipated query load" (§3.2.2).
    let config = PolicyConfig::builder(task_slo)
        .workers(workers)
        .discretization(Discretization::fixed_length(25))
        .build();
    let loads: Vec<f64> = (0..8).map(|i| 1_000.0 + i as f64 * 3_500.0 / 7.0).collect();
    let t0 = std::time::Instant::now();
    let set = PolicySet::generate_poisson(&profile, &loads, &config).expect("policies generate");
    println!(
        "generated {} policies for loads {:?} in {:.1}s",
        set.len(),
        set.loads().iter().map(|l| l.round()).collect::<Vec<_>>(),
        t0.elapsed().as_secs_f64()
    );

    let sim = Simulation::new(
        &profile,
        SimulationConfig::new(workers, task_slo.as_secs_f64()),
    )
    .expect("valid simulation config");

    let mut ramsis = RamsisScheme::new(set);
    let mut monitor = LoadMonitor::new();
    let r = sim.run(&trace, &mut ramsis, &mut monitor);

    let mut jellyfish = JellyfishPlus::new(&profile, workers);
    let mut monitor = LoadMonitor::new();
    let j = sim.run(&trace, &mut jellyfish, &mut monitor);

    for report in [&r, &j] {
        println!(
            "{:<12} accuracy {:.2}%  violations {:.4}%  mean response {:.1} ms  mean batch {:.2}",
            report.scheme,
            report.accuracy_per_satisfied_query,
            report.violation_rate * 100.0,
            report.mean_response_s * 1e3,
            report.mean_batch
        );
    }
    println!(
        "RAMSIS accuracy gain over Jellyfish+: {:+.2}%",
        r.accuracy_per_satisfied_query - j.accuracy_per_satisfied_query
    );
}
