//! Quickstart: profile a worker, generate a RAMSIS policy, inspect its
//! offline guarantees, and simulate it.
//!
//! Run with `cargo run --release --example quickstart`.

use ramsis::prelude::*;
use ramsis::workload::OracleMonitor;

fn main() {
    // 1. Offline inputs (paper §3.1.1): the image-classification model
    //    zoo of Fig. 3 profiled at a 150 ms response-latency SLO.
    let catalog = ModelCatalog::torchvision_image();
    let slo = Duration::from_millis(150);
    let profile = WorkerProfile::build(&catalog, slo, ProfilerConfig::default());
    println!(
        "profiled {} models; {} on the accuracy-latency Pareto front; B_w = {}",
        profile.n_models(),
        profile.pareto_models().len(),
        profile.max_batch()
    );

    // 2. Offline phase (§3.1): formulate the per-worker MDP for 800 QPS
    //    of Poisson traffic spread round-robin over 20 workers, and solve
    //    it with value iteration.
    let config = PolicyConfig::builder(slo)
        .workers(20)
        .discretization(Discretization::fixed_length(50))
        .build();
    let policy = generate_policy(&profile, &PoissonArrivals::per_second(800.0), &config)
        .expect("policy generation succeeds");
    let g = policy.guarantees();
    println!(
        "policy generated in {:.2}s ({} value-iteration sweeps)",
        policy.generation_seconds, policy.solve_iterations
    );
    println!(
        "offline guarantees (§5.1): expected accuracy >= {:.2}%, \
         expected SLO violation rate <= {:.4}%",
        g.expected_accuracy,
        g.expected_violation_rate * 100.0
    );

    // 3. Peek at a few decisions: lulls afford slower, more accurate
    //    models; exhausted slack forces the fastest.
    for (n, slack_ms) in [(1usize, 150.0), (3, 80.0), (5, 20.0)] {
        match policy.decide(n, slack_ms / 1e3) {
            ramsis::core::Decision::Serve { model, batch } => println!(
                "queue of {n} with {slack_ms:.0} ms slack -> {} (batch {batch})",
                catalog.models[model].name
            ),
            ramsis::core::Decision::Wait => println!("queue of {n}: wait"),
            ramsis::core::Decision::Drop { count } => println!("queue of {n}: drop {count}"),
        }
    }

    // 4. Online phase (§3.2): deploy on 30 seconds of Poisson traffic.
    let set = PolicySet::from_policies(vec![policy]).expect("non-empty set");
    let trace = Trace::constant(800.0, 30.0);
    let sim = Simulation::new(&profile, SimulationConfig::new(20, slo.as_secs_f64()))
        .expect("valid simulation config");
    let mut scheme = ramsis::sim::RamsisScheme::new(set);
    let mut monitor = OracleMonitor::new(trace.clone());
    let report = sim.run(&trace, &mut scheme, &mut monitor);
    println!(
        "simulated {} queries: accuracy per satisfied query {:.2}%, \
         violation rate {:.4}%",
        report.served,
        report.accuracy_per_satisfied_query,
        report.violation_rate * 100.0
    );
    println!("models used online:");
    for (name, count) in &report.per_model {
        println!("  {name}: {count}");
    }
}
