//! `ramsis-cli` — the paper artifact's script interface, in Rust.
//!
//! The artifact (§A) drives everything through four Python scripts;
//! each has a subcommand here with the same flags (§A.5):
//!
//! ```text
//! ramsis-cli gen     --task image --SLO 150 --worker 60 --load 2000
//! ramsis-cli ms-gen  --task image --SLO 150 --worker 60
//! ramsis-cli sim     --m RAMSIS --trace real --task image --SLO 150 --worker 60
//! ramsis-cli plot    --task image --trace real --SLO 150
//! ramsis-cli trace   --kind twitter --out twitter_like.txt
//! ramsis-cli inspect --policy policy_gen/RAMSIS_60_150/2000.json
//! ramsis-cli telemetry trace.jsonl --window 1000
//! ramsis-cli replay trace.jsonl --snapshot ckpt.json
//! ramsis-cli perf --scenario surge_faults --json
//! ramsis-cli spans trace.jsonl --top 10
//! ramsis-cli chaos --runs 100 --seed 7
//! ramsis-cli autoscale --trough 40 --swing 10 --max 8
//! ramsis-cli why decisions.jsonl --telemetry trace.jsonl --top 5
//! ```
//!
//! Policies are written under `policy_gen/METHOD_WORKERS_SLO/LOAD.json`
//! and results under `results/TASK_METHOD_TRACE_SLO_*.json`, matching
//! the artifact's layout (§A.4.2).

pub mod cli_args;
pub mod commands;

/// Dispatches a parsed argument list; returns the process exit code.
pub fn run(args: &[String]) -> i32 {
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return 2;
    };
    // Commands uniformly return `Result<exit code, error>`; most only
    // ever exit 0 on success, but `telemetry` exits 1 on a conservation
    // violation so scripts can gate on trace health.
    let result = match command.as_str() {
        "gen" => commands::gen::run(rest).map(|()| 0),
        "ms-gen" => commands::ms_gen::run(rest).map(|()| 0),
        "sim" => commands::sim::run(rest).map(|()| 0),
        "plot" => commands::plot::run(rest).map(|()| 0),
        "trace" => commands::trace::run(rest).map(|()| 0),
        "inspect" => commands::inspect::run(rest).map(|()| 0),
        "profiles" => commands::profiles::run(rest).map(|()| 0),
        "robustness" => commands::robustness::run(rest).map(|()| 0),
        "drift" => commands::drift::run(rest).map(|()| 0),
        "telemetry" => commands::telemetry::run(rest),
        "replay" => commands::replay::run(rest),
        "perf" => commands::perf::run(rest).map(|()| 0),
        "spans" => commands::spans::run(rest).map(|()| 0),
        "chaos" => commands::chaos::run(rest).map(|()| 0),
        "autoscale" => commands::autoscale::run(rest).map(|()| 0),
        "health" => commands::health::run(rest).map(|()| 0),
        "why" => commands::why::run(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            return 0;
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            2
        }
    }
}

const USAGE: &str = "\
ramsis-cli — RAMSIS policy generation, simulation, and plotting

commands:
  gen      generate RAMSIS model-selection policies (artifact: RAMSIS_gen.py)
  ms-gen   run the ModelSwitching offline profiling sweep (artifact: MS_gen.py)
  sim      simulate an MS&S method on a trace (artifact: run_sim.py)
  plot     summarize and compare simulation results (artifact: plot.py)
  trace    generate or inspect a query-load trace file
  inspect  pretty-print a generated policy
  profiles export/import raw latency profiles (artifact layout, §A.2.4)
  robustness run the canonical fault schedule (crash/slowdown/surge)
           against degrading RAMSIS, stale RAMSIS, and the baselines
  drift    run the canonical drifting stream (rate ramp + dispersion
           shift) against adaptive RAMSIS, stale RAMSIS, and the
           fixed-fastest baseline
  telemetry inspect an event trace recorded with `sim --telemetry
           PATH` — JSONL or compact binary (`.bin`), auto-detected:
           conservation check, event-derived aggregates, sampling
           provenance (exact vs estimated counters), and a per-window
           miss-attribution breakdown (--window MS, --json, --quiet
           prints only violations; exits 1 when conservation fails);
           `telemetry convert IN OUT` losslessly converts JSONL ⇄
           binary
  replay   validate a checkpoint against its telemetry log: snapshot
           canonical-bytes check, log coverage, prefix conservation,
           and counter/clock agreement between the two (LOG.jsonl
           --snapshot CKPT.json, --json; exits 1 on divergence)
  perf     run a pinned scenario with the self-profiler on and print
           the phase flame-table, hot-path counters, and gauges
           (--scenario NAME, --seed S, --json)
  spans    reconstruct per-query spans from an event trace (JSONL or
           binary) and print the critical-path breakdown: segment
           shares, percentiles, and the top-N slowest queries
           (--top N, --json)
  chaos    randomized resilience sweep: run N seeded random
           simulations twice each and check determinism, telemetry
           conservation, counter agreement, hedge consistency,
           admission bounds, scale-event accounting,
           failure-detection bounds, and autoscaler-off/health-off
           bit-identity (--runs N, --seed S, --json; --kill-resume
           adds the durability dimension: kill each run at a random
           checkpoint and demand byte-identical resume; --health
           forces the failure detector on every run)
  autoscale drive the fault-aware autoscaler over a diurnal trace and
           print the pool/brownout summary plus the scaling timeline
           (--trough QPS, --swing X, --min/--max N, --target QPS,
           --warmup S, --frontier for the fixed-vs-elastic
           cost comparison, --json)
  health   run the failure detector (probes, phi-accrual suspicion,
           circuit breakers; DESIGN.md §14) against a canonical
           gray-failure scenario — crash + recovery, heartbeat
           partition, batch-error window — and print the detection
           summary (genuine/false suspicions, lag vs the provable
           bound, breaker transitions) plus the health timeline
           (--workers N, --load QPS, --duration S, --probe MS,
           --events N, --json, --out PATH)
  why      explain SLO violations from recorded provenance: joins a
           decision log (`sim --decisions PATH`) with its telemetry
           trace, span critical paths, burn-rate alerts, and
           scale/brownout/detection-lag/false-suspicion windows into
           ranked root-cause explanations
           (DECISIONS.jsonl --telemetry TRACE.jsonl, --top N,
           --budget FRAC, --json); --counterfactual instead re-runs a
           scenario and quantifies exact per-decision regret by
           forced-alternative replay (--max-decisions N,
           --alternatives N)

common flags (artifact §A.5):
  --task image|text     inference task              [default: image]
  --SLO MS              latency SLO in milliseconds [default: task-specific]
  --worker N            number of workers           [default: 60 image / 20 text]
  --load QPS            query load (gen/sim constant trace)
  --m RAMSIS|JF|MS      method to simulate          [sim only]
  --telemetry PATH      record the event stream (.bin = binary codec)  [sim only]
  --telemetry-sample R  deterministic query-coherent sampling at rate R [sim only]
  --trace real|constant workload kind               [sim/plot]
  --d N                 FLD discretization steps    [default: 25; 100 = paper]
  --out DIR             output root                 [default: .]";
