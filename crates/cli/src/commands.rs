//! Subcommand implementations.

pub mod autoscale;
pub mod chaos;
pub mod drift;
pub mod gen;
pub mod health;
pub mod inspect;
pub mod ms_gen;
pub mod perf;
pub mod plot;
pub mod profiles;
pub mod replay;
pub mod robustness;
pub mod sim;
pub mod spans;
pub mod telemetry;
pub mod trace;
pub mod why;

use std::path::{Path, PathBuf};

use ramsis_profiles::{ModelCatalog, ProfilerConfig, Task, WorkerProfile};

use crate::cli_args::CommonArgs;

/// Builds the worker profile for the parsed flags.
pub(crate) fn build_profile(args: &CommonArgs) -> WorkerProfile {
    let catalog = match args.task {
        Task::ImageClassification => ModelCatalog::torchvision_image(),
        Task::TextClassification => ModelCatalog::bert_text(),
    };
    WorkerProfile::build(
        &catalog,
        std::time::Duration::from_secs_f64(args.slo_s()),
        ProfilerConfig::default(),
    )
}

/// The artifact's policy directory: `policy_gen/METHOD_WORKERS_SLO/`.
pub(crate) fn policy_dir(out: &Path, method: &str, workers: usize, slo_ms: u64) -> PathBuf {
    out.join("policy_gen")
        .join(format!("{method}_{workers}_{slo_ms}"))
}

/// The artifact's result path:
/// `results/TASK_METHOD_TRACE_SLO_WORKERS[_LOAD].json`.
pub(crate) fn result_path(
    out: &Path,
    task: Task,
    method: &str,
    trace: &str,
    slo_ms: u64,
    workers: usize,
    load: Option<f64>,
) -> PathBuf {
    let stem = match load {
        Some(l) => format!("{}_{method}_{trace}_{slo_ms}_{workers}_{l}", task.name()),
        None => format!("{}_{method}_{trace}_{slo_ms}_{workers}", task.name()),
    };
    out.join("results").join(format!("{stem}.json"))
}

/// Writes `value` as pretty JSON, creating directories.
pub(crate) fn write_json_file<T: serde::Serialize>(path: &Path, value: &T) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).map_err(|e| format!("create {}: {e}", parent.display()))?;
    }
    let json = serde_json::to_string_pretty(value).map_err(|e| e.to_string())?;
    std::fs::write(path, json).map_err(|e| format!("write {}: {e}", path.display()))?;
    println!("wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_paths() {
        let out = Path::new("/tmp/o");
        assert_eq!(
            policy_dir(out, "RAMSIS", 60, 150),
            PathBuf::from("/tmp/o/policy_gen/RAMSIS_60_150")
        );
        assert_eq!(
            result_path(
                out,
                Task::ImageClassification,
                "RAMSIS",
                "real",
                150,
                60,
                None
            ),
            PathBuf::from("/tmp/o/results/image_RAMSIS_real_150_60.json")
        );
        assert_eq!(
            result_path(
                out,
                Task::TextClassification,
                "JF",
                "constant",
                100,
                20,
                Some(400.0)
            ),
            PathBuf::from("/tmp/o/results/text_JF_constant_100_20_400.json")
        );
    }
}
