//! `ramsis-cli perf` — run a pinned scenario with the engine's
//! self-profiler attached and print where the time went.
//!
//! ```text
//! ramsis-cli perf [--scenario NAME] [--seed S] [--smoke] [--json]
//! ```
//!
//! Scenarios are the `perf_baseline` matrix (`constant_load`,
//! `surge_faults`, `adaptive_drift`); the output is the phase
//! flame-table (self/total wall time per engine phase), the hot-path
//! counters, the depth gauges, and — for scenarios that solve online —
//! per-solver sweep summaries. `--json` emits the full
//! [`ramsis_telemetry::ProfileReport`] instead.

use ramsis_bench::{run_scenario, PerfBaselineConfig, SCENARIOS};
use serde::Serialize;

/// The `--json` document: headline run facts plus the full profile.
#[derive(Serialize)]
struct PerfSummary {
    scenario: String,
    arrivals: u64,
    served: u64,
    violation_rate: f64,
    profile: ramsis_telemetry::ProfileReport,
}

pub fn run(args: &[String]) -> Result<(), String> {
    let mut scenario = "constant_load".to_string();
    let mut json = false;
    let mut smoke = false;
    let mut cfg = PerfBaselineConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scenario" => {
                scenario = it.next().ok_or("--scenario requires a name")?.clone();
            }
            "--seed" => {
                cfg.seed = it
                    .next()
                    .ok_or("--seed requires a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--smoke" => smoke = true,
            "--json" => json = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if smoke {
        cfg = cfg.smoke();
    }
    if !SCENARIOS.contains(&scenario.as_str()) {
        return Err(format!(
            "unknown scenario {scenario:?} (expected one of {SCENARIOS:?})"
        ));
    }

    let (report, profile) = run_scenario(&scenario, &cfg)?;

    if json {
        let summary = PerfSummary {
            scenario,
            arrivals: report.total_arrivals,
            served: report.served,
            violation_rate: report.violation_rate,
            profile,
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?
        );
        return Ok(());
    }

    println!(
        "scenario {scenario}: {} arrivals, {} served, violation rate {:.4}%",
        report.total_arrivals,
        report.served,
        report.violation_rate * 100.0
    );
    println!("\n{}", profile.flame_table());
    println!("\ncounters:");
    for c in &profile.counters {
        println!("  {:<20} {}", c.counter, c.value);
    }
    println!("gauges:");
    for g in &profile.gauges {
        println!(
            "  {:<20} peak {}, mean {:.1} over {} samples",
            g.gauge, g.peak, g.mean, g.samples
        );
    }
    if !profile.solvers.is_empty() {
        println!("solvers:");
        for s in &profile.solvers {
            println!(
                "  {:<20} {} sweeps, {} states, {:.1} ms total ({:.3} ms/sweep), residual {:.2e}{}",
                s.method,
                s.sweeps,
                s.states_touched,
                s.total_s * 1e3,
                s.mean_sweep_s * 1e3,
                s.final_residual,
                if s.converged { "" } else { " (NOT CONVERGED)" }
            );
        }
    }
    Ok(())
}
