//! `ramsis-cli why` — ranked root-cause explanations for SLO
//! violations, joined from decision provenance, reconstructed spans,
//! and fault/scale/brownout windows.
//!
//! ```text
//! ramsis-cli why decisions.jsonl --telemetry trace.jsonl [--top N] [--budget FRAC] [--json]
//! ramsis-cli why --counterfactual --m RAMSIS --trace constant --load 80 [--json]
//! ```
//!
//! Log mode answers "why did this query miss its deadline?" from two
//! recorded streams: for every violated completion it finds the
//! dominant critical-path segment, the decision record that routed it
//! (reason code, regime, candidate set), whether the miss fell inside a
//! scaling-lag, brownout, burn-rate-alert, detection-lag, or
//! false-suspicion window (the latter two from the failure detector,
//! DESIGN.md §14), and whether any weighed candidate was expected to
//! make the deadline. Explanations are ranked by lateness.
//!
//! `--counterfactual` answers "was the decision *right*?" exactly: it
//! re-runs the scenario with decision provenance, replays sampled
//! selection-site decisions with forced alternatives
//! ([`ramsis_sim::regret_study`]), and prints regret aggregated by
//! regime, reason, and fault-window membership. Baseline replays are
//! verified byte-identical against the factual run.

use ramsis_baselines::{JellyfishPlus, ModelSwitching, ResponseLatencyTable};
use ramsis_bench::render_table;
use ramsis_core::{PolicySet, WorkerPolicy};
use ramsis_sim::{
    regret_study, FaultPlan, RamsisScheme, RegretStudyConfig, Selection, ServingScheme, Simulation,
    SimulationConfig,
};
use ramsis_telemetry::{
    burn_analysis, parse_decisions_tolerant, parse_jsonl_tolerant, reconstruct_spans,
    BurnAlertKind, BurnConfig, BurnSummary, ChosenAction, DecisionRecord, Nanos, QuerySpan,
    SpanOutcome,
};
use ramsis_workload::{DivergenceMonitor, LoadEstimator, OracleMonitor, Trace};
use serde::Serialize;

use crate::cli_args::CommonArgs;
use crate::commands::{build_profile, policy_dir};

fn ms(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1e6)
}

/// One explained violation: the span evidence, window membership, and
/// the decision that routed the terminating dispatch.
#[derive(Debug, Serialize)]
struct Explanation {
    query: u64,
    /// How late the completion was, nanoseconds past the deadline.
    late_ns: Nanos,
    /// The dominant critical-path segment (`wait`, `service`,
    /// `timeout-waste`, `retry-backoff`, `hedge-overlap`).
    dominant_segment: &'static str,
    /// Share of the response time the dominant segment accounts for.
    dominant_share: f64,
    during_warming: bool,
    during_brownout: bool,
    during_burn_alert: bool,
    /// The miss fell between a worker's real failure and the detector
    /// suspecting it — routing was still sending work to a dead worker.
    during_detection_lag: bool,
    /// The miss fell while a healthy worker was falsely suspected —
    /// the cluster was serving one worker short for no real reason.
    during_false_suspicion: bool,
    /// Reason code of the joined decision record, if one was found.
    reason: Option<String>,
    /// Regime label of the joined decision record.
    regime: Option<String>,
    /// The joined decision's committed action, rendered.
    chosen: Option<String>,
    /// A weighed candidate that was expected to meet the deadline when
    /// the chosen action was not (model index), if any.
    feasible_alternative: Option<u32>,
    /// Whether the chosen model's own candidate entry expected a
    /// non-negative slack (`None` when no decision joined or the
    /// chosen action was not a serve).
    chosen_expected_feasible: Option<bool>,
    /// One-line composed root cause.
    cause: String,
}

/// The `--json` document for log mode.
#[derive(Debug, Serialize)]
struct WhyReport {
    decisions: u64,
    decision_schema_version: Option<u32>,
    trace_schema_version: Option<u32>,
    queries: u64,
    violations: u64,
    shed: u64,
    explained: u64,
    burn: BurnSummary,
    explanations: Vec<Explanation>,
}

fn chosen_cell(c: &ChosenAction) -> String {
    match *c {
        ChosenAction::Serve { model, batch } => format!("serve m{model} b{batch}"),
        ChosenAction::Shed { count } => format!("shed {count}"),
        ChosenAction::Idle => "idle".to_string(),
        ChosenAction::Hedge { model, target, .. } => format!("hedge m{model} -> w{target}"),
        ChosenAction::Retry { attempt, .. } => format!("retry #{attempt}"),
    }
}

fn selection_cell(s: &Selection) -> String {
    match *s {
        Selection::Serve { model, batch } => format!("serve m{model} b{batch}"),
        Selection::Drop { count } => format!("shed {count}"),
        Selection::Idle => "idle".to_string(),
    }
}

fn in_windows(windows: &[(Nanos, Nanos)], at: Nanos) -> bool {
    windows.iter().any(|&(start, end)| start <= at && at < end)
}

/// Burn-alert windows as `(enter, exit)` intervals; a trailing Enter
/// with no Exit extends to the end of time.
fn alert_windows(burn: &BurnSummary) -> Vec<(Nanos, Nanos)> {
    let mut wins = Vec::new();
    let mut open: Option<Nanos> = None;
    for a in &burn.alerts {
        match a.kind {
            BurnAlertKind::Enter => open = open.or(Some(a.at)),
            BurnAlertKind::Exit => {
                if let Some(start) = open.take() {
                    wins.push((start, a.at));
                }
            }
        }
    }
    if let Some(start) = open {
        wins.push((start, Nanos::MAX));
    }
    wins
}

/// The span's dominant segment with its share of the response time.
fn dominant_segment(s: &QuerySpan) -> (&'static str, f64) {
    let segments = [
        ("wait", s.wait_ns),
        ("service", s.service_ns),
        ("timeout-waste", s.wasted_ns),
        ("retry-backoff", s.backoff_ns),
        ("hedge-overlap", s.hedge_overlap_ns),
    ];
    let (name, val) = segments
        .iter()
        .max_by_key(|(_, v)| *v)
        .copied()
        .expect("segments is non-empty");
    let total = s.segment_sum().max(1);
    (name, val as f64 / total as f64)
}

/// Finds the decision record that routed a violated span's terminating
/// dispatch: prefer the last record anchored on the query itself, fall
/// back to the last selection-site record at or before the dispatch
/// start.
fn join_decision(
    records: &[DecisionRecord],
    query: u64,
    dispatch_start: Nanos,
) -> Option<&DecisionRecord> {
    records
        .iter()
        .rev()
        .find(|r| r.query == Some(query))
        .or_else(|| {
            records
                .iter()
                .rev()
                .find(|r| r.state.is_some() && r.at <= dispatch_start)
        })
}

/// Whether the chosen model's own candidate entry expected to meet
/// the deadline (`None` when the chosen action was not a serve).
fn chosen_expected_feasible(rec: &DecisionRecord) -> Option<bool> {
    let ChosenAction::Serve { model, .. } = rec.chosen else {
        return None;
    };
    rec.candidates
        .iter()
        .find(|c| c.model == model)
        .map(|c| c.expected_slack_ns >= 0)
}

/// A candidate expected to meet the deadline when the chosen one was
/// not: most accurate model with non-negative expected slack, other
/// than the chosen model.
fn feasible_alternative(rec: &DecisionRecord) -> Option<u32> {
    if chosen_expected_feasible(rec) != Some(false) {
        return None;
    }
    let chosen_model = match rec.chosen {
        ChosenAction::Serve { model, .. } => Some(model),
        _ => None,
    };
    rec.candidates
        .iter()
        .filter(|c| c.expected_slack_ns >= 0 && Some(c.model) != chosen_model)
        .max_by(|a, b| a.value.partial_cmp(&b.value).expect("finite accuracy"))
        .map(|c| c.model)
}

/// Composes the one-line root cause from the joined evidence, most
/// specific condition first.
fn compose_cause(e: &Explanation) -> String {
    let mut parts: Vec<String> = Vec::new();
    if e.during_warming {
        parts.push("capacity still warming (scaling lag)".to_string());
    }
    if e.during_brownout {
        parts.push("brownout ladder active".to_string());
    }
    if e.during_detection_lag {
        parts.push("worker failure not yet detected (detection lag)".to_string());
    }
    if e.during_false_suspicion {
        parts.push("healthy worker falsely suspected".to_string());
    }
    match e.dominant_segment {
        "wait" => parts.push(format!(
            "queued {:.0}% of its lifetime",
            e.dominant_share * 100.0
        )),
        "service" => parts.push("service time dominated".to_string()),
        "timeout-waste" => parts.push("dispatch timed out, work wasted".to_string()),
        "retry-backoff" => parts.push("retry backoff dominated".to_string()),
        "hedge-overlap" => parts.push("hedged late".to_string()),
        _ => {}
    }
    if let Some(m) = e.feasible_alternative {
        parts.push(format!("candidate m{m} was expected to meet the deadline"));
    } else {
        match e.chosen_expected_feasible {
            Some(true) => {
                parts.push("the choice was expected to make it (queueing ate the margin)".into())
            }
            Some(false) => parts.push("no weighed candidate was expected to meet it".into()),
            None => {}
        }
    }
    if e.during_burn_alert {
        parts.push("inside a burn-rate alert".to_string());
    }
    parts.join("; ")
}

pub fn run(args: &[String]) -> Result<i32, String> {
    let mut json = false;
    let mut counterfactual = false;
    let mut filtered: Vec<String> = Vec::new();
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            "--counterfactual" => counterfactual = true,
            _ => filtered.push(a.clone()),
        }
    }
    if counterfactual {
        run_counterfactual(&filtered, json)
    } else {
        run_log(&filtered, json)
    }
}

/// Log mode: join recorded decisions + telemetry into per-violation
/// explanations.
fn run_log(args: &[String], json: bool) -> Result<i32, String> {
    let mut decisions_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut top: usize = 10;
    let mut budget: f64 = 0.1;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--telemetry" => {
                trace_path = Some(it.next().ok_or("--telemetry requires a path")?.clone());
            }
            "--top" => {
                top = it
                    .next()
                    .ok_or("--top requires a count")?
                    .parse()
                    .map_err(|e| format!("bad --top: {e}"))?;
            }
            "--budget" => {
                budget = it
                    .next()
                    .ok_or("--budget requires a fraction")?
                    .parse()
                    .map_err(|e| format!("bad --budget: {e}"))?;
                if !(budget > 0.0 && budget < 1.0) {
                    return Err("--budget must be in (0, 1)".into());
                }
            }
            other if !other.starts_with("--") && decisions_path.is_none() => {
                decisions_path = Some(other.to_string());
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let decisions_path = decisions_path.ok_or(
        "why requires a decision log: ramsis-cli why DECISIONS.jsonl --telemetry TRACE.jsonl \
         (or --counterfactual to replay a scenario)",
    )?;
    let trace_path = trace_path
        .ok_or("why needs the run's telemetry trace to find violations: --telemetry TRACE.jsonl")?;

    let dec_text = std::fs::read_to_string(&decisions_path)
        .map_err(|e| format!("read {decisions_path}: {e}"))?;
    let decisions = parse_decisions_tolerant(&dec_text)?;
    if decisions.torn_tail.is_some() {
        eprintln!("warning: decision log has a torn final record (ignored)");
    }
    let trace_text =
        std::fs::read_to_string(&trace_path).map_err(|e| format!("read {trace_path}: {e}"))?;
    let parsed = parse_jsonl_tolerant(&trace_text)?;
    if parsed.torn_tail.is_some() {
        eprintln!("warning: telemetry trace has a torn final record (ignored)");
    }

    let log = reconstruct_spans(&parsed.events);
    let burn = burn_analysis(&parsed.events, BurnConfig::for_budget(budget));
    let alert_wins = alert_windows(&burn);

    let mut shed = 0u64;
    let mut explanations: Vec<Explanation> = Vec::new();
    for s in &log.spans {
        match s.outcome {
            SpanOutcome::Completed { violated: true, .. } => {}
            SpanOutcome::Shed { .. } => {
                shed += 1;
                continue;
            }
            _ => continue,
        }
        let terminal = s.terminal_at.unwrap_or(s.deadline);
        let late_ns = terminal.saturating_sub(s.deadline);
        let (dominant, share) = dominant_segment(s);
        let dispatch_start = terminal.saturating_sub(s.service_ns);
        let rec = join_decision(&decisions.records, s.query, dispatch_start);
        let mut e = Explanation {
            query: s.query,
            late_ns,
            dominant_segment: dominant,
            dominant_share: share,
            during_warming: in_windows(&log.warming_windows, terminal),
            during_brownout: in_windows(&log.brownout_windows, terminal),
            during_burn_alert: in_windows(&alert_wins, terminal),
            during_detection_lag: in_windows(&log.detection_lag_windows, terminal),
            during_false_suspicion: in_windows(&log.false_suspicion_windows, terminal),
            reason: rec.map(|r| r.reason.name().to_string()),
            regime: rec.and_then(|r| r.regime.clone()),
            chosen: rec.map(|r| chosen_cell(&r.chosen)),
            feasible_alternative: rec.and_then(feasible_alternative),
            chosen_expected_feasible: rec.and_then(chosen_expected_feasible),
            cause: String::new(),
        };
        e.cause = compose_cause(&e);
        explanations.push(e);
    }
    let violations = explanations.len() as u64;
    explanations.sort_by(|a, b| b.late_ns.cmp(&a.late_ns).then(a.query.cmp(&b.query)));
    explanations.truncate(top);

    if json {
        let report = WhyReport {
            decisions: decisions.records.len() as u64,
            decision_schema_version: decisions.schema_version,
            trace_schema_version: parsed.schema_version,
            queries: log.spans.len() as u64,
            violations,
            shed,
            explained: explanations.len() as u64,
            burn,
            explanations,
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
        return Ok(0);
    }

    println!(
        "decisions: {decisions_path} ({} records, schema {})",
        decisions.records.len(),
        decisions
            .schema_version
            .map_or_else(|| "v0 headerless".to_string(), |v| format!("v{v}")),
    );
    println!(
        "trace: {trace_path} ({} events, {} queries, {} violations, {} shed)",
        parsed.events.len(),
        log.spans.len(),
        violations,
        shed
    );
    println!(
        "burn rate (budget {:.1}%): overall {:.2}x, peak fast {:.2}x, {} alert(s), {} in alert",
        budget * 100.0,
        burn.overall_burn,
        burn.peak_fast_burn,
        alert_wins.len(),
        format_args!("{:.2} s", burn.time_in_alert_ns as f64 / 1e9),
    );

    if explanations.is_empty() {
        println!("no violations to explain");
        return Ok(0);
    }
    println!(
        "\ntop {} violations by lateness:",
        explanations.len().min(top)
    );
    let rows: Vec<Vec<String>> = explanations
        .iter()
        .map(|e| {
            vec![
                e.query.to_string(),
                ms(e.late_ns),
                e.reason.clone().unwrap_or_default(),
                e.regime.clone().unwrap_or_default(),
                e.chosen.clone().unwrap_or_default(),
                e.cause.clone(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "query",
                "late ms",
                "reason",
                "regime",
                "chosen",
                "root cause"
            ],
            &rows,
        )
    );
    Ok(0)
}

/// The `--json` document for counterfactual mode.
#[derive(Debug, Serialize)]
struct CounterfactualReport {
    factual_objective: f64,
    decisions_total: u64,
    decisions_examined: u64,
    baselines_verified: u64,
    buckets: Vec<BucketRow>,
    entries: Vec<EntryRow>,
}

#[derive(Debug, Serialize)]
struct BucketRow {
    regime: Option<String>,
    reason: String,
    in_fault_window: bool,
    replays: u64,
    total_regret: f64,
    max_regret: f64,
    better_alternatives: u64,
}

#[derive(Debug, Serialize)]
struct EntryRow {
    k: u64,
    at_s: f64,
    regime: Option<String>,
    reason: String,
    chosen: String,
    alternative: String,
    regret: f64,
    delta_violations: i64,
}

/// Scenario mode: re-run with provenance and quantify exact regret by
/// forced-alternative replay.
fn run_counterfactual(args: &[String], json: bool) -> Result<i32, String> {
    let args = CommonArgs::parse(
        args,
        &["--seed", "--duration", "--max-decisions", "--alternatives"],
    )?;
    let method = args.method.as_deref().unwrap_or("RAMSIS");
    let profile = build_profile(&args);
    let seed: u64 = args
        .extra("--seed")
        .unwrap_or("42")
        .parse()
        .map_err(|e| format!("bad --seed: {e}"))?;
    let duration: f64 = args
        .extra("--duration")
        .unwrap_or("10")
        .parse()
        .map_err(|e| format!("bad --duration: {e}"))?;
    let max_decisions: usize = args
        .extra("--max-decisions")
        .unwrap_or("6")
        .parse()
        .map_err(|e| format!("bad --max-decisions: {e}"))?;
    let alternatives: usize = args
        .extra("--alternatives")
        .unwrap_or("2")
        .parse()
        .map_err(|e| format!("bad --alternatives: {e}"))?;

    let trace = match args.trace.as_str() {
        "real" => Trace::twitter_like(seed),
        "constant" => {
            let load = args.load.ok_or("--trace constant requires --load")?;
            Trace::constant(load, duration)
        }
        path => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("read trace {path}: {e}"))?;
            Trace::parse_artifact_text(&text)?
        }
    };

    // Replays mutate scheme and estimator state, so each run gets a
    // fresh pair; the expensive artifacts (policy set, MS table) are
    // loaded once and cloned.
    let mut make_scheme: Box<dyn FnMut() -> Box<dyn ServingScheme>> = match method {
        "RAMSIS" => {
            let dir = policy_dir(&args.out, "RAMSIS", args.workers, args.slo_ms);
            let mut policies = Vec::new();
            let entries = std::fs::read_dir(&dir).map_err(|e| {
                format!(
                    "no policies at {} (run `ramsis-cli gen`): {e}",
                    dir.display()
                )
            })?;
            for entry in entries {
                let entry = entry.map_err(|e| e.to_string())?;
                if entry.path().extension().is_some_and(|x| x == "json") {
                    let text = std::fs::read_to_string(entry.path()).map_err(|e| e.to_string())?;
                    policies.push(WorkerPolicy::from_json(&text)?);
                }
            }
            let set = PolicySet::from_policies(policies).map_err(|e| e.to_string())?;
            Box::new(move || Box::new(RamsisScheme::new(set.clone())))
        }
        "JF" => {
            let profile = profile.clone();
            let workers = args.workers;
            Box::new(move || Box::new(JellyfishPlus::new(&profile, workers)))
        }
        "MS" => {
            let path = policy_dir(&args.out, "MS", args.workers, args.slo_ms).join("table.json");
            let text = std::fs::read_to_string(&path).map_err(|e| {
                format!(
                    "no MS table at {} (run `ramsis-cli ms-gen`): {e}",
                    path.display()
                )
            })?;
            let table: ResponseLatencyTable =
                serde_json::from_str(&text).map_err(|e| e.to_string())?;
            let profile = profile.clone();
            Box::new(move || Box::new(ModelSwitching::new(&profile, table.clone())))
        }
        other => {
            return Err(format!(
                "unknown method {other:?} (expected RAMSIS, JF, or MS)"
            ))
        }
    };
    let constant = args.trace == "constant";
    let est_trace = trace.clone();
    let mut make_estimator: Box<dyn FnMut() -> Box<dyn LoadEstimator>> =
        Box::new(move || -> Box<dyn LoadEstimator> {
            if constant {
                Box::new(OracleMonitor::new(est_trace.clone()))
            } else {
                Box::new(DivergenceMonitor::new(est_trace.clone()))
            }
        });

    let config = SimulationConfig::new(args.workers, args.slo_s()).seeded(seed);
    let sim = Simulation::new(&profile, config).expect("valid simulation config");
    let plan = FaultPlan::none();
    let cfg = RegretStudyConfig {
        max_decisions,
        alternatives_per_decision: alternatives,
        verify_baseline: true,
    };
    let study = regret_study(
        &sim,
        &trace,
        &plan,
        &mut *make_scheme,
        &mut *make_estimator,
        &cfg,
    )
    .map_err(|e| e.to_string())?;

    if json {
        let report = CounterfactualReport {
            factual_objective: study.factual_objective,
            decisions_total: study.decisions_total,
            decisions_examined: study.decisions_examined,
            baselines_verified: study.baselines_verified,
            buckets: study
                .buckets
                .iter()
                .map(|b| BucketRow {
                    regime: b.regime.clone(),
                    reason: b.reason.clone(),
                    in_fault_window: b.in_fault_window,
                    replays: b.replays,
                    total_regret: b.total_regret,
                    max_regret: b.max_regret,
                    better_alternatives: b.better_alternatives,
                })
                .collect(),
            entries: study
                .entries
                .iter()
                .map(|e| EntryRow {
                    k: e.k,
                    at_s: e.at as f64 / 1e9,
                    regime: e.regime.clone(),
                    reason: e.reason.clone(),
                    chosen: chosen_cell(&e.chosen),
                    alternative: selection_cell(&e.alternative),
                    regret: e.regret,
                    delta_violations: e.delta_violations,
                })
                .collect(),
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
        return Ok(0);
    }

    println!(
        "{method}: factual objective {:.4}, {} selection decisions, {} examined, \
         {} baseline replays verified byte-identical",
        study.factual_objective,
        study.decisions_total,
        study.decisions_examined,
        study.baselines_verified
    );
    if study.entries.is_empty() {
        println!("no alternatives to replay (decisions had no other candidates)");
        return Ok(0);
    }
    println!("\nregret by regime / reason / fault window:");
    let rows: Vec<Vec<String>> = study
        .buckets
        .iter()
        .map(|b| {
            vec![
                b.regime.clone().unwrap_or_default(),
                b.reason.clone(),
                if b.in_fault_window { "yes" } else { "" }.to_string(),
                b.replays.to_string(),
                format!("{:+.4}", b.total_regret),
                format!("{:+.4}", b.max_regret),
                b.better_alternatives.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "regime",
                "reason",
                "fault",
                "replays",
                "total regret",
                "max",
                "better alts"
            ],
            &rows,
        )
    );
    println!("per-decision replays:");
    let rows: Vec<Vec<String>> = study
        .entries
        .iter()
        .map(|e| {
            vec![
                e.k.to_string(),
                format!("{:.2}", e.at as f64 / 1e9),
                e.reason.clone(),
                chosen_cell(&e.chosen),
                selection_cell(&e.alternative),
                format!("{:+.4}", e.regret),
                format!("{:+}", e.delta_violations),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "k",
                "at s",
                "reason",
                "chosen",
                "alternative",
                "regret",
                "dViol"
            ],
            &rows,
        )
    );
    Ok(0)
}
