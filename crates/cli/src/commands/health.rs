//! `ramsis-cli health` — run the failure detector against a canonical
//! gray-failure scenario and show its timeline.
//!
//! The command runs one constant-load simulation (fastest-fixed scheme,
//! so no policies need solving) with the perceived-health subsystem
//! enabled (DESIGN.md §14) and a fault plan that exercises every
//! detection path: a crash with a later recovery (genuine suspicion),
//! a heartbeat partition (false suspicion of a healthy worker), and a
//! batch-error window (strike-based ejection). It prints the detector's
//! summary — suspicion counts split genuine/false, detection lags
//! against the policy's provable bound, breaker transition counts —
//! followed by the health timeline: every probe failure, suspicion,
//! breaker move, and reinstatement with its timestamp.
//!
//! ```text
//! ramsis-cli health [--task image|text] [--SLO MS] [--seed S]
//!                   [--workers N] [--load QPS] [--duration S]
//!                   [--probe MS] [--events N] [--probes] [--json]
//!                   [--out PATH]
//! ```
//!
//! Individual probe failures are elided from the timeline by default
//! (a dead worker fails every probe, drowning the state changes);
//! `--probes` includes them.
//!
//! ```text
//! ```

use ramsis_profiles::{ModelCatalog, ProfilerConfig, Task, WorkerProfile};
use ramsis_sim::{FastestFixed, FaultPlan, HealthPolicy, Routing, Simulation, SimulationConfig};
use ramsis_telemetry::{Event, VecSink};
use ramsis_workload::{LoadMonitor, Trace};

use crate::commands::write_json_file;

/// Formats a Nanos timestamp as seconds.
fn secs(at: u64) -> f64 {
    at as f64 / 1e9
}

#[allow(clippy::too_many_lines)]
pub fn run(args: &[String]) -> Result<(), String> {
    let mut task = Task::ImageClassification;
    let mut slo_s = 0.1;
    let mut seed = 7u64;
    let mut workers = 6usize;
    let mut load_qps = 120.0;
    let mut duration_s = 40.0;
    let mut probe_ms = 20.0;
    let mut max_events = 40usize;
    let mut show_probes = false;
    let mut json = false;
    let mut out: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        let parsed = |flag: &str, v: String| -> Result<f64, String> {
            v.parse().map_err(|e| format!("bad {flag}: {e}"))
        };
        match arg.as_str() {
            "--task" => {
                task = match value("--task")?.as_str() {
                    "image" => Task::ImageClassification,
                    "text" => Task::TextClassification,
                    other => return Err(format!("unknown task {other:?}")),
                }
            }
            "--SLO" | "--slo" => slo_s = parsed("--SLO", value("--SLO")?)? / 1e3,
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--workers" => {
                workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?;
            }
            "--load" => load_qps = parsed("--load", value("--load")?)?,
            "--duration" => duration_s = parsed("--duration", value("--duration")?)?,
            "--probe" => probe_ms = parsed("--probe", value("--probe")?)?,
            "--events" => {
                max_events = value("--events")?
                    .parse()
                    .map_err(|e| format!("bad --events: {e}"))?;
            }
            "--probes" => show_probes = true,
            "--json" => json = true,
            "--out" => out = Some(value("--out")?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if workers < 4 {
        return Err("--workers must be at least 4 (the scenario faults three workers)".into());
    }
    if probe_ms <= 0.0 {
        return Err("--probe must be positive".into());
    }

    let catalog = match task {
        Task::ImageClassification => ModelCatalog::torchvision_image(),
        Task::TextClassification => ModelCatalog::bert_text(),
    };
    let profile = WorkerProfile::build(
        &catalog,
        std::time::Duration::from_secs_f64(slo_s),
        ProfilerConfig::default(),
    );

    // Canonical gray-failure scenario, scaled to the horizon: one real
    // crash (later recovered), one heartbeat partition of a healthy
    // worker, one batch-error window on a third.
    let d = duration_s;
    let plan = FaultPlan::none()
        .crash(1, 0.25 * d)
        .recover(1, 0.60 * d)
        .partition(2, 0.30 * d, 0.45 * d)
        .error_rate(3, 0.50 * d, 0.70 * d, 0.6);
    let policy = HealthPolicy::probing(probe_ms / 1e3);
    let trace = Trace::constant(load_qps, duration_s);
    let sim = Simulation::new(
        &profile,
        SimulationConfig::new(workers, slo_s)
            .seeded(seed)
            .with_health(policy),
    )
    .map_err(|e| e.to_string())?;
    let mut scheme = FastestFixed::new(profile.fastest_model(), Routing::PerWorkerRoundRobin);
    let mut monitor = LoadMonitor::new();
    let mut sink = VecSink::new();
    let report = sim
        .run_faulted_traced(&trace, &plan, &mut scheme, &mut monitor, &mut sink)
        .map_err(|e| e.to_string())?;
    let events = sink.into_events();

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
    } else {
        let stats = report
            .health
            .as_ref()
            .expect("health-enabled run reports detector stats");
        println!(
            "=== health — {} classification, SLO {:.0} ms, {:.0} QPS over {:.0} s, \
             {} workers, probe every {:.0} ms ===",
            task.name(),
            slo_s * 1e3,
            load_qps,
            duration_s,
            workers,
            probe_ms,
        );
        println!(
            "scenario: crash w1 @{:.1}s (recovers @{:.1}s), heartbeat partition w2 \
             {:.1}-{:.1}s, 60% batch errors w3 {:.1}-{:.1}s",
            0.25 * d,
            0.60 * d,
            0.30 * d,
            0.45 * d,
            0.50 * d,
            0.70 * d,
        );
        println!(
            "probes: {} sent, {} failed",
            stats.probes_sent, stats.probes_failed,
        );
        println!(
            "suspicion: {} total ({} genuine, {} false), {} reinstated, \
             {} queries requeued off suspected workers",
            stats.suspects,
            stats.suspects_genuine,
            stats.suspects_false,
            stats.reinstates,
            stats.requeued_on_suspect,
        );
        println!(
            "detection lag: mean {:.1} ms, max {:.1} ms (provable bound {:.1} ms)",
            stats.mean_detection_lag_s * 1e3,
            stats.max_detection_lag_s * 1e3,
            policy.detection_bound_s() * 1e3,
        );
        println!(
            "breakers: {} opens, {} half-opens, {} closes",
            stats.breaker_opens, stats.breaker_half_opens, stats.breaker_closes,
        );
        println!(
            "gray signals: {} batch errors, {} outlier strikes",
            stats.batch_errors, stats.outlier_strikes,
        );
        println!(
            "ejection cost: {:.2} worker-s suspected ({:.2} falsely), {} still \
             suspected at end",
            stats.suspected_time_s, stats.false_suspected_time_s, stats.suspected_at_end,
        );
        println!(
            "service: {} arrivals, {} served, violation rate {:.4}%",
            report.total_arrivals,
            report.served,
            report.violation_rate * 100.0,
        );

        let timeline: Vec<String> = events
            .iter()
            .filter_map(|e| match e {
                Event::ProbeFailed { at, worker } if show_probes => Some(format!(
                    "{:>8.3}s  probe-fail  worker {worker} unresponsive",
                    secs(*at)
                )),
                Event::Suspect {
                    at,
                    worker,
                    genuine,
                    lag_ns,
                } => Some(format!(
                    "{:>8.3}s  suspect     worker {worker} ejected ({}, lag {:.1} ms)",
                    secs(*at),
                    if *genuine { "genuine" } else { "false" },
                    *lag_ns as f64 / 1e6,
                )),
                Event::BreakerOpen { at, worker } => Some(format!(
                    "{:>8.3}s  breaker     worker {worker} open",
                    secs(*at)
                )),
                Event::BreakerHalfOpen { at, worker } => Some(format!(
                    "{:>8.3}s  breaker     worker {worker} half-open (trial probes)",
                    secs(*at)
                )),
                Event::BreakerClose { at, worker } => Some(format!(
                    "{:>8.3}s  breaker     worker {worker} closed",
                    secs(*at)
                )),
                Event::Reinstate {
                    at,
                    worker,
                    suspected_ns,
                } => Some(format!(
                    "{:>8.3}s  reinstate   worker {worker} back after {:.2} s",
                    secs(*at),
                    *suspected_ns as f64 / 1e9,
                )),
                _ => None,
            })
            .collect();
        println!("\nhealth timeline ({} events):", timeline.len());
        for line in timeline.iter().take(max_events) {
            println!("  {line}");
        }
        if timeline.len() > max_events {
            println!(
                "  ... {} more (raise --events)",
                timeline.len() - max_events
            );
        }
    }
    if let Some(path) = out {
        write_json_file(std::path::Path::new(&path), &report)?;
    }
    Ok(())
}
