//! `ramsis-cli drift` — adaptive runtime under arrival drift.
//!
//! Runs the canonical drifting stream (steady Poisson at the base rate,
//! a ten-step ramp to the peak crossing two regime-grid edges, then
//! bursty gamma-renewal arrivals at the peak) against adaptive RAMSIS,
//! stale-policy RAMSIS, and the fixed-fastest baseline, writing the
//! outcome table to `results/TASK_drift_SLO_WORKERS.json`. See
//! EXPERIMENTS.md "drift_adaptation" for the full experiment.

use ramsis_bench::drift::{run_drift, DriftConfig};
use ramsis_core::ShedPolicy;

use crate::cli_args::CommonArgs;
use crate::commands::{build_profile, write_json_file};

pub fn run(args: &[String]) -> Result<(), String> {
    // Like `robustness`, this experiment defaults to the bench
    // harness's coarser D = 10 grid unless --d is given explicitly.
    let d_overridden = args.iter().any(|a| a == "--d");
    let args = CommonArgs::parse(args, &["--seed", "--shed", "--peak"])?;
    let shed = match args.extra("--shed").unwrap_or("hopeless") {
        "never" => ShedPolicy::Never,
        "hopeless" => ShedPolicy::Hopeless,
        depth => ShedPolicy::QueueDepth(
            depth
                .parse()
                .map_err(|_| format!("bad --shed {depth:?} (never|hopeless|<queue depth>)"))?,
        ),
    };
    let mut cfg = DriftConfig {
        slo_s: args.slo_s(),
        workers: args.workers,
        shed,
        d: if d_overridden { args.d } else { 10 },
        seed: args
            .extra("--seed")
            .unwrap_or("53791")
            .parse()
            .map_err(|e| format!("bad --seed: {e}"))?,
        ..DriftConfig::default()
    };
    if let Some(load) = args.load {
        cfg.base_qps = load;
        cfg.peak_qps = load * 2.5;
    }
    if let Some(peak) = args.extra("--peak") {
        cfg.peak_qps = peak.parse().map_err(|e| format!("bad --peak: {e}"))?;
    }
    if cfg.peak_qps <= cfg.base_qps {
        return Err(format!(
            "peak load {} must exceed base load {}",
            cfg.peak_qps, cfg.base_qps
        ));
    }

    let profile = build_profile(&args);
    let outcomes = run_drift(&profile, &cfg);
    for o in &outcomes {
        println!(
            "{:>16}: miss-or-loss {:>8.4}%, violations {:>8.4}%, accuracy {:.2}%",
            o.method,
            o.miss_or_loss_rate * 100.0,
            o.report.violation_rate * 100.0,
            o.report.accuracy_per_satisfied_query,
        );
    }
    if let Some(stats) = outcomes[0].report.adaptive.as_ref() {
        println!(
            "adaptive runtime: {} swaps over {} refits, {} shed, {} lazy solves, \
             mean detection delay {:.2}s",
            stats.swaps,
            stats.refits,
            stats.shed_hopeless + stats.shed_queue_depth,
            stats.lazy_solves,
            stats.mean_detection_delay_s,
        );
        for e in &stats.regime_events {
            println!(
                "  t={:6.2}s  {} -> {} (detected in {:.2}s)",
                e.at_s, e.from, e.to, e.detection_delay_s
            );
        }
    }

    let path = args.out.join("results").join(format!(
        "{}_drift_{}_{}.json",
        args.task.name(),
        args.slo_ms,
        args.workers
    ));
    write_json_file(&path, &outcomes)?;
    println!("script complete!");
    Ok(())
}
