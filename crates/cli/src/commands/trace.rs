//! `ramsis-cli trace` — generate or inspect a query-load trace file in
//! the artifact's text format (one average-QPS value per ten-second
//! interval, like `twitter_trace/twitter_04_25_norm.txt`).

use ramsis_workload::Trace;

use crate::cli_args::CommonArgs;

pub fn run(args: &[String]) -> Result<(), String> {
    let args = CommonArgs::parse(args, &["--kind", "--seed", "--file", "--duration"])?;
    match args.extra("--file") {
        // Inspect an existing file.
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            let trace = Trace::parse_artifact_text(&text)?;
            println!(
                "{path}: {} intervals, {:.0}s total, {:.0}-{:.0} QPS, ~{:.0} expected queries",
                trace.segments().len(),
                trace.duration(),
                trace.min_qps(),
                trace.max_qps(),
                trace.expected_queries()
            );
            // A tiny load sparkline.
            let maxq = trace.max_qps();
            let bars = "▁▂▃▄▅▆▇█";
            let line: String = trace
                .segments()
                .iter()
                .map(|&(_, q)| {
                    let i = ((q / maxq) * 7.0).round() as usize;
                    bars.chars().nth(i.min(7)).expect("bar index in range")
                })
                .collect();
            println!("load shape: {line}");
            Ok(())
        }
        // Generate a new one.
        None => {
            let kind = args.extra("--kind").unwrap_or("twitter");
            let seed: u64 = args
                .extra("--seed")
                .unwrap_or("42")
                .parse()
                .map_err(|e| format!("bad --seed: {e}"))?;
            let trace = match kind {
                "twitter" => Trace::twitter_like(seed),
                "constant" => {
                    let load = args.load.ok_or("--kind constant requires --load")?;
                    let duration: f64 = args
                        .extra("--duration")
                        .unwrap_or("300")
                        .parse()
                        .map_err(|e| format!("bad --duration: {e}"))?;
                    let n = (duration / Trace::ARTIFACT_INTERVAL_S).round() as usize;
                    Trace::from_interval_qps(
                        &vec![load; n.max(1)],
                        Trace::ARTIFACT_INTERVAL_S,
                        ramsis_workload::TraceKind::Constant,
                    )
                }
                other => return Err(format!("unknown trace kind {other:?}")),
            };
            let path = args.out.join(format!("{kind}_trace.txt"));
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
            }
            std::fs::write(&path, trace.to_artifact_text())
                .map_err(|e| format!("write {}: {e}", path.display()))?;
            println!(
                "wrote {} ({} intervals, {:.0}-{:.0} QPS)",
                path.display(),
                trace.segments().len(),
                trace.min_qps(),
                trace.max_qps()
            );
            Ok(())
        }
    }
}
