//! `ramsis-cli gen` — the artifact's `RAMSIS_gen.py`.
//!
//! Generates RAMSIS model-selection policies. With `--load`, generates
//! one policy; without, sweeps the artifact's default grid "query load
//! ranging from 200 to 4,000 QPS in intervals of 200" (§A.4.2); with
//! `--adaptive LO:HI`, refines the grid until adjacent policies'
//! expected accuracies differ by less than 1% (§6's rule). Each policy
//! lands at `policy_gen/RAMSIS_WORKERS_SLO/LOAD.json`.

use ramsis_core::{
    generate_policy, Discretization, PoissonArrivals, PolicyConfig, PolicySet, WorkerPolicy,
};

use crate::cli_args::CommonArgs;
use crate::commands::{build_profile, policy_dir, write_json_file};

pub fn run(args: &[String]) -> Result<(), String> {
    let args = CommonArgs::parse(args, &["--adaptive", "--gap"])?;
    let profile = build_profile(&args);
    let config = PolicyConfig::builder(std::time::Duration::from_secs_f64(args.slo_s()))
        .workers(args.workers)
        .discretization(Discretization::fixed_length(args.d))
        .build();
    let dir = policy_dir(&args.out, "RAMSIS", args.workers, args.slo_ms);

    let policies: Vec<WorkerPolicy> = if let Some(range) = args.extra("--adaptive") {
        // §6: refine until adjacent expected accuracies differ < 1%.
        let (lo, hi) = range
            .split_once(':')
            .ok_or("--adaptive expects LO:HI, e.g. 200:4000")?;
        let lo: f64 = lo.parse().map_err(|e| format!("bad --adaptive low: {e}"))?;
        let hi: f64 = hi
            .parse()
            .map_err(|e| format!("bad --adaptive high: {e}"))?;
        let gap: f64 = args
            .extra("--gap")
            .unwrap_or("1.0")
            .parse()
            .map_err(|e| format!("bad --gap: {e}"))?;
        let set = PolicySet::generate_poisson_adaptive(&profile, lo, hi, &config, gap, 64)
            .map_err(|e| e.to_string())?;
        println!(
            "adaptive refinement produced {} policies at loads {:?}",
            set.len(),
            set.loads().iter().map(|l| l.round()).collect::<Vec<_>>()
        );
        set.policies().to_vec()
    } else {
        let loads: Vec<f64> = match args.load {
            Some(l) => vec![l],
            None => (1..=20).map(|i| 200.0 * i as f64).collect(),
        };
        let mut out = Vec::new();
        for load in loads {
            out.push(
                generate_policy(&profile, &PoissonArrivals::per_second(load), &config)
                    .map_err(|e| e.to_string())?,
            );
        }
        out
    };

    for policy in &policies {
        let g = policy.guarantees();
        println!(
            "load {:>6.0}: E[accuracy] {:.2}%  E[violations] {:.4}%  ({:.2}s, {} sweeps)",
            policy.design_load_qps,
            g.expected_accuracy,
            g.expected_violation_rate * 100.0,
            policy.generation_seconds,
            policy.solve_iterations
        );
        write_json_file(
            &dir.join(format!("{}.json", policy.design_load_qps)),
            policy,
        )?;
    }
    println!("script complete!");
    Ok(())
}
