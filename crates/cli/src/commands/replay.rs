//! `ramsis-cli replay` — validate a checkpoint against its telemetry
//! log.
//!
//! A durable run (`sim --checkpoint CKPT --telemetry LOG`) leaves two
//! artifacts that claim to describe the same prefix of the same run:
//! the snapshot's internal counters, and the event log's first
//! `events_emitted` records. This command re-derives run state from the
//! log prefix alone and diffs it against the snapshot, so a corrupted,
//! stale, or mismatched checkpoint is caught *before* anyone resumes
//! from it:
//!
//! ```text
//! ramsis-cli replay LOG.jsonl --snapshot CKPT.json [--json]
//! ```
//!
//! Checks, in order:
//! 1. the snapshot is canonical (parses and re-serializes to the exact
//!    bytes on disk — a torn or hand-edited snapshot fails here);
//! 2. the log holds at least the `events_emitted` whole records the
//!    snapshot claims were flushed before it was taken;
//! 3. the prefix's per-query conservation invariant holds;
//! 4. counters re-derived from the prefix (served, violations,
//!    dropped) equal the snapshot's metrics counters, and no prefix
//!    event postdates the snapshot's simulation clock.
//!
//! Exits 0 when the snapshot and log agree, 1 on any divergence.

use std::path::Path;

use ramsis_sim::EngineSnapshot;
use ramsis_telemetry::{aggregates, conservation, parse_jsonl_tolerant};
use serde::Serialize;

/// One validation check's outcome in the `--json` document.
#[derive(Serialize)]
struct Check {
    name: &'static str,
    ok: bool,
    detail: String,
}

/// The `--json` document.
#[derive(Serialize)]
struct ReplayReport {
    log: String,
    snapshot: String,
    events_in_log: u64,
    events_at_checkpoint: u64,
    sim_time_s: f64,
    checks: Vec<Check>,
    ok: bool,
}

pub fn run(args: &[String]) -> Result<i32, String> {
    let mut log_path: Option<String> = None;
    let mut snap_path: Option<String> = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--snapshot" => {
                snap_path = Some(it.next().ok_or("--snapshot requires a path")?.clone());
            }
            "--json" => json = true,
            "--log" => log_path = Some(it.next().ok_or("--log requires a value")?.clone()),
            other if !other.starts_with("--") && log_path.is_none() => {
                log_path = Some(other.to_string());
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let log_path =
        log_path.ok_or("replay requires a log: ramsis-cli replay LOG.jsonl --snapshot CKPT")?;
    let snap_path = snap_path.ok_or("replay requires --snapshot CKPT.json")?;

    // 1. Snapshot integrity: the file must hold exactly the canonical
    // serialization of the state it parses to. Snapshots are written
    // atomically, so anything else is corruption or hand-editing.
    let snap_text =
        std::fs::read_to_string(&snap_path).map_err(|e| format!("read {snap_path}: {e}"))?;
    let snap = EngineSnapshot::read(Path::new(&snap_path)).map_err(|e| e.to_string())?;
    let mut checks = Vec::new();
    let canonical = snap.to_json() == snap_text.trim_end();
    checks.push(Check {
        name: "snapshot-canonical",
        ok: canonical,
        detail: if canonical {
            format!("version {} round-trips byte-identically", snap.meta.version)
        } else {
            "snapshot bytes differ from canonical serialization".into()
        },
    });

    // 2. The log covers the checkpoint. A torn tail is fine — resume
    // truncates it — but fewer *whole* records than the snapshot says
    // it flushed means this log and snapshot are not from the same run
    // (or the log was truncated past the checkpoint).
    let text = std::fs::read_to_string(&log_path).map_err(|e| format!("read {log_path}: {e}"))?;
    let parsed = parse_jsonl_tolerant(&text)?;
    if let Some(at) = parsed.torn_tail_offset {
        eprintln!("note: torn tail at byte offset {at} ignored (killed mid-write)");
    }
    let claimed = snap.meta.events_emitted;
    let have = parsed.events.len() as u64;
    let covered = have >= claimed;
    checks.push(Check {
        name: "log-covers-checkpoint",
        ok: covered,
        detail: format!("log holds {have} whole events, checkpoint claims {claimed}"),
    });

    let mut all_ok = checks.iter().all(|c| c.ok);
    if covered {
        let prefix = &parsed.events[..claimed as usize];

        // 3. Conservation over the prefix: every arrival is terminal or
        // in flight, no duplicates.
        let cons = conservation(prefix);
        checks.push(Check {
            name: "prefix-conservation",
            ok: cons.holds(),
            detail: format!(
                "{} arrivals = {} completed + {} shed + {} dropped + {} admission-shed + {} in flight ({} anomalies)",
                cons.arrivals, cons.completions, cons.sheds, cons.drops, cons.admissions,
                cons.in_flight, cons.anomalies
            ),
        });

        // 4. Counter agreement: the snapshot's metrics must equal what
        // the log prefix implies, and no prefix event may postdate the
        // snapshot's clock.
        let agg = aggregates(prefix);
        let m = &snap.metrics;
        let counters_ok = agg.served == m.served()
            && agg.violations == m.violations()
            && agg.dropped == m.dropped();
        checks.push(Check {
            name: "counter-agreement",
            ok: counters_ok,
            detail: format!(
                "log {}/{}/{} vs snapshot {}/{}/{} (served/violations/dropped)",
                agg.served,
                agg.violations,
                agg.dropped,
                m.served(),
                m.violations(),
                m.dropped()
            ),
        });
        let max_at = prefix
            .iter()
            .map(ramsis_telemetry::Event::at)
            .max()
            .unwrap_or(0);
        checks.push(Check {
            name: "clock-bound",
            ok: max_at <= snap.meta.sim_time_ns,
            detail: format!(
                "latest prefix event at {:.6} s, snapshot clock {:.6} s",
                max_at as f64 / 1e9,
                snap.meta.sim_time_ns as f64 / 1e9
            ),
        });
        all_ok = checks.iter().all(|c| c.ok);
    }

    if json {
        let report = ReplayReport {
            log: log_path,
            snapshot: snap_path,
            events_in_log: have,
            events_at_checkpoint: claimed,
            sim_time_s: snap.meta.sim_time_ns as f64 / 1e9,
            checks,
            ok: all_ok,
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
    } else {
        println!(
            "replay: {log_path} vs {snap_path} (checkpoint at {:.3} s, {claimed} events)",
            snap.meta.sim_time_ns as f64 / 1e9
        );
        for c in &checks {
            println!(
                "  [{}] {}: {}",
                if c.ok { "ok" } else { "FAIL" },
                c.name,
                c.detail
            );
        }
        println!(
            "{}",
            if all_ok {
                "snapshot and log agree"
            } else {
                "DIVERGENCE: do not resume from this snapshot"
            }
        );
    }
    Ok(i32::from(!all_ok))
}
