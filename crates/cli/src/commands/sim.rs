//! `ramsis-cli sim` — the artifact's `run_sim.py`.
//!
//! Simulates one MS&S method (`--m RAMSIS|JF|MS`) on either the
//! production trace (`--trace real`) or a constant load (`--trace
//! constant --load QPS`), then writes the report to
//! `results/TASK_METHOD_TRACE_SLO_WORKERS[_LOAD].json`.
//!
//! RAMSIS policies are loaded from `policy_gen/RAMSIS_WORKERS_SLO/`
//! (run `ramsis-cli gen` first); the ModelSwitching table from
//! `policy_gen/MS_WORKERS_SLO/table.json` (run `ramsis-cli ms-gen`).
//! Jellyfish+ needs no offline artifacts.

use std::path::Path;

use ramsis_baselines::{JellyfishPlus, ModelSwitching, ResponseLatencyTable};
use ramsis_core::{PolicySet, WorkerPolicy};
use ramsis_sim::{
    CheckpointPolicy, EngineSnapshot, FaultPlan, FileRecorder, LatencyMode, RamsisScheme,
    ServingScheme, Simulation, SimulationConfig, SimulationReport,
};
use ramsis_telemetry::{
    BinSink, DecisionSink, JsonlDecisionSink, JsonlSink, NullDecisionSink, NullSink, SamplePolicy,
    SamplingSink, TelemetrySink,
};
use ramsis_workload::{DivergenceMonitor, LoadEstimator, OracleMonitor, Trace};

use crate::cli_args::CommonArgs;
use crate::commands::{build_profile, policy_dir, result_path, write_json_file};

pub fn run(args: &[String]) -> Result<(), String> {
    let args = CommonArgs::parse(
        args,
        &[
            "--seed",
            "--duration",
            "--stochastic",
            "--telemetry",
            "--telemetry-sample",
            "--decisions",
            "--checkpoint",
            "--checkpoint-every",
            "--resume",
        ],
    )?;
    let method = args.method.as_deref().unwrap_or("RAMSIS");
    let profile = build_profile(&args);
    let seed: u64 = args
        .extra("--seed")
        .unwrap_or("42")
        .parse()
        .map_err(|e| format!("bad --seed: {e}"))?;
    let duration: f64 = args
        .extra("--duration")
        .unwrap_or("30")
        .parse()
        .map_err(|e| format!("bad --duration: {e}"))?;

    let trace = match args.trace.as_str() {
        "real" => Trace::twitter_like(seed),
        "constant" => {
            let load = args.load.ok_or("--trace constant requires --load")?;
            Trace::constant(load, duration)
        }
        path => {
            // Any other value is read as an artifact-format trace file.
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("read trace {path}: {e}"))?;
            Trace::parse_artifact_text(&text)?
        }
    };

    let mut scheme: Box<dyn ServingScheme> = match method {
        "RAMSIS" => {
            let dir = policy_dir(&args.out, "RAMSIS", args.workers, args.slo_ms);
            let mut policies = Vec::new();
            let entries = std::fs::read_dir(&dir).map_err(|e| {
                format!(
                    "no policies at {} (run `ramsis-cli gen`): {e}",
                    dir.display()
                )
            })?;
            for entry in entries {
                let entry = entry.map_err(|e| e.to_string())?;
                if entry.path().extension().is_some_and(|x| x == "json") {
                    let text = std::fs::read_to_string(entry.path()).map_err(|e| e.to_string())?;
                    policies.push(WorkerPolicy::from_json(&text)?);
                }
            }
            println!("loaded {} policies from {}", policies.len(), dir.display());
            Box::new(RamsisScheme::new(
                PolicySet::from_policies(policies).map_err(|e| e.to_string())?,
            ))
        }
        "JF" => Box::new(JellyfishPlus::new(&profile, args.workers)),
        "MS" => {
            let path = policy_dir(&args.out, "MS", args.workers, args.slo_ms).join("table.json");
            let text = std::fs::read_to_string(&path).map_err(|e| {
                format!(
                    "no MS table at {} (run `ramsis-cli ms-gen`): {e}",
                    path.display()
                )
            })?;
            let table: ResponseLatencyTable =
                serde_json::from_str(&text).map_err(|e| e.to_string())?;
            Box::new(ModelSwitching::new(&profile, table))
        }
        other => {
            return Err(format!(
                "unknown method {other:?} (expected RAMSIS, JF, or MS)"
            ))
        }
    };

    // Constant-load runs use the perfect monitor (§7.2); the production
    // trace uses the 500 ms moving average (§6), wrapped so its
    // divergence from the planned trace lands in the report.
    let mut estimator: Box<dyn LoadEstimator> = if args.trace == "constant" {
        Box::new(OracleMonitor::new(trace.clone()))
    } else {
        Box::new(DivergenceMonitor::new(trace.clone()))
    };

    // Durable-run flags: `--checkpoint PATH` writes crash-consistent
    // snapshots every `--checkpoint-every N` events; `--resume true`
    // restarts from the snapshot at PATH (continuing the telemetry log
    // in place, torn tail healed) instead of starting over.
    let ckpt_path = args.extra("--checkpoint");
    let ckpt_every: u64 = args
        .extra("--checkpoint-every")
        .unwrap_or("100000")
        .parse()
        .map_err(|e| format!("bad --checkpoint-every: {e}"))?;
    let resuming = args
        .extra("--resume")
        .is_some_and(|v| v == "true" || v == "1");

    let mut config = SimulationConfig::new(args.workers, args.slo_s()).seeded(seed);
    if args
        .extra("--stochastic")
        .is_some_and(|v| v == "true" || v == "1")
    {
        config.latency = LatencyMode::Stochastic;
    }
    if ckpt_path.is_some() {
        config = config.with_checkpoints(CheckpointPolicy::every_events(ckpt_every));
    }
    let snapshot = match (resuming, ckpt_path) {
        (true, Some(p)) => Some(EngineSnapshot::read(Path::new(p)).map_err(|e| e.to_string())?),
        (true, None) => return Err("--resume requires --checkpoint PATH".into()),
        (false, _) => None,
    };

    // Decision provenance: `--decisions PATH` records every routing /
    // model-selection decision as a JSONL stream of DecisionRecords
    // (explain with `ramsis-cli why`). Off by default — and when off
    // the run is byte-identical to a plain one.
    let decisions_path = args.extra("--decisions");
    if decisions_path.is_some() && ckpt_path.is_some() {
        return Err(
            "--decisions cannot be combined with --checkpoint (decision provenance \
             for durable runs is not supported yet)"
                .into(),
        );
    }
    let mut decision_sink = match decisions_path {
        Some(p) => {
            Some(JsonlDecisionSink::create(p).map_err(|e| format!("open decision log {p}: {e}"))?)
        }
        None => None,
    };
    let mut null_decisions = NullDecisionSink;

    let sim = Simulation::new(&profile, config).expect("valid simulation config");
    let plan = FaultPlan::none();
    let run_with_sink = |sink: &mut dyn TelemetrySink,
                         scheme: &mut dyn ServingScheme,
                         estimator: &mut dyn LoadEstimator,
                         decisions: &mut dyn DecisionSink|
     -> Result<SimulationReport, String> {
        let Some(ckpt) = ckpt_path else {
            return sim
                .run_faulted_traced_decisions(&trace, &plan, scheme, estimator, sink, decisions)
                .map_err(|e| e.to_string());
        };
        let mut recorder = FileRecorder::new(ckpt);
        let outcome = match &snapshot {
            Some(snap) => {
                sim.resume_durable(&trace, &plan, scheme, estimator, sink, snap, &mut recorder)
            }
            None => sim.run_durable(&trace, &plan, scheme, estimator, sink, &mut recorder),
        }
        .map_err(|e| e.to_string())?;
        match outcome {
            Some(report) => {
                println!("checkpoints: {} written -> {ckpt}", recorder.written());
                Ok(report)
            }
            None => Err(format!(
                "checkpoint write to {ckpt} failed: {}",
                recorder
                    .take_error()
                    .unwrap_or_else(|| "unknown I/O error".into())
            )),
        }
    };
    // Telemetry encoding and sampling: `.bin` paths get the compact
    // binary codec; `--telemetry-sample RATE` wraps either sink in
    // deterministic query-coherent sampling keyed by the sim seed.
    // Neither composes with `--checkpoint`, whose resume contract
    // (truncate the log to `events_emitted` whole records) assumes an
    // unsampled JSONL stream.
    let sample_rate = args
        .extra("--telemetry-sample")
        .map(|v| {
            let rate: f64 = v
                .parse()
                .map_err(|e| format!("bad --telemetry-sample: {e}"))?;
            SamplePolicy::new(rate, seed).map(|_| rate)
        })
        .transpose()?;
    if sample_rate.is_some() && args.extra("--telemetry").is_none() {
        return Err("--telemetry-sample requires --telemetry PATH".into());
    }
    let binary_trace = args
        .extra("--telemetry")
        .is_some_and(|p| p.ends_with(".bin"));
    if (sample_rate.is_some() || binary_trace) && ckpt_path.is_some() {
        return Err(
            "--checkpoint requires a plain JSONL telemetry log (no --telemetry-sample, \
             no .bin path): the resume contract truncates to an event-count prefix"
                .into(),
        );
    }

    let report = match args.extra("--telemetry") {
        Some(path) => {
            let decisions: &mut dyn DecisionSink = match decision_sink.as_mut() {
                Some(s) => s,
                None => &mut null_decisions,
            };
            let announce = |events: u64, sampled_out: Option<u64>| {
                let enc = if binary_trace { "binary" } else { "jsonl" };
                match sampled_out {
                    Some(out) => println!(
                        "telemetry: {events} events -> {path} ({enc}, sampled at rate {}; \
                         {out} events withheld; inspect with `ramsis-cli telemetry {path}`)",
                        sample_rate.unwrap_or(1.0)
                    ),
                    None => println!(
                        "telemetry: {events} events -> {path} ({enc}; inspect with \
                         `ramsis-cli telemetry {path}`)"
                    ),
                }
            };
            // A lost event is a lie in the log: every arm fails the run
            // loudly rather than report success over a truncated trace.
            let io_err = |written: u64, e: Option<std::io::Error>| {
                format!(
                    "telemetry log {path} failed after {written} events: {}",
                    e.map_or_else(|| "unknown I/O error".into(), |e| e.to_string())
                )
            };
            match (binary_trace, sample_rate) {
                (false, None) => {
                    let mut sink = match &snapshot {
                        // A resumed run continues the log in place:
                        // truncate to the checkpoint's whole-record
                        // prefix (healing any tail torn by the kill),
                        // then append.
                        Some(snap) => JsonlSink::resume_at(path, snap.meta.events_emitted)
                            .map_err(|e| format!("reopen telemetry log {path}: {e}"))?,
                        None => JsonlSink::create(path)
                            .map_err(|e| format!("open telemetry log {path}: {e}"))?,
                    };
                    let report =
                        run_with_sink(&mut sink, scheme.as_mut(), estimator.as_mut(), decisions)?;
                    if sink.write_failed() {
                        return Err(io_err(sink.lines(), sink.take_error()));
                    }
                    let lines = sink.lines();
                    sink.finish()
                        .map_err(|e| format!("write telemetry log {path}: {e}"))?;
                    announce(lines, None);
                    report
                }
                (true, None) => {
                    let mut sink = BinSink::create(path)
                        .map_err(|e| format!("open telemetry log {path}: {e}"))?;
                    let report =
                        run_with_sink(&mut sink, scheme.as_mut(), estimator.as_mut(), decisions)?;
                    if sink.write_failed() {
                        return Err(io_err(sink.records(), sink.take_error()));
                    }
                    let records = sink.records();
                    sink.finish()
                        .map_err(|e| format!("write telemetry log {path}: {e}"))?;
                    announce(records, None);
                    report
                }
                (false, Some(rate)) => {
                    let inner = JsonlSink::create_sampled(path, rate, seed)
                        .map_err(|e| format!("open telemetry log {path}: {e}"))?;
                    let policy = SamplePolicy::new(rate, seed)?;
                    let mut sink = SamplingSink::new(inner, policy);
                    let report =
                        run_with_sink(&mut sink, scheme.as_mut(), estimator.as_mut(), decisions)?;
                    let sampled_out = sink.sampled_out_events();
                    let inner = sink.finish();
                    if inner.write_failed() {
                        let mut inner = inner;
                        return Err(io_err(inner.lines(), inner.take_error()));
                    }
                    let lines = inner.lines();
                    inner
                        .finish()
                        .map_err(|e| format!("write telemetry log {path}: {e}"))?;
                    announce(lines, Some(sampled_out));
                    report
                }
                (true, Some(rate)) => {
                    let inner = BinSink::create_sampled(path, rate, seed)
                        .map_err(|e| format!("open telemetry log {path}: {e}"))?;
                    let policy = SamplePolicy::new(rate, seed)?;
                    let mut sink = SamplingSink::new(inner, policy);
                    let report =
                        run_with_sink(&mut sink, scheme.as_mut(), estimator.as_mut(), decisions)?;
                    let sampled_out = sink.sampled_out_events();
                    let inner = sink.finish();
                    if inner.write_failed() {
                        let mut inner = inner;
                        return Err(io_err(inner.records(), inner.take_error()));
                    }
                    let records = inner.records();
                    inner
                        .finish()
                        .map_err(|e| format!("write telemetry log {path}: {e}"))?;
                    announce(records, Some(sampled_out));
                    report
                }
            }
        }
        None => {
            let decisions: &mut dyn DecisionSink = match decision_sink.as_mut() {
                Some(s) => s,
                None => &mut null_decisions,
            };
            run_with_sink(
                &mut NullSink,
                scheme.as_mut(),
                estimator.as_mut(),
                decisions,
            )?
        }
    };

    if let Some(mut sink) = decision_sink {
        let path = decisions_path.expect("sink implies path");
        if sink.write_failed() {
            return Err(format!(
                "decision log {path} failed after {} records: {}",
                sink.lines(),
                sink.take_error()
                    .map_or_else(|| "unknown I/O error".into(), |e| e.to_string())
            ));
        }
        let lines = sink.lines();
        sink.finish()
            .map_err(|e| format!("write decision log {path}: {e}"))?;
        println!(
            "decisions: {lines} records -> {path} (explain with `ramsis-cli why {path} --telemetry TRACE`)"
        );
    }

    println!(
        "{method}: {} queries, accuracy per satisfied query {:.2}%, violation rate {:.4}%",
        report.served,
        report.accuracy_per_satisfied_query,
        report.violation_rate * 100.0
    );
    println!(
        "response time: mean {:.1} ms, p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms",
        report.mean_response_s * 1e3,
        report.p50_response_s * 1e3,
        report.p95_response_s * 1e3,
        report.p99_response_s * 1e3
    );
    if let Some(div) = &report.divergence {
        println!(
            "load-monitor divergence vs planned trace: mean {:.3}, max {:.3} ({} samples)",
            div.mean, div.max, div.samples
        );
    }
    let path = result_path(
        &args.out,
        args.task,
        method,
        &args.trace,
        args.slo_ms,
        args.workers,
        args.load,
    );
    write_json_file(&path, &report)?;
    println!("script complete!");
    Ok(())
}
