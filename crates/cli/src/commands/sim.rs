//! `ramsis-cli sim` — the artifact's `run_sim.py`.
//!
//! Simulates one MS&S method (`--m RAMSIS|JF|MS`) on either the
//! production trace (`--trace real`) or a constant load (`--trace
//! constant --load QPS`), then writes the report to
//! `results/TASK_METHOD_TRACE_SLO_WORKERS[_LOAD].json`.
//!
//! RAMSIS policies are loaded from `policy_gen/RAMSIS_WORKERS_SLO/`
//! (run `ramsis-cli gen` first); the ModelSwitching table from
//! `policy_gen/MS_WORKERS_SLO/table.json` (run `ramsis-cli ms-gen`).
//! Jellyfish+ needs no offline artifacts.

use ramsis_baselines::{JellyfishPlus, ModelSwitching, ResponseLatencyTable};
use ramsis_core::{PolicySet, WorkerPolicy};
use ramsis_sim::{LatencyMode, RamsisScheme, ServingScheme, Simulation, SimulationConfig};
use ramsis_telemetry::JsonlSink;
use ramsis_workload::{DivergenceMonitor, LoadEstimator, OracleMonitor, Trace};

use crate::cli_args::CommonArgs;
use crate::commands::{build_profile, policy_dir, result_path, write_json_file};

pub fn run(args: &[String]) -> Result<(), String> {
    let args = CommonArgs::parse(
        args,
        &["--seed", "--duration", "--stochastic", "--telemetry"],
    )?;
    let method = args.method.as_deref().unwrap_or("RAMSIS");
    let profile = build_profile(&args);
    let seed: u64 = args
        .extra("--seed")
        .unwrap_or("42")
        .parse()
        .map_err(|e| format!("bad --seed: {e}"))?;
    let duration: f64 = args
        .extra("--duration")
        .unwrap_or("30")
        .parse()
        .map_err(|e| format!("bad --duration: {e}"))?;

    let trace = match args.trace.as_str() {
        "real" => Trace::twitter_like(seed),
        "constant" => {
            let load = args.load.ok_or("--trace constant requires --load")?;
            Trace::constant(load, duration)
        }
        path => {
            // Any other value is read as an artifact-format trace file.
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("read trace {path}: {e}"))?;
            Trace::parse_artifact_text(&text)?
        }
    };

    let mut scheme: Box<dyn ServingScheme> = match method {
        "RAMSIS" => {
            let dir = policy_dir(&args.out, "RAMSIS", args.workers, args.slo_ms);
            let mut policies = Vec::new();
            let entries = std::fs::read_dir(&dir).map_err(|e| {
                format!(
                    "no policies at {} (run `ramsis-cli gen`): {e}",
                    dir.display()
                )
            })?;
            for entry in entries {
                let entry = entry.map_err(|e| e.to_string())?;
                if entry.path().extension().is_some_and(|x| x == "json") {
                    let text = std::fs::read_to_string(entry.path()).map_err(|e| e.to_string())?;
                    policies.push(WorkerPolicy::from_json(&text)?);
                }
            }
            println!("loaded {} policies from {}", policies.len(), dir.display());
            Box::new(RamsisScheme::new(
                PolicySet::from_policies(policies).map_err(|e| e.to_string())?,
            ))
        }
        "JF" => Box::new(JellyfishPlus::new(&profile, args.workers)),
        "MS" => {
            let path = policy_dir(&args.out, "MS", args.workers, args.slo_ms).join("table.json");
            let text = std::fs::read_to_string(&path).map_err(|e| {
                format!(
                    "no MS table at {} (run `ramsis-cli ms-gen`): {e}",
                    path.display()
                )
            })?;
            let table: ResponseLatencyTable =
                serde_json::from_str(&text).map_err(|e| e.to_string())?;
            Box::new(ModelSwitching::new(&profile, table))
        }
        other => {
            return Err(format!(
                "unknown method {other:?} (expected RAMSIS, JF, or MS)"
            ))
        }
    };

    // Constant-load runs use the perfect monitor (§7.2); the production
    // trace uses the 500 ms moving average (§6), wrapped so its
    // divergence from the planned trace lands in the report.
    let mut estimator: Box<dyn LoadEstimator> = if args.trace == "constant" {
        Box::new(OracleMonitor::new(trace.clone()))
    } else {
        Box::new(DivergenceMonitor::new(trace.clone()))
    };

    let mut config = SimulationConfig::new(args.workers, args.slo_s()).seeded(seed);
    if args
        .extra("--stochastic")
        .is_some_and(|v| v == "true" || v == "1")
    {
        config.latency = LatencyMode::Stochastic;
    }
    let sim = Simulation::new(&profile, config).expect("valid simulation config");
    let report = match args.extra("--telemetry") {
        Some(path) => {
            let mut sink =
                JsonlSink::create(path).map_err(|e| format!("open telemetry log {path}: {e}"))?;
            let report = sim.run_traced(&trace, scheme.as_mut(), estimator.as_mut(), &mut sink);
            let lines = sink.lines();
            sink.finish()
                .map_err(|e| format!("write telemetry log {path}: {e}"))?;
            println!(
                "telemetry: {lines} events -> {path} (inspect with `ramsis-cli telemetry {path}`)"
            );
            report
        }
        None => sim.run(&trace, scheme.as_mut(), estimator.as_mut()),
    };

    println!(
        "{method}: {} queries, accuracy per satisfied query {:.2}%, violation rate {:.4}%",
        report.served,
        report.accuracy_per_satisfied_query,
        report.violation_rate * 100.0
    );
    println!(
        "response time: mean {:.1} ms, p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms",
        report.mean_response_s * 1e3,
        report.p50_response_s * 1e3,
        report.p95_response_s * 1e3,
        report.p99_response_s * 1e3
    );
    if let Some(div) = &report.divergence {
        println!(
            "load-monitor divergence vs planned trace: mean {:.3}, max {:.3} ({} samples)",
            div.mean, div.max, div.samples
        );
    }
    let path = result_path(
        &args.out,
        args.task,
        method,
        &args.trace,
        args.slo_ms,
        args.workers,
        args.load,
    );
    write_json_file(&path, &report)?;
    println!("script complete!");
    Ok(())
}
