//! `ramsis-cli profiles` — export/import raw latency profiles in the
//! paper artifact's layout (§A.2.4: `profiles/MODELNAME/BATCHSIZE.json`
//! sample lists plus an accuracy dictionary).
//!
//! `--export DIR` synthesizes samples from the built-in catalog and
//! writes the layout; `--import DIR` reads a layout (e.g. measured on a
//! real TorchServe/Triton deployment), reduces it with the p95 pipeline,
//! and prints the Fig. 3-style profile summary.

use ramsis_bench::render_table;
use ramsis_profiles::{pareto_front, ModelCatalog, RawProfiles, Task};

use crate::cli_args::CommonArgs;

pub fn run(args: &[String]) -> Result<(), String> {
    let args = CommonArgs::parse(args, &["--export", "--import", "--invocations", "--seed"])?;
    match (args.extra("--export"), args.extra("--import")) {
        (Some(dir), None) => export(&args, std::path::Path::new(dir)),
        (None, Some(dir)) => import(&args, std::path::Path::new(dir)),
        _ => Err("profiles requires exactly one of --export DIR or --import DIR".into()),
    }
}

fn export(args: &CommonArgs, dir: &std::path::Path) -> Result<(), String> {
    let catalog = match args.task {
        Task::ImageClassification => ModelCatalog::torchvision_image(),
        Task::TextClassification => ModelCatalog::bert_text(),
    };
    let invocations: usize = args
        .extra("--invocations")
        .unwrap_or("100")
        .parse()
        .map_err(|e| format!("bad --invocations: {e}"))?;
    let seed: u64 = args
        .extra("--seed")
        .unwrap_or("0x5241")
        .trim_start_matches("0x")
        .parse()
        .or_else(|_| u64::from_str_radix(args.extra("--seed").unwrap_or("5241"), 16))
        .map_err(|e| format!("bad --seed: {e}"))?;
    // Profile enough batches for the loosest paper SLO.
    let raw = RawProfiles::synthesize(&catalog, 64, invocations, seed);
    raw.write_dir(dir)?;
    println!(
        "exported {} models x 64 batch sizes x {invocations} invocations to {}",
        catalog.len(),
        dir.display()
    );
    Ok(())
}

fn import(args: &CommonArgs, dir: &std::path::Path) -> Result<(), String> {
    let raw = RawProfiles::read_dir(dir)?;
    let profile = raw.to_worker_profile(args.task, args.slo_s(), 95.0)?;
    println!(
        "imported {} models from {}; B_w = {} at SLO {} ms",
        profile.n_models(),
        dir.display(),
        profile.max_batch(),
        args.slo_ms
    );
    let points: Vec<(f64, f64)> = profile
        .models
        .iter()
        .map(|m| (m.batches[0].p95_s, m.accuracy))
        .collect();
    let front = pareto_front(&points);
    let mut rows = Vec::new();
    for (i, m) in profile.models.iter().enumerate() {
        rows.push(vec![
            m.name.clone(),
            format!("{:.2}", m.accuracy),
            format!("{:.1}", m.batches[0].p95_s * 1e3),
            format!("{:.1}", m.spec.per_item_s * 1e3),
            if front.contains(&i) { "yes" } else { "" }.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["model", "accuracy_%", "p95_ms", "fit_per_item_ms", "pareto"],
            &rows
        )
    );
    println!(
        "{} of {} models on the Pareto front; use `ramsis-cli gen` against \
         these profiles via the library API (RawProfiles::to_worker_profile).",
        front.len(),
        profile.n_models()
    );
    Ok(())
}
