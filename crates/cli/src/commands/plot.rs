//! `ramsis-cli plot` — the artifact's `plot.py`.
//!
//! Loads `results/TASK_*_TRACE_SLO_*.json` files written by
//! `ramsis-cli sim`, prints the accuracy/violation comparison table and
//! ASCII plots, and reports the headline "average/highest accuracy %
//! increase for RAMSIS vs `<baseline>`" lines (§A.4.2).

use std::collections::BTreeMap;

use ramsis_bench::{ascii_plot, render_table};
use ramsis_sim::SimulationReport;

use crate::cli_args::CommonArgs;

pub fn run(args: &[String]) -> Result<(), String> {
    let args = CommonArgs::parse(args, &[])?;
    let dir = args.out.join("results");
    let prefix = format!("{}_", args.task.name());
    let infix = format!("_{}_{}_", args.trace, args.slo_ms);

    // keyed by (x value: load or workers) -> method -> report.
    let mut by_x: BTreeMap<u64, BTreeMap<String, SimulationReport>> = BTreeMap::new();
    let entries = std::fs::read_dir(&dir).map_err(|e| {
        format!(
            "no results at {} (run `ramsis-cli sim`): {e}",
            dir.display()
        )
    })?;
    let mut loaded = 0;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.starts_with(&prefix) || !name.contains(&infix) || !name.ends_with(".json") {
            continue;
        }
        // TASK_METHOD_TRACE_SLO_WORKERS[_LOAD].json
        let parts: Vec<&str> = name.trim_end_matches(".json").split('_').collect();
        if parts.len() < 5 {
            continue;
        }
        let method = parts[1].to_string();
        let x: u64 = if args.trace == "constant" {
            // constant: x = load (last component).
            parts
                .last()
                .and_then(|s| s.parse::<f64>().ok())
                .map(|l| l as u64)
                .ok_or_else(|| format!("malformed result name {name}"))?
        } else {
            // real: x = workers.
            parts[4]
                .parse()
                .map_err(|_| format!("malformed result name {name}"))?
        };
        let text = std::fs::read_to_string(entry.path()).map_err(|e| e.to_string())?;
        let report: SimulationReport = serde_json::from_str(&text).map_err(|e| e.to_string())?;
        by_x.entry(x).or_default().insert(method, report);
        loaded += 1;
    }
    if loaded == 0 {
        return Err(format!(
            "no matching results under {} for task={} trace={} SLO={}",
            dir.display(),
            args.task.name(),
            args.trace,
            args.slo_ms
        ));
    }
    println!("loaded {loaded} result files from {}", dir.display());

    let methods: Vec<String> = {
        let mut m: Vec<String> = by_x.values().flat_map(|per| per.keys().cloned()).collect();
        m.sort();
        m.dedup();
        // RAMSIS first for readability.
        m.sort_by_key(|x| (x != "RAMSIS", x.clone()));
        m
    };

    let x_label = if args.trace == "constant" {
        "load_qps"
    } else {
        "workers"
    };
    let mut header: Vec<String> = vec![x_label.to_string()];
    for m in &methods {
        header.push(format!("{m}_acc"));
        header.push(format!("{m}_viol%"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for (&x, per) in &by_x {
        let mut row = vec![x.to_string()];
        for m in &methods {
            match per.get(m) {
                Some(r) => {
                    row.push(format!("{:.2}", r.accuracy_per_satisfied_query));
                    row.push(format!("{:.4}", r.violation_rate * 100.0));
                }
                None => {
                    row.push("-".into());
                    row.push("-".into());
                }
            }
        }
        rows.push(row);
    }
    println!("{}", render_table(&header_refs, &rows));

    // The artifact's headline lines.
    for baseline in methods.iter().filter(|m| *m != "RAMSIS") {
        let mut deltas = Vec::new();
        for per in by_x.values() {
            if let (Some(r), Some(b)) = (per.get("RAMSIS"), per.get(baseline)) {
                if r.violation_rate < 0.05 && b.violation_rate < 0.05 {
                    deltas.push(r.accuracy_per_satisfied_query - b.accuracy_per_satisfied_query);
                }
            }
        }
        if deltas.is_empty() {
            continue;
        }
        let avg = deltas.iter().sum::<f64>() / deltas.len() as f64;
        let max = deltas.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        println!("average accuracy % increase for RAMSIS vs. {baseline}: {avg:.2}");
        println!("highest accuracy % increase for RAMSIS vs. {baseline}: {max:.2}");
    }

    let series: Vec<(String, Vec<(f64, f64)>)> = methods
        .iter()
        .map(|m| {
            (
                m.clone(),
                by_x.iter()
                    .filter_map(|(&x, per)| {
                        per.get(m)
                            .filter(|r| r.violation_rate < 0.05)
                            .map(|r| (x as f64, r.accuracy_per_satisfied_query))
                    })
                    .collect(),
            )
        })
        .collect();
    println!("accuracy (%) vs {x_label} (violation rate < 5%):");
    println!("{}", ascii_plot(&series, 64, 12));
    Ok(())
}
