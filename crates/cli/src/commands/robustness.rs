//! `ramsis-cli robustness` — fault injection + graceful degradation.
//!
//! Runs the canonical fault schedule (worker 0 down over [10 s, 40 s),
//! worker 1 at 2× latency over [15 s, 35 s), a 3× arrival surge over
//! [20 s, 30 s)) against the degradation-aware RAMSIS, stale-policy
//! RAMSIS, and the fault-oblivious baselines, writing the outcome table
//! to `results/TASK_robustness_SLO_WORKERS.json`. See EXPERIMENTS.md
//! "robustness_faults" for the full experiment.

use ramsis_bench::robustness::{run_robustness, RobustnessConfig};
use ramsis_sim::CrashPolicy;

use crate::cli_args::CommonArgs;
use crate::commands::{build_profile, write_json_file};

pub fn run(args: &[String]) -> Result<(), String> {
    // This experiment defaults to the bench harness's coarser D = 10
    // grid (not the CLI-wide 25): degradation margins are reported with
    // the same discretization the robustness_faults binary uses.
    let d_overridden = args.iter().any(|a| a == "--d");
    let args = CommonArgs::parse(args, &["--seed", "--duration", "--crash-policy"])?;
    if args.workers < 2 {
        return Err("the canonical fault schedule needs at least 2 workers".into());
    }
    let crash_policy = match args.extra("--crash-policy").unwrap_or("requeue") {
        "requeue" => CrashPolicy::RequeueToSurvivors,
        "drop" => CrashPolicy::Drop,
        other => return Err(format!("bad --crash-policy {other:?} (requeue|drop)")),
    };
    let cfg = RobustnessConfig {
        slo_s: args.slo_s(),
        workers: args.workers,
        min_workers: (args.workers / 2).max(1),
        load_qps: args.load.unwrap_or(100.0),
        duration_s: args
            .extra("--duration")
            .unwrap_or("60")
            .parse()
            .map_err(|e| format!("bad --duration: {e}"))?,
        d: if d_overridden { args.d } else { 10 },
        seed: args
            .extra("--seed")
            .unwrap_or("64023")
            .parse()
            .map_err(|e| format!("bad --seed: {e}"))?,
        crash_policy,
    };

    let profile = build_profile(&args);
    let outcomes = run_robustness(&profile, &cfg);
    for o in &outcomes {
        println!(
            "{:>18}: miss-or-loss {:>8.4}%, violations in/out of fault windows \
             {:>8.4}% / {:>8.4}%, accuracy {:.2}%",
            o.method,
            o.miss_or_loss_rate * 100.0,
            o.violation_rate_in_fault * 100.0,
            o.violation_rate_outside_fault * 100.0,
            o.report.accuracy_per_satisfied_query,
        );
    }

    let path = args.out.join("results").join(format!(
        "{}_robustness_{}_{}.json",
        args.task.name(),
        args.slo_ms,
        args.workers
    ));
    write_json_file(&path, &outcomes)?;
    println!("script complete!");
    Ok(())
}
