//! `ramsis-cli chaos` — randomized resilience sweep.
//!
//! Generates `--runs` randomized simulations from `--seed` (cluster
//! size, load, fault plan, and resilience policy all vary per run),
//! executes each twice, and checks the invariants described in
//! [`ramsis_sim::chaos`]: determinism, telemetry conservation,
//! report/event counter agreement, hedge-cancel consistency, admission
//! queue bounds, and — when a run draws the failure detector — the
//! detection-bound, reinstatement, and breaker-transition invariants.
//! Any violation is reported with the run's derived seed so it can be
//! reproduced in isolation.
//!
//! ```text
//! ramsis-cli chaos [--runs N] [--seed S] [--max-workers N]
//!                  [--max-load QPS] [--SLO MS] [--kill-resume]
//!                  [--health] [--json] [--out PATH]
//! ```
//!
//! `--kill-resume` adds the durability dimension: each scenario also
//! runs with checkpointing on, is killed at a random checkpoint, and
//! must resume byte-identically (report and telemetry suffix).
//! `--health` forces the failure-detector dimension on every run
//! (normally drawn at random) so each scenario exercises suspicion,
//! circuit breakers, and the detection-bound invariants.
//!
//! Exit is non-zero when any invariant fails; CI runs the 25-run smoke
//! mode (see scripts/ci.sh).

use ramsis_bench::render_table;
use ramsis_sim::ChaosConfig;

use crate::commands::write_json_file;

pub fn run(args: &[String]) -> Result<(), String> {
    let mut cfg = ChaosConfig::default();
    let mut json = false;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--runs" => {
                cfg.runs = value("--runs")?
                    .parse()
                    .map_err(|e| format!("bad --runs: {e}"))?;
            }
            "--seed" => {
                cfg.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--max-workers" => {
                cfg.max_workers = value("--max-workers")?
                    .parse()
                    .map_err(|e| format!("bad --max-workers: {e}"))?;
            }
            "--max-load" => {
                cfg.max_load_qps = value("--max-load")?
                    .parse()
                    .map_err(|e| format!("bad --max-load: {e}"))?;
            }
            "--max-duration" => {
                cfg.max_duration_s = value("--max-duration")?
                    .parse()
                    .map_err(|e| format!("bad --max-duration: {e}"))?;
            }
            "--SLO" => {
                let ms: f64 = value("--SLO")?
                    .parse()
                    .map_err(|e| format!("bad --SLO: {e}"))?;
                cfg.slo_s = ms / 1e3;
            }
            "--kill-resume" => cfg.kill_resume = true,
            "--health" => cfg.health = true,
            "--json" => json = true,
            "--out" => out = Some(value("--out")?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    cfg.validate().map_err(|e| e.to_string())?;

    let report = cfg.run_sweep().map_err(|e| e.to_string())?;

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
    } else {
        let table: Vec<Vec<String>> = report
            .runs
            .iter()
            .map(|r| {
                vec![
                    r.run.to_string(),
                    format!("{:#018x}", r.seed),
                    r.workers.to_string(),
                    format!("{:.1}", r.load_qps),
                    r.routing.clone(),
                    r.mechanisms.clone(),
                    r.arrivals.to_string(),
                    r.served.to_string(),
                    r.dropped.to_string(),
                    r.timeouts.to_string(),
                    r.retries.to_string(),
                    r.hedges.to_string(),
                    r.admission_shed.to_string(),
                    if r.autoscaled {
                        format!("{}/{}/{}", r.scale_ups, r.scale_downs, r.brownout_enters)
                    } else {
                        "-".to_string()
                    },
                    if r.detected {
                        format!("{}/{}/{}", r.suspects, r.reinstates, r.breaker_opens)
                    } else {
                        "-".to_string()
                    },
                    match r.resumed_from {
                        Some(at) => format!("{}@{at}", r.checkpoints),
                        None if r.checkpoints > 0 => r.checkpoints.to_string(),
                        None => "-".to_string(),
                    },
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &[
                    "run",
                    "seed",
                    "w",
                    "qps",
                    "route",
                    "mech",
                    "arrive",
                    "served",
                    "drop",
                    "t/o",
                    "retry",
                    "hedge",
                    "adm",
                    "up/dn/bo",
                    "sus/re/bo",
                    "ckpt",
                ],
                &table
            )
        );
        for f in &report.failures {
            println!(
                "FAIL run {} [{}]: {} (reproduce with seed {:#x})",
                f.run, f.invariant, f.detail, f.seed
            );
        }
        println!("{}", report.summary());
    }
    if let Some(path) = out {
        write_json_file(std::path::Path::new(&path), &report)?;
    }
    if report.passed() {
        Ok(())
    } else {
        Err(format!(
            "{} invariant violation(s) — see seeds above",
            report.failures.len()
        ))
    }
}
