//! `ramsis-cli autoscale` — drive the fault-aware autoscaler over a
//! diurnal trace and show the elastic-capacity story.
//!
//! The default mode runs one elastic simulation (fastest-fixed scheme,
//! so no policies need solving) on the Fig. 5 diurnal shape rescaled to
//! `--trough`/`--swing`, then prints the autoscaler's summary and the
//! scaling timeline: every scale-out, warm-up completion, scale-in,
//! drain completion, and brownout move with its timestamp.
//!
//! ```text
//! ramsis-cli autoscale [--task image|text] [--SLO MS] [--seed S]
//!                      [--trough QPS] [--swing X] [--duration S]
//!                      [--min N] [--max N] [--target QPS] [--warmup S]
//!                      [--events N] [--frontier] [--json] [--out PATH]
//! ```
//!
//! `--frontier` instead runs the full `elastic_frontier` comparison
//! (fixed pools vs elastic with the degradable model-selection scheme —
//! slower, it solves policy sets) and prints the
//! cost–accuracy–violation table plus the frontier claim.

use ramsis_bench::elastic::{frontier_claim, run_elastic_frontier, ElasticFrontierConfig};
use ramsis_bench::render_table;
use ramsis_profiles::{ModelCatalog, ProfilerConfig, Task, WorkerProfile};
use ramsis_sim::{FastestFixed, Routing, Simulation, SimulationConfig};
use ramsis_telemetry::{Event, VecSink};
use ramsis_workload::LoadMonitor;

use crate::commands::write_json_file;

/// Formats a Nanos timestamp as seconds.
fn secs(at: u64) -> f64 {
    at as f64 / 1e9
}

#[allow(clippy::too_many_lines)]
pub fn run(args: &[String]) -> Result<(), String> {
    let mut cfg = ElasticFrontierConfig::default();
    let mut task = Task::ImageClassification;
    let mut min_pool = 1usize;
    let mut max_events = 40usize;
    let mut frontier = false;
    let mut json = false;
    let mut out: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        let parsed = |flag: &str, v: String| -> Result<f64, String> {
            v.parse().map_err(|e| format!("bad {flag}: {e}"))
        };
        match arg.as_str() {
            "--task" => {
                task = match value("--task")?.as_str() {
                    "image" => Task::ImageClassification,
                    "text" => Task::TextClassification,
                    other => return Err(format!("unknown task {other:?}")),
                }
            }
            "--SLO" | "--slo" => cfg.slo_s = parsed("--SLO", value("--SLO")?)? / 1e3,
            "--seed" => {
                cfg.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--trough" => cfg.trough_qps = parsed("--trough", value("--trough")?)?,
            "--swing" => cfg.swing = parsed("--swing", value("--swing")?)?,
            "--duration" => cfg.duration_s = parsed("--duration", value("--duration")?)?,
            "--min" => {
                min_pool = value("--min")?
                    .parse()
                    .map_err(|e| format!("bad --min: {e}"))?;
            }
            "--max" => {
                cfg.max_pool = value("--max")?
                    .parse()
                    .map_err(|e| format!("bad --max: {e}"))?;
            }
            "--target" => {
                cfg.target_qps_per_worker = parsed("--target", value("--target")?)?;
            }
            "--warmup" => cfg.warmup_s = parsed("--warmup", value("--warmup")?)?,
            "--events" => {
                max_events = value("--events")?
                    .parse()
                    .map_err(|e| format!("bad --events: {e}"))?;
            }
            "--frontier" => frontier = true,
            "--json" => json = true,
            "--out" => out = Some(value("--out")?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }

    let catalog = match task {
        Task::ImageClassification => ModelCatalog::torchvision_image(),
        Task::TextClassification => ModelCatalog::bert_text(),
    };
    let profile = WorkerProfile::build(
        &catalog,
        std::time::Duration::from_secs_f64(cfg.slo_s),
        ProfilerConfig::default(),
    );

    if frontier {
        let outcomes = run_elastic_frontier(&profile, &cfg);
        let rows: Vec<Vec<String>> = outcomes
            .iter()
            .map(|o| {
                vec![
                    o.method.clone(),
                    format!("{:.1}", o.worker_seconds),
                    format!("{:.4}%", o.miss_or_loss_rate * 100.0),
                    format!("{:.4}", o.accuracy),
                    format!("{}", o.scale_ups),
                    format!("{}", o.scale_downs),
                    format!("{}", o.brownout_enters),
                ]
            })
            .collect();
        if json {
            println!(
                "{}",
                serde_json::to_string_pretty(&outcomes).map_err(|e| e.to_string())?
            );
        } else {
            println!(
                "{}",
                render_table(
                    &[
                        "method",
                        "worker-s",
                        "miss-or-loss",
                        "accuracy",
                        "ups",
                        "downs",
                        "brownouts",
                    ],
                    &rows,
                )
            );
            let (elastic_ws, fixed_ws) = frontier_claim(&outcomes);
            println!(
                "frontier: elastic {elastic_ws:.1} worker-seconds vs {fixed_ws:.1} for the \
                 cheapest fixed pool at equal-or-better miss-or-loss"
            );
        }
        if let Some(path) = out {
            write_json_file(std::path::Path::new(&path), &outcomes)?;
        }
        return Ok(());
    }

    let mut policy = cfg.autoscale_policy();
    policy.min_workers = min_pool;
    policy.validate().map_err(|e| e.to_string())?;
    if min_pool > cfg.max_pool {
        return Err(format!("--min {min_pool} exceeds --max {}", cfg.max_pool));
    }
    let trace = cfg.diurnal_trace();
    let sim = Simulation::new(
        &profile,
        SimulationConfig::new(min_pool, cfg.slo_s)
            .seeded(cfg.seed)
            .with_autoscale(policy),
    )
    .map_err(|e| e.to_string())?;
    let mut scheme = FastestFixed::new(profile.fastest_model(), Routing::PerWorkerRoundRobin);
    let mut monitor = LoadMonitor::new();
    let mut sink = VecSink::new();
    let report = sim.run_traced(&trace, &mut scheme, &mut monitor, &mut sink);
    let events = sink.into_events();

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
    } else {
        let stats = report
            .autoscale
            .as_ref()
            .expect("elastic run reports autoscale stats");
        println!(
            "=== autoscale — {} classification, SLO {:.0} ms, diurnal {:.0}-{:.0} QPS over \
             {:.0} s, pool {}-{}, target {:.0} QPS/worker, warm-up {:.2} s ===",
            task.name(),
            cfg.slo_s * 1e3,
            cfg.trough_qps,
            cfg.trough_qps * cfg.swing,
            cfg.duration_s,
            min_pool,
            cfg.max_pool,
            cfg.target_qps_per_worker,
            cfg.warmup_s,
        );
        println!(
            "pool: live {}..{} (mean {:.2}), {} scale-ups, {} scale-ins, {} warm-ups, \
             {} drains, {:.1} worker-seconds",
            stats.min_live_workers,
            stats.max_live_workers,
            stats.mean_live_workers,
            stats.scale_ups,
            stats.scale_downs,
            stats.warmups_completed,
            stats.drains_completed,
            stats.worker_seconds,
        );
        println!(
            "brownout: {} enters / {} exits, {:.2} s degraded (max rung {}), \
             {} degraded selections",
            stats.brownout_enters,
            stats.brownout_exits,
            stats.brownout_time_s,
            stats.max_brownout_rung,
            stats.degraded_selections,
        );
        println!(
            "service: {} arrivals, {} served, {} dropped, violation rate {:.4}%",
            report.total_arrivals,
            report.served,
            report.dropped,
            report.violation_rate * 100.0,
        );

        let timeline: Vec<String> = events
            .iter()
            .filter_map(|e| match e {
                Event::ScaleUp { at, worker, live } => Some(format!(
                    "{:>8.3}s  scale-up    worker {worker} warming (live {live})",
                    secs(*at)
                )),
                Event::WorkerWarm { at, worker, live } => Some(format!(
                    "{:>8.3}s  warm        worker {worker} live (live {live})",
                    secs(*at)
                )),
                Event::ScaleDown {
                    at, worker, live, ..
                } => Some(format!(
                    "{:>8.3}s  scale-in    worker {worker} draining (live {live})",
                    secs(*at)
                )),
                Event::DrainComplete { at, worker } => Some(format!(
                    "{:>8.3}s  drained     worker {worker} down",
                    secs(*at)
                )),
                Event::BrownoutEnter {
                    at, rung, load_qps, ..
                } => Some(format!(
                    "{:>8.3}s  brownout    rung {rung} at {load_qps:.0} QPS",
                    secs(*at)
                )),
                Event::BrownoutExit {
                    at, rung, load_qps, ..
                } => Some(format!(
                    "{:>8.3}s  recover     leaving rung {rung} at {load_qps:.0} QPS",
                    secs(*at)
                )),
                _ => None,
            })
            .collect();
        println!("\nscaling timeline ({} events):", timeline.len());
        for line in timeline.iter().take(max_events) {
            println!("  {line}");
        }
        if timeline.len() > max_events {
            println!(
                "  ... {} more (raise --events)",
                timeline.len() - max_events
            );
        }
    }
    if let Some(path) = out {
        write_json_file(std::path::Path::new(&path), &report)?;
    }
    Ok(())
}
