//! `ramsis-cli ms-gen` — the artifact's `MS_gen.py`.
//!
//! Runs the ModelSwitching offline p99-response-latency profiling sweep
//! (§7: "400 to 4000 QPS in increments of 100") and stores the table at
//! `policy_gen/MS_WORKERS_SLO/table.json`.

use ramsis_baselines::profile_response_latency;

use crate::cli_args::CommonArgs;
use crate::commands::{build_profile, policy_dir, write_json_file};

pub fn run(args: &[String]) -> Result<(), String> {
    let args = CommonArgs::parse(args, &["--step", "--duration"])?;
    let profile = build_profile(&args);
    let step: u64 = args
        .extra("--step")
        .unwrap_or("100")
        .parse()
        .map_err(|e| format!("bad --step: {e}"))?;
    let duration: f64 = args
        .extra("--duration")
        .unwrap_or("5")
        .parse()
        .map_err(|e| format!("bad --duration: {e}"))?;
    let loads: Vec<f64> = match args.load {
        Some(l) => vec![l],
        None => (0..)
            .map(|i| (400 + i * step) as f64)
            .take_while(|&l| l <= 4_000.0)
            .collect(),
    };
    println!(
        "profiling {} Pareto models x {} loads ({duration}s each)...",
        profile.pareto_models().len(),
        loads.len()
    );
    let table = profile_response_latency(&profile, args.workers, &loads, duration, 0xB45E);
    // Print the feasibility frontier per load.
    for (i, &load) in table.loads.iter().enumerate() {
        let feasible = table
            .models
            .iter()
            .enumerate()
            .rev()
            .find(|&(j, _)| table.p99[i][j] < profile.slo())
            .map(|(_, &m)| profile.models[m].name.as_str())
            .unwrap_or("none");
        println!("load {load:>6.0}: most accurate feasible model = {feasible}");
    }
    let dir = policy_dir(&args.out, "MS", args.workers, args.slo_ms);
    write_json_file(&dir.join("table.json"), &table)?;
    println!("script complete!");
    Ok(())
}
