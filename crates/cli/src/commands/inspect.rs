//! `ramsis-cli inspect` — pretty-print a generated policy: its design
//! point, §5.1 guarantees, models used, and the artifact-style
//! state→action dictionary ("Each file contains a policy, which is a
//! dictionary mapping states of the MDP to actions", §A.4.2).

use ramsis_core::WorkerPolicy;

use crate::cli_args::CommonArgs;
use crate::commands::build_profile;

pub fn run(args: &[String]) -> Result<(), String> {
    let args = CommonArgs::parse(args, &["--policy", "--states"])?;
    let path = args
        .extra("--policy")
        .ok_or("inspect requires --policy PATH")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let policy = WorkerPolicy::from_json(&text)?;

    println!(
        "policy: {} arrivals at {:.0} QPS, SLO {:.0} ms, {} workers",
        policy.process_name,
        policy.design_load_qps,
        policy.config.slo_s * 1e3,
        policy.config.workers
    );
    println!(
        "state space: N_w = {}, |T_w| = {} ({} states); generated in {:.2}s ({} sweeps)",
        policy.space().max_queue(),
        policy.grid().len(),
        policy.space().len(),
        policy.generation_seconds,
        policy.solve_iterations
    );
    let g = policy.guarantees();
    println!(
        "guarantees: E[accuracy] >= {:.2}%  E[violations] <= {:.4}%  P[full] = {:.2e}  P[empty] = {:.3}",
        g.expected_accuracy,
        g.expected_violation_rate * 100.0,
        g.full_state_probability,
        g.empty_state_probability
    );

    // Resolve model names via the matching profile (the policy stores
    // catalog indices).
    let profile = build_profile(&CommonArgs {
        slo_ms: (policy.config.slo_s * 1e3).round() as u64,
        workers: policy.config.workers,
        ..args.clone()
    });
    let names: Vec<&str> = policy
        .models_used()
        .iter()
        .map(|&m| profile.models[m].name.as_str())
        .collect();
    println!("models used: {}", names.join(", "));

    // The policy heat map: one row per queue length, one column per
    // slack bin, each cell the selected model (letters ascend with
    // accuracy; '.' = shed). This is where the lull exploitation is
    // visible: high-slack columns pick later letters.
    println!("\npolicy heat map (rows: queued n; columns: slack low -> high):");
    let pareto = profile.pareto_models();
    let letter = |model: usize| -> char {
        match pareto.iter().position(|&m| m == model) {
            Some(i) => (b'a' + (i as u8).min(25)) as char,
            None => '?',
        }
    };
    let space = policy.space();
    let grid = policy.grid();
    for n in 1..=space.max_queue() {
        let mut row = String::new();
        for j in 0..grid.len() {
            row.push(
                match policy.action_at(ramsis_core::State::Queued { n, slack: j as u32 }) {
                    ramsis_core::Action::Serve { model, .. } => letter(model as usize),
                    ramsis_core::Action::Shed => '.',
                    ramsis_core::Action::Arrival => ' ',
                },
            );
        }
        println!("  n={n:<3} {row}");
    }
    println!("  legend: a = fastest Pareto model ... letters ascend with accuracy; . = shed");
    for (i, &m) in pareto.iter().enumerate() {
        println!(
            "    {} = {} ({:.2}%)",
            (b'a' + (i as u8).min(25)) as char,
            profile.models[m].name,
            profile.accuracy(m)
        );
    }

    let limit: usize = args
        .extra("--states")
        .unwrap_or("30")
        .parse()
        .map_err(|e| format!("bad --states: {e}"))?;
    println!("\nstate -> action (first {limit} entries; --states N for more):");
    for (state, action) in policy.artifact_map(&profile).into_iter().take(limit) {
        println!("  {state:<16} -> {action}");
    }
    Ok(())
}
