//! `ramsis-cli telemetry` — inspect or convert a recorded event trace.
//!
//! Reads a log written by `ramsis-cli sim --telemetry PATH` in either
//! encoding (JSONL from a [`ramsis_telemetry::JsonlSink`], or `RMTB`
//! binary from a [`ramsis_telemetry::BinSink`] — auto-detected by
//! magic), verifies the per-query conservation invariant, reconstructs
//! run aggregates from lifecycle events, and prints a per-window
//! breakdown of arrivals, dispatches, misses, sheds, and audit
//! activity — the miss-attribution view. Sampled streams additionally
//! print which counters are exact and which are weighted estimates.
//!
//! ```text
//! ramsis-cli telemetry trace.jsonl [--window MS] [--json] [--quiet]
//! ramsis-cli telemetry convert IN OUT   # JSONL ⇄ binary, lossless
//! ```
//!
//! Exits 0 when the conservation invariant holds and 1 when it is
//! violated, so scripts can gate on trace health; `--quiet` prints
//! nothing but the violation summary (and nothing at all on a clean
//! trace).

use ramsis_bench::render_table;
use ramsis_telemetry::{
    aggregates, conservation, is_binary_stream, parse_tolerant, sampled_aggregates,
    window_breakdown, write_bin, write_jsonl, Conservation, ParsedLog, WindowStats,
};
use serde::Serialize;

/// Reads and parses a trace in either encoding, shared by every
/// command that takes a trace path (`telemetry`, `spans`, `convert`).
pub(crate) fn load_trace(path: &str) -> Result<ParsedLog, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    parse_tolerant(&bytes).map_err(|e| format!("{path}: {e}"))
}

/// Prints the forward-compatibility warning for skipped unknown
/// records: a few capped previews, then a suppression count — a trace
/// from a much newer writer warns in O(1) output, not O(records).
pub(crate) fn warn_unknown(parsed: &ParsedLog) {
    if parsed.unknown_events == 0 {
        return;
    }
    eprintln!(
        "warning: {} unknown event record(s) skipped (trace from a newer writer?)",
        parsed.unknown_events
    );
    for s in &parsed.unknown_samples {
        eprintln!("  {s}");
    }
    let suppressed = (parsed.unknown_events as usize).saturating_sub(parsed.unknown_samples.len());
    if suppressed > 0 {
        eprintln!("  … +{suppressed} more suppressed");
    }
}

/// The `--json` document: everything the text report prints, as data.
#[derive(Serialize)]
struct TraceSummary {
    events: u64,
    /// JSONL schema version from the stream header (`null` for
    /// headerless v0 logs).
    schema_version: Option<u32>,
    torn_tail: bool,
    /// Byte offset where the torn tail starts (`null` for a clean
    /// log): `truncate(log, offset)` heals the tear.
    torn_tail_offset: Option<usize>,
    unknown_events: u64,
    /// Sampling rate from the stream header (`null` for an unsampled
    /// trace). When set, rare-event counters below are exact by the
    /// tail-keep rules while volume counters are weighted estimates.
    sample_rate: Option<f64>,
    sample_seed: Option<u64>,
    /// Queries kept with probability 1 (promoted or in flight) —
    /// their counters are exact even under sampling.
    interesting_queries: Option<u64>,
    /// Hash-kept boring queries — the weighted population behind the
    /// estimates.
    boring_queries: Option<u64>,
    est_arrivals: Option<f64>,
    est_served: Option<f64>,
    est_mean_response_s: Option<f64>,
    /// One standard error on the estimated boring-query count.
    est_std_error: Option<f64>,
    conservation: Conservation,
    arrivals: u64,
    served: u64,
    violations: u64,
    dropped: u64,
    crash_requeued: u64,
    timeouts: u64,
    retries: u64,
    hedges_issued: u64,
    hedges_cancelled: u64,
    admissions: u64,
    mean_response_s: f64,
    p50_response_s: f64,
    p95_response_s: f64,
    p99_response_s: f64,
    window_s: f64,
    windows: Vec<WindowStats>,
}

pub fn run(args: &[String]) -> Result<i32, String> {
    if args.first().map(String::as_str) == Some("convert") {
        return convert(&args[1..]);
    }
    let mut path: Option<String> = None;
    let mut window_ms: f64 = 1_000.0;
    let mut json = false;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--window" => {
                window_ms = it
                    .next()
                    .ok_or("--window requires a value (milliseconds)")?
                    .parse()
                    .map_err(|e| format!("bad --window: {e}"))?;
                if window_ms <= 0.0 || !window_ms.is_finite() {
                    return Err("--window must be positive".into());
                }
            }
            "--json" => json = true,
            "--quiet" => quiet = true,
            "--log" => path = Some(it.next().ok_or("--log requires a value")?.clone()),
            other if !other.starts_with("--") && path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let path = path.ok_or("telemetry requires a trace path: ramsis-cli telemetry LOG.jsonl")?;
    let parsed = load_trace(&path)?;
    if let Some(tail) = &parsed.torn_tail {
        // A truncated final line usually means the writer was killed
        // mid-record; the complete prefix is still analyzable. The byte
        // offset lets tooling heal the file: `truncate(log, offset)`.
        eprintln!(
            "warning: trailing partial record ignored ({} bytes at byte offset {}): {:?}…",
            tail.len(),
            parsed.torn_tail_offset.unwrap_or(0),
            &tail[..tail.len().min(48)]
        );
    }
    // Forward compatibility: a trace written by a newer engine may
    // carry event kinds this binary does not know; analysis runs on
    // the events it does.
    warn_unknown(&parsed);
    let sample_rate = parsed.sample_rate;
    let sample_seed = parsed.sample_seed;
    let events = parsed.events;

    let cons = conservation(&events);
    let agg = aggregates(&events);
    let samp = sample_rate.map(|r| sampled_aggregates(&events, r));
    let window_ns = (window_ms * 1e6).round() as u64;
    let windows = window_breakdown(&events, window_ns.max(1));
    let pctl = |p: f64| agg.response.percentile(p).map_or(0.0, |ns| ns as f64 / 1e9);
    let exit_code = if cons.holds() { 0 } else { 1 };

    if quiet {
        // Violations only: a clean trace prints nothing, so CI logs
        // stay silent unless something is actually wrong.
        if !cons.holds() {
            println!(
                "conservation VIOLATED: {} arrivals vs {} completed + {} shed + {} dropped + {} admission-shed + {} in flight ({} anomalies)",
                cons.arrivals,
                cons.completions,
                cons.sheds,
                cons.drops,
                cons.admissions,
                cons.in_flight,
                cons.anomalies
            );
        }
        return Ok(exit_code);
    }

    if json {
        let summary = TraceSummary {
            events: events.len() as u64,
            schema_version: parsed.schema_version,
            torn_tail: parsed.torn_tail.is_some(),
            torn_tail_offset: parsed.torn_tail_offset,
            unknown_events: parsed.unknown_events,
            sample_rate,
            sample_seed,
            interesting_queries: samp.as_ref().map(|s| s.interesting_queries),
            boring_queries: samp.as_ref().map(|s| s.boring_queries),
            est_arrivals: samp.as_ref().map(|s| s.est_arrivals),
            est_served: samp.as_ref().map(|s| s.est_served),
            est_mean_response_s: samp.as_ref().map(|s| s.est_mean_response_s()),
            est_std_error: samp.as_ref().map(|s| s.est_std_error),
            conservation: cons,
            arrivals: agg.arrivals,
            served: agg.served,
            violations: agg.violations,
            dropped: agg.dropped,
            crash_requeued: agg.crash_requeued,
            timeouts: agg.timeouts,
            retries: agg.retries,
            hedges_issued: agg.hedges_issued,
            hedges_cancelled: agg.hedges_cancelled,
            admissions: agg.admissions,
            mean_response_s: agg.mean_response_s(),
            p50_response_s: pctl(50.0),
            p95_response_s: pctl(95.0),
            p99_response_s: pctl(99.0),
            window_s: window_ms / 1e3,
            windows,
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?
        );
        return Ok(exit_code);
    }

    println!(
        "trace: {path} ({} events, schema {})",
        events.len(),
        parsed
            .schema_version
            .map_or_else(|| "v0 headerless".to_string(), |v| format!("v{v}"))
    );
    if let Some(s) = &samp {
        if s.is_exact() {
            println!(
                "sampling: rate 1.0 (seed {:#x}) — stream is complete, all counters exact",
                sample_seed.unwrap_or(0)
            );
        } else {
            println!(
                "sampling: rate {} (seed {:#x}) — rare-event counters exact \
                 ({} interesting queries kept whole); volume estimated from {} hash-kept \
                 boring queries: ≈{:.0} arrivals, ≈{:.0} served (±{:.1} queries, 1σ), \
                 mean response ≈{:.1} ms",
                s.sample_rate,
                sample_seed.unwrap_or(0),
                s.interesting_queries,
                s.boring_queries,
                s.est_arrivals,
                s.est_served,
                s.est_std_error,
                s.est_mean_response_s() * 1e3
            );
        }
    }
    println!(
        "conservation: {} arrivals = {} completed + {} shed + {} dropped + {} admission-shed + {} in flight ({})",
        cons.arrivals,
        cons.completions,
        cons.sheds,
        cons.drops,
        cons.admissions,
        cons.in_flight,
        if cons.holds() {
            "holds".to_string()
        } else {
            format!("VIOLATED, {} anomalies", cons.anomalies)
        }
    );
    println!(
        "aggregates: served {}, violations {} ({:.4}%), dropped {}, crash-requeued {}",
        agg.served,
        agg.violations,
        agg.violation_rate() * 100.0,
        agg.dropped,
        agg.crash_requeued
    );
    if agg.timeouts + agg.retries + agg.hedges_issued + agg.admissions > 0 {
        println!(
            "resilience: {} timeouts, {} retries, {} hedges issued ({} cancelled), {} admission-shed",
            agg.timeouts, agg.retries, agg.hedges_issued, agg.hedges_cancelled, agg.admissions
        );
    }
    println!(
        "response time: mean {:.1} ms, p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms",
        agg.mean_response_s() * 1e3,
        pctl(50.0) * 1e3,
        pctl(95.0) * 1e3,
        pctl(99.0) * 1e3
    );

    // Per-window miss-attribution table. Long traces print the first
    // windows only; --json carries the full breakdown.
    const MAX_ROWS: usize = 40;
    println!("\nper-window breakdown ({window_ms:.0} ms windows):");
    let table: Vec<Vec<String>> = windows
        .iter()
        .take(MAX_ROWS)
        .map(|w| {
            vec![
                format!("{:.2}", w.start_ns as f64 / 1e9),
                w.arrivals.to_string(),
                w.dispatches.to_string(),
                format!("{:.1}", w.mean_batch()),
                w.completions.to_string(),
                w.violations.to_string(),
                w.sheds.to_string(),
                w.drops.to_string(),
                w.max_queue_depth.to_string(),
                (w.swaps + w.lazy_solves + w.fallbacks).to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "t_s", "arrive", "dispatch", "batch", "done", "miss", "shed", "drop", "maxq",
                "audit"
            ],
            &table
        )
    );
    if windows.len() > MAX_ROWS {
        println!(
            "… {} more windows (use --json for the full breakdown)",
            windows.len() - MAX_ROWS
        );
    }
    let (serve, drop, idle) = windows.iter().fold((0, 0, 0), |(s, d, i), w| {
        (
            s + w.decisions_serve,
            d + w.decisions_drop,
            i + w.decisions_idle,
        )
    });
    let (swaps, solves, fallbacks) = windows.iter().fold((0, 0, 0), |(a, b, c), w| {
        (a + w.swaps, b + w.lazy_solves, c + w.fallbacks)
    });
    println!("decisions: {serve} serve, {drop} drop, {idle} idle");
    if swaps + solves + fallbacks > 0 {
        println!("adaptation: {swaps} regime swaps, {solves} lazy solves, {fallbacks} fallback decisions");
    }
    Ok(exit_code)
}

/// `ramsis-cli telemetry convert IN OUT` — lossless JSONL ⇄ binary.
///
/// The input encoding is detected by magic; the output encoding comes
/// from OUT's extension (`.bin` → binary, `.jsonl` → JSONL, anything
/// else → the opposite of the input). Sampling metadata survives the
/// round trip; converting a converted file back reproduces the
/// original sink's bytes exactly.
fn convert(args: &[String]) -> Result<i32, String> {
    let mut paths: Vec<&String> = Vec::new();
    let mut quiet = false;
    for arg in args {
        match arg.as_str() {
            "--quiet" => quiet = true,
            other if !other.starts_with("--") => paths.push(arg),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let [input, output] = paths.as_slice() else {
        return Err(
            "convert requires exactly two paths: ramsis-cli telemetry convert IN OUT".into(),
        );
    };
    let bytes = std::fs::read(input.as_str()).map_err(|e| format!("read {input}: {e}"))?;
    let from_binary = is_binary_stream(&bytes);
    let parsed = parse_tolerant(&bytes).map_err(|e| format!("{input}: {e}"))?;
    if let Some(tail) = &parsed.torn_tail {
        eprintln!(
            "warning: trailing partial record dropped ({} bytes); output holds the clean prefix",
            tail.len()
        );
    }
    // Unknown records carry payloads this binary cannot decode, so a
    // conversion necessarily drops them — warn loudly, it is the one
    // lossy case.
    warn_unknown(&parsed);
    let to_binary = if output.ends_with(".bin") {
        true
    } else if output.ends_with(".jsonl") || output.ends_with(".json") {
        false
    } else {
        !from_binary
    };
    let sampling = match (parsed.sample_rate, parsed.sample_seed) {
        (Some(rate), Some(seed)) => Some((rate, seed)),
        _ => None,
    };
    let out_bytes = if to_binary {
        write_bin(&parsed.events, sampling)
    } else {
        write_jsonl(&parsed.events, sampling).into_bytes()
    };
    std::fs::write(output.as_str(), &out_bytes).map_err(|e| format!("write {output}: {e}"))?;
    if !quiet {
        let enc = |b: bool| if b { "binary" } else { "jsonl" };
        println!(
            "converted {input} ({}, {} bytes) -> {output} ({}, {} bytes): {} events{}",
            enc(from_binary),
            bytes.len(),
            enc(to_binary),
            out_bytes.len(),
            parsed.events.len(),
            parsed
                .sample_rate
                .map_or_else(String::new, |r| format!(", sampled at rate {r}"))
        );
    }
    Ok(0)
}
