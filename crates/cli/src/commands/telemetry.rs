//! `ramsis-cli telemetry` — inspect a recorded JSONL event trace.
//!
//! Reads a log written by `ramsis-cli sim --telemetry PATH` (or any
//! [`ramsis_telemetry::JsonlSink`]), verifies the per-query
//! conservation invariant, reconstructs run aggregates from lifecycle
//! events, and prints a per-window breakdown of arrivals, dispatches,
//! misses, sheds, and audit activity — the miss-attribution view.
//!
//! ```text
//! ramsis-cli telemetry trace.jsonl [--window MS] [--json] [--quiet]
//! ```
//!
//! Exits 0 when the conservation invariant holds and 1 when it is
//! violated, so scripts can gate on trace health; `--quiet` prints
//! nothing but the violation summary (and nothing at all on a clean
//! trace).

use ramsis_bench::render_table;
use ramsis_telemetry::{
    aggregates, conservation, parse_jsonl_tolerant, window_breakdown, Conservation, WindowStats,
};
use serde::Serialize;

/// The `--json` document: everything the text report prints, as data.
#[derive(Serialize)]
struct TraceSummary {
    events: u64,
    /// JSONL schema version from the stream header (`null` for
    /// headerless v0 logs).
    schema_version: Option<u32>,
    torn_tail: bool,
    /// Byte offset where the torn tail starts (`null` for a clean
    /// log): `truncate(log, offset)` heals the tear.
    torn_tail_offset: Option<usize>,
    unknown_events: u64,
    conservation: Conservation,
    arrivals: u64,
    served: u64,
    violations: u64,
    dropped: u64,
    crash_requeued: u64,
    timeouts: u64,
    retries: u64,
    hedges_issued: u64,
    hedges_cancelled: u64,
    admissions: u64,
    mean_response_s: f64,
    p50_response_s: f64,
    p95_response_s: f64,
    p99_response_s: f64,
    window_s: f64,
    windows: Vec<WindowStats>,
}

pub fn run(args: &[String]) -> Result<i32, String> {
    let mut path: Option<String> = None;
    let mut window_ms: f64 = 1_000.0;
    let mut json = false;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--window" => {
                window_ms = it
                    .next()
                    .ok_or("--window requires a value (milliseconds)")?
                    .parse()
                    .map_err(|e| format!("bad --window: {e}"))?;
                if window_ms <= 0.0 || !window_ms.is_finite() {
                    return Err("--window must be positive".into());
                }
            }
            "--json" => json = true,
            "--quiet" => quiet = true,
            "--log" => path = Some(it.next().ok_or("--log requires a value")?.clone()),
            other if !other.starts_with("--") && path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let path = path.ok_or("telemetry requires a trace path: ramsis-cli telemetry LOG.jsonl")?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
    let parsed = parse_jsonl_tolerant(&text)?;
    if let Some(tail) = &parsed.torn_tail {
        // A truncated final line usually means the writer was killed
        // mid-record; the complete prefix is still analyzable. The byte
        // offset lets tooling heal the file: `truncate(log, offset)`.
        eprintln!(
            "warning: trailing partial line ignored ({} bytes at byte offset {}): {:?}…",
            tail.len(),
            parsed.torn_tail_offset.unwrap_or(0),
            &tail[..tail.len().min(48)]
        );
    }
    if parsed.unknown_events > 0 {
        // Forward compatibility: a trace written by a newer engine may
        // carry event kinds this binary does not know; analysis runs on
        // the events it does.
        eprintln!(
            "warning: {} unknown event record(s) skipped (trace from a newer writer?)",
            parsed.unknown_events
        );
    }
    let events = parsed.events;

    let cons = conservation(&events);
    let agg = aggregates(&events);
    let window_ns = (window_ms * 1e6).round() as u64;
    let windows = window_breakdown(&events, window_ns.max(1));
    let pctl = |p: f64| agg.response.percentile(p).map_or(0.0, |ns| ns as f64 / 1e9);
    let exit_code = if cons.holds() { 0 } else { 1 };

    if quiet {
        // Violations only: a clean trace prints nothing, so CI logs
        // stay silent unless something is actually wrong.
        if !cons.holds() {
            println!(
                "conservation VIOLATED: {} arrivals vs {} completed + {} shed + {} dropped + {} admission-shed + {} in flight ({} anomalies)",
                cons.arrivals,
                cons.completions,
                cons.sheds,
                cons.drops,
                cons.admissions,
                cons.in_flight,
                cons.anomalies
            );
        }
        return Ok(exit_code);
    }

    if json {
        let summary = TraceSummary {
            events: events.len() as u64,
            schema_version: parsed.schema_version,
            torn_tail: parsed.torn_tail.is_some(),
            torn_tail_offset: parsed.torn_tail_offset,
            unknown_events: parsed.unknown_events,
            conservation: cons,
            arrivals: agg.arrivals,
            served: agg.served,
            violations: agg.violations,
            dropped: agg.dropped,
            crash_requeued: agg.crash_requeued,
            timeouts: agg.timeouts,
            retries: agg.retries,
            hedges_issued: agg.hedges_issued,
            hedges_cancelled: agg.hedges_cancelled,
            admissions: agg.admissions,
            mean_response_s: agg.mean_response_s(),
            p50_response_s: pctl(50.0),
            p95_response_s: pctl(95.0),
            p99_response_s: pctl(99.0),
            window_s: window_ms / 1e3,
            windows,
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?
        );
        return Ok(exit_code);
    }

    println!(
        "trace: {path} ({} events, schema {})",
        events.len(),
        parsed
            .schema_version
            .map_or_else(|| "v0 headerless".to_string(), |v| format!("v{v}"))
    );
    println!(
        "conservation: {} arrivals = {} completed + {} shed + {} dropped + {} admission-shed + {} in flight ({})",
        cons.arrivals,
        cons.completions,
        cons.sheds,
        cons.drops,
        cons.admissions,
        cons.in_flight,
        if cons.holds() {
            "holds".to_string()
        } else {
            format!("VIOLATED, {} anomalies", cons.anomalies)
        }
    );
    println!(
        "aggregates: served {}, violations {} ({:.4}%), dropped {}, crash-requeued {}",
        agg.served,
        agg.violations,
        agg.violation_rate() * 100.0,
        agg.dropped,
        agg.crash_requeued
    );
    if agg.timeouts + agg.retries + agg.hedges_issued + agg.admissions > 0 {
        println!(
            "resilience: {} timeouts, {} retries, {} hedges issued ({} cancelled), {} admission-shed",
            agg.timeouts, agg.retries, agg.hedges_issued, agg.hedges_cancelled, agg.admissions
        );
    }
    println!(
        "response time: mean {:.1} ms, p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms",
        agg.mean_response_s() * 1e3,
        pctl(50.0) * 1e3,
        pctl(95.0) * 1e3,
        pctl(99.0) * 1e3
    );

    // Per-window miss-attribution table. Long traces print the first
    // windows only; --json carries the full breakdown.
    const MAX_ROWS: usize = 40;
    println!("\nper-window breakdown ({window_ms:.0} ms windows):");
    let table: Vec<Vec<String>> = windows
        .iter()
        .take(MAX_ROWS)
        .map(|w| {
            vec![
                format!("{:.2}", w.start_ns as f64 / 1e9),
                w.arrivals.to_string(),
                w.dispatches.to_string(),
                format!("{:.1}", w.mean_batch()),
                w.completions.to_string(),
                w.violations.to_string(),
                w.sheds.to_string(),
                w.drops.to_string(),
                w.max_queue_depth.to_string(),
                (w.swaps + w.lazy_solves + w.fallbacks).to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "t_s", "arrive", "dispatch", "batch", "done", "miss", "shed", "drop", "maxq",
                "audit"
            ],
            &table
        )
    );
    if windows.len() > MAX_ROWS {
        println!(
            "… {} more windows (use --json for the full breakdown)",
            windows.len() - MAX_ROWS
        );
    }
    let (serve, drop, idle) = windows.iter().fold((0, 0, 0), |(s, d, i), w| {
        (
            s + w.decisions_serve,
            d + w.decisions_drop,
            i + w.decisions_idle,
        )
    });
    let (swaps, solves, fallbacks) = windows.iter().fold((0, 0, 0), |(a, b, c), w| {
        (a + w.swaps, b + w.lazy_solves, c + w.fallbacks)
    });
    println!("decisions: {serve} serve, {drop} drop, {idle} idle");
    if swaps + solves + fallbacks > 0 {
        println!("adaptation: {swaps} regime swaps, {solves} lazy solves, {fallbacks} fallback decisions");
    }
    Ok(exit_code)
}
