//! `ramsis-cli spans` — reconstruct per-query spans from an event
//! trace (JSONL or binary, auto-detected) and print the critical-path
//! breakdown.
//!
//! ```text
//! ramsis-cli spans trace.jsonl [--top N] [--json]
//! ```
//!
//! Folds the lifecycle stream (enqueue → admission → dispatch →
//! [retry|hedge]* → completion/shed) into one span per query, then
//! attributes every completed query's response time to wait / service /
//! wasted (timed-out) / retry-backoff / hedge-overlap segments. The
//! segment sums equal the engine's measured response times exactly;
//! any discrepancy is reported as a conservation violation.

use crate::commands::telemetry::{load_trace, warn_unknown};
use ramsis_bench::render_table;
use ramsis_telemetry::{
    critical_path, reconstruct_spans, reconstruct_spans_sampled, QuerySpan, SegmentStats,
    SpanOutcome,
};

fn ms(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1e6)
}

/// Compact outcome cell for the slowest-queries table: sheds and
/// timeouts carry their cause so slow *failures* are attributable, not
/// just slow successes.
fn outcome_cell(s: &QuerySpan) -> String {
    match &s.outcome {
        SpanOutcome::Completed { violated, .. } => {
            if *violated {
                "violated".to_string()
            } else {
                "ok".to_string()
            }
        }
        SpanOutcome::Shed { cause } => format!("shed:{cause:?}"),
        SpanOutcome::Dropped => "crash-dropped".to_string(),
        SpanOutcome::AdmissionRefused => "admission".to_string(),
        SpanOutcome::InFlight => "in-flight".to_string(),
    }
}

fn segment_row(name: &str, s: &SegmentStats) -> Vec<String> {
    vec![
        name.to_string(),
        format!("{:.3}", s.total_s),
        format!("{:.1}%", s.share * 100.0),
        ms(s.p50_ns),
        ms(s.p95_ns),
        ms(s.p99_ns),
        ms(s.max_ns),
    ]
}

pub fn run(args: &[String]) -> Result<(), String> {
    let mut path: Option<String> = None;
    let mut top: usize = 10;
    let mut json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--top" => {
                top = it
                    .next()
                    .ok_or("--top requires a count")?
                    .parse()
                    .map_err(|e| format!("bad --top: {e}"))?;
            }
            "--json" => json = true,
            other if !other.starts_with("--") && path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let path = path.ok_or("spans requires a trace path: ramsis-cli spans LOG.jsonl")?;
    let parsed = load_trace(&path)?;
    if let Some(tail) = &parsed.torn_tail {
        eprintln!(
            "warning: trailing partial record ignored ({} bytes)",
            tail.len()
        );
    }
    warn_unknown(&parsed);

    let log = match parsed.sample_rate {
        Some(rate) => reconstruct_spans_sampled(&parsed.events, rate),
        None => reconstruct_spans(&parsed.events),
    };
    let report = critical_path(&log, top);

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
        return Ok(());
    }

    println!(
        "trace: {path} ({} events, {} queries)",
        parsed.events.len(),
        report.queries
    );
    if let Some(rate) = log.sample_rate {
        // Kept spans are exact (query-coherent sampling never splits a
        // query), so the only sampling artifact is whole boring
        // queries absent from the log.
        println!(
            "sampling: rate {rate} — kept spans exact; ≈{:.0} boring queries sampled out",
            log.est_sampled_out
        );
    }
    println!(
        "outcomes: {} completed ({} violated), {} shed, {} dropped, {} admission-refused, {} in flight",
        report.completed,
        report.violations,
        report.shed,
        report.dropped,
        report.admission_refused,
        report.in_flight
    );
    if report.hedged + report.retried > 0 {
        println!(
            "resilience on the critical path: {} hedged, {} retried completions",
            report.hedged, report.retried
        );
    }
    if report.violations_during_scale_lag + report.violations_during_brownout > 0 {
        println!(
            "elasticity attribution: {} violation(s) during scaling lag (a worker warming), \
             {} during brownout",
            report.violations_during_scale_lag, report.violations_during_brownout
        );
    }
    if report.orphan_events + report.degraded_spans > 0 {
        println!(
            "trace quality: {} orphan events, {} degraded spans (truncated log?)",
            report.orphan_events, report.degraded_spans
        );
    }
    println!(
        "conservation: segment sums {} measured response times{}",
        if report.conservation_violations == 0 {
            "match"
        } else {
            "DIVERGE from"
        },
        if report.conservation_violations == 0 {
            String::new()
        } else {
            format!(" on {} spans", report.conservation_violations)
        }
    );

    println!("\ncritical-path segments (completed queries):");
    let rows = vec![
        segment_row("response", &report.response),
        segment_row("wait", &report.wait),
        segment_row("service", &report.service),
        segment_row("wasted", &report.wasted),
        segment_row("backoff", &report.backoff),
        segment_row("hedge-overlap", &report.hedge_overlap),
    ];
    println!(
        "{}",
        render_table(
            &["segment", "total s", "share", "p50 ms", "p95 ms", "p99 ms", "max ms"],
            &rows,
        )
    );

    if !report.top_slowest.is_empty() {
        println!(
            "top {} slowest queries (by lifetime; sheds and timeouts included):",
            report.top_slowest.len()
        );
        let rows: Vec<Vec<String>> = report
            .top_slowest
            .iter()
            .map(|s| {
                let lifetime = s.terminal_at.map(|t| t.saturating_sub(s.arrival));
                vec![
                    s.query.to_string(),
                    outcome_cell(s),
                    ms(lifetime.unwrap_or(0)),
                    s.response_ns.map(ms).unwrap_or_default(),
                    ms(s.wait_ns),
                    ms(s.service_ns),
                    ms(s.wasted_ns),
                    ms(s.backoff_ns),
                    s.timeouts.to_string(),
                    if s.hedged { "yes" } else { "" }.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &[
                    "query", "outcome", "life ms", "resp ms", "wait ms", "serve ms", "waste ms",
                    "backoff", "timeouts", "hedged"
                ],
                &rows,
            )
        );
    }
    Ok(())
}
