//! Flag parsing shared by the subcommands (the artifact's §A.5 flags).

use std::path::PathBuf;

use ramsis_profiles::Task;

/// Parsed common flags.
#[derive(Debug, Clone, PartialEq)]
pub struct CommonArgs {
    pub task: Task,
    pub slo_ms: u64,
    pub workers: usize,
    pub load: Option<f64>,
    pub method: Option<String>,
    pub trace: String,
    pub d: u32,
    pub out: PathBuf,
    /// Extra subcommand-specific flags, as (name, value) pairs.
    pub extra: Vec<(String, String)>,
}

impl CommonArgs {
    /// Parses `args`, accepting `extra_flags` as subcommand-specific
    /// value-taking flags.
    pub fn parse(args: &[String], extra_flags: &[&str]) -> Result<Self, String> {
        let mut task: Option<Task> = None;
        let mut slo_ms: Option<u64> = None;
        let mut workers: Option<usize> = None;
        let mut load = None;
        let mut method = None;
        let mut trace = "constant".to_string();
        let mut d = 25u32;
        let mut out = PathBuf::from(".");
        let mut extra = Vec::new();

        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = || {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{arg} requires a value"))
            };
            match arg.as_str() {
                "--task" => {
                    task = Some(match value()?.as_str() {
                        "image" => Task::ImageClassification,
                        "text" => Task::TextClassification,
                        other => return Err(format!("unknown task {other:?}")),
                    })
                }
                "--SLO" | "--slo" => {
                    slo_ms = Some(value()?.parse().map_err(|e| format!("bad --SLO: {e}"))?)
                }
                "--worker" | "--workers" => {
                    workers = Some(value()?.parse().map_err(|e| format!("bad --worker: {e}"))?)
                }
                "--load" => load = Some(value()?.parse().map_err(|e| format!("bad --load: {e}"))?),
                "--m" | "--method" => method = Some(value()?),
                "--trace" => trace = value()?,
                "--d" => d = value()?.parse().map_err(|e| format!("bad --d: {e}"))?,
                "--out" => out = PathBuf::from(value()?),
                other if extra_flags.contains(&other) => {
                    extra.push((other.to_string(), value()?));
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }

        let task = task.unwrap_or(Task::ImageClassification);
        Ok(Self {
            task,
            slo_ms: slo_ms.unwrap_or_else(|| (task.paper_slos()[0] * 1e3).round() as u64),
            workers: workers.unwrap_or(match task {
                Task::ImageClassification => 60,
                Task::TextClassification => 20,
            }),
            load,
            method,
            trace,
            d,
            out,
            extra,
        })
    }

    /// The SLO in seconds.
    pub fn slo_s(&self) -> f64 {
        self.slo_ms as f64 / 1e3
    }

    /// A subcommand-specific flag's value, if present.
    pub fn extra(&self, flag: &str) -> Option<&str> {
        self.extra
            .iter()
            .find(|(f, _)| f == flag)
            .map(|(_, v)| v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<CommonArgs, String> {
        CommonArgs::parse(
            &words.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            &["--policy"],
        )
    }

    #[test]
    fn artifact_defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.task, Task::ImageClassification);
        assert_eq!(a.slo_ms, 150);
        assert_eq!(a.workers, 60);
        assert_eq!(a.trace, "constant");
        assert_eq!(a.d, 25);
    }

    #[test]
    fn artifact_flags_parse() {
        let a = parse(&[
            "--task", "text", "--SLO", "200", "--worker", "20", "--load", "10", "--m", "RAMSIS",
            "--trace", "real", "--d", "100", "--out", "/tmp/x",
        ])
        .unwrap();
        assert_eq!(a.task, Task::TextClassification);
        assert_eq!(a.slo_ms, 200);
        assert_eq!(a.workers, 20);
        assert_eq!(a.load, Some(10.0));
        assert_eq!(a.method.as_deref(), Some("RAMSIS"));
        assert_eq!(a.trace, "real");
        assert_eq!(a.d, 100);
        assert_eq!(a.slo_s(), 0.2);
    }

    #[test]
    fn text_defaults_differ() {
        let a = parse(&["--task", "text"]).unwrap();
        assert_eq!(a.slo_ms, 100);
        assert_eq!(a.workers, 20);
    }

    #[test]
    fn extra_flags_collected() {
        let a = parse(&["--policy", "p.json"]).unwrap();
        assert_eq!(a.extra("--policy"), Some("p.json"));
        assert_eq!(a.extra("--other"), None);
    }

    #[test]
    fn rejects_unknown() {
        assert!(parse(&["--frobnicate", "1"]).is_err());
        assert!(parse(&["--SLO"]).is_err());
        assert!(parse(&["--task", "audio"]).is_err());
    }
}
