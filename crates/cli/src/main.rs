//! Thin binary wrapper; the dispatch lives in the library so the
//! commands are integration-testable.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(ramsis_cli::run(&args));
}
