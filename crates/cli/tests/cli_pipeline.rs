//! End-to-end CLI pipeline: gen → ms-gen → sim × 3 methods → plot,
//! exercising the artifact's §A.4.2 workflow against a temp directory,
//! plus the profiles export/import round trip.

use std::path::PathBuf;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ramsis_cli_test_{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn run(words: &[&str]) -> i32 {
    let args: Vec<String> = words.iter().map(|s| s.to_string()).collect();
    ramsis_cli::run(&args)
}

#[test]
fn artifact_workflow_end_to_end() {
    let dir = tempdir("workflow");
    let out = dir.to_str().unwrap();
    // Keep everything tiny: text task, 4 workers, D=8, short profiling.
    let common = [
        "--task", "text", "--SLO", "100", "--worker", "4", "--out", out,
    ];

    // gen (one load).
    let mut gen_args = vec!["gen", "--load", "150", "--d", "8"];
    gen_args.extend_from_slice(&common);
    assert_eq!(run(&gen_args), 0);
    assert!(dir.join("policy_gen/RAMSIS_4_100/150.json").exists());

    // ms-gen (coarse sweep, short duration).
    let mut ms_args = vec!["ms-gen", "--step", "3600", "--duration", "2"];
    ms_args.extend_from_slice(&common);
    assert_eq!(run(&ms_args), 0);
    assert!(dir.join("policy_gen/MS_4_100/table.json").exists());

    // sim for each method on a short constant trace.
    for method in ["RAMSIS", "JF", "MS"] {
        let mut sim_args = vec![
            "sim",
            "--m",
            method,
            "--trace",
            "constant",
            "--load",
            "150",
            "--duration",
            "3",
        ];
        sim_args.extend_from_slice(&common);
        assert_eq!(run(&sim_args), 0, "sim {method} failed");
        assert!(
            dir.join(format!("results/text_{method}_constant_100_4_150.json"))
                .exists(),
            "{method} result missing"
        );
    }

    // plot over the collected results.
    let mut plot_args = vec!["plot", "--trace", "constant"];
    plot_args.extend_from_slice(&common);
    assert_eq!(run(&plot_args), 0);

    // inspect the generated policy.
    let policy = dir.join("policy_gen/RAMSIS_4_100/150.json");
    let mut inspect_args = vec![
        "inspect",
        "--policy",
        policy.to_str().unwrap(),
        "--states",
        "3",
    ];
    inspect_args.extend_from_slice(&common);
    assert_eq!(run(&inspect_args), 0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_generate_and_inspect() {
    let dir = tempdir("trace");
    let out = dir.to_str().unwrap();
    assert_eq!(run(&["trace", "--kind", "twitter", "--out", out]), 0);
    let path = dir.join("twitter_trace.txt");
    assert!(path.exists());
    assert_eq!(run(&["trace", "--file", path.to_str().unwrap()]), 0);
    // Constant trace generation requires a load.
    assert_ne!(run(&["trace", "--kind", "constant", "--out", out]), 0);
    assert_eq!(
        run(&[
            "trace",
            "--kind",
            "constant",
            "--load",
            "500",
            "--duration",
            "60",
            "--out",
            out
        ]),
        0
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn profiles_export_import_round_trip() {
    let dir = tempdir("profiles");
    let pdir = dir.join("measured");
    assert_eq!(
        run(&[
            "profiles",
            "--export",
            pdir.to_str().unwrap(),
            "--task",
            "text",
            "--invocations",
            "20",
        ]),
        0
    );
    assert!(pdir.join("profiles/bert_tiny/1.json").exists());
    assert_eq!(
        run(&[
            "profiles",
            "--import",
            pdir.to_str().unwrap(),
            "--task",
            "text",
            "--SLO",
            "200",
        ]),
        0
    );
    // Both flags at once is an error.
    assert_ne!(
        run(&["profiles", "--export", "/tmp/x", "--import", "/tmp/y"]),
        0
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn telemetry_exit_codes_and_quiet_flag() {
    let dir = tempdir("telemetry_exit");

    // A sound micro-trace: one arrival, one on-time completion.
    let good = dir.join("good.jsonl");
    std::fs::write(
        &good,
        concat!(
            "{\"Arrival\":{\"at\":0,\"query\":0,\"deadline\":100000000}}\n",
            "{\"Complete\":{\"at\":50,\"query\":0,\"worker\":0,\"model\":0,",
            "\"response_ns\":50,\"violated\":false}}\n",
        ),
    )
    .unwrap();
    // An anomalous trace: a completion for a query that never arrived.
    let bad = dir.join("bad.jsonl");
    std::fs::write(
        &bad,
        concat!(
            "{\"Complete\":{\"at\":50,\"query\":7,\"worker\":0,\"model\":0,",
            "\"response_ns\":50,\"violated\":false}}\n",
        ),
    )
    .unwrap();

    let good = good.to_str().unwrap();
    let bad = bad.to_str().unwrap();
    assert_eq!(run(&["telemetry", good]), 0);
    assert_eq!(run(&["telemetry", good, "--json"]), 0);
    assert_eq!(run(&["telemetry", good, "--quiet"]), 0);
    assert_eq!(run(&["telemetry", bad]), 1, "violated trace must exit 1");
    assert_eq!(run(&["telemetry", bad, "--quiet"]), 1);
    assert_eq!(run(&["telemetry", bad, "--json"]), 1);

    // --quiet prints nothing on a clean trace, only the violation line
    // on a broken one (checked out-of-process to capture stdout).
    let exe = env!("CARGO_BIN_EXE_ramsis-cli");
    let out = std::process::Command::new(exe)
        .args(["telemetry", good, "--quiet"])
        .output()
        .expect("spawn ramsis-cli");
    assert!(out.status.success());
    assert!(
        out.stdout.is_empty(),
        "quiet mode must be silent on a clean trace, got {:?}",
        String::from_utf8_lossy(&out.stdout)
    );
    let out = std::process::Command::new(exe)
        .args(["telemetry", bad, "--quiet"])
        .output()
        .expect("spawn ramsis-cli");
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("VIOLATED"),
        "quiet violation output: {text:?}"
    );
    assert_eq!(text.lines().count(), 1, "quiet prints only the violation");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn perf_and_spans_commands() {
    let dir = tempdir("perf_spans");
    let out = dir.to_str().unwrap();

    // Produce a real event trace with the simulator, then span it.
    let trace = dir.join("trace.jsonl");
    assert_eq!(
        run(&[
            "sim",
            "--m",
            "JF",
            "--trace",
            "constant",
            "--load",
            "150",
            "--duration",
            "2",
            "--telemetry",
            trace.to_str().unwrap(),
            "--task",
            "text",
            "--SLO",
            "100",
            "--worker",
            "4",
            "--out",
            out,
        ]),
        0
    );
    let trace = trace.to_str().unwrap();
    assert_eq!(run(&["spans", trace]), 0);
    assert_eq!(run(&["spans", trace, "--top", "3", "--json"]), 0);
    assert_ne!(run(&["spans"]), 0); // missing trace path
    assert_ne!(run(&["spans", "/nonexistent/trace.jsonl"]), 0);

    // perf: pinned scenario names only.
    assert_eq!(run(&["perf", "--scenario", "constant_load", "--smoke"]), 0);
    assert_ne!(run(&["perf", "--scenario", "nope"]), 0);
    assert_ne!(run(&["perf", "--bogus-flag"]), 0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_invocations_fail_cleanly() {
    assert_ne!(run(&[]), 0);
    assert_ne!(run(&["frobnicate"]), 0);
    assert_ne!(
        run(&["sim", "--m", "WAT", "--trace", "constant", "--load", "10"]),
        0
    );
    assert_ne!(run(&["sim", "--m", "RAMSIS", "--trace", "constant"]), 0); // no --load
    assert_ne!(run(&["inspect"]), 0); // no --policy
    assert_eq!(run(&["help"]), 0);
}
