//! Criterion micro-benchmarks for the performance-critical kernels:
//! arrival-count table construction, §4.4 transition-row computation,
//! value iteration, the online policy lookup, Pareto pruning, and raw
//! simulator throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::time::Duration;

use ramsis_core::action::Action;
use ramsis_core::transitions::TransitionBuilder;
use ramsis_core::{
    assemble_mdp_for_bench, generate_policy, Discretization, PoissonArrivals, PolicyConfig, State,
    StateSpace, TimeGrid,
};
use ramsis_mdp::{value_iteration, SolveOptions};
use ramsis_profiles::{pareto_front, ModelCatalog, ProfilerConfig, WorkerProfile};
use ramsis_sim::{Routing, Selection, ServingScheme, Simulation, SimulationConfig};
use ramsis_stats::counts::ArrivalProcess;
use ramsis_workload::{LoadMonitor, Trace};

fn profile() -> WorkerProfile {
    WorkerProfile::build(
        &ModelCatalog::torchvision_image(),
        Duration::from_millis(150),
        ProfilerConfig::default(),
    )
}

fn bench_count_table(c: &mut Criterion) {
    let process = PoissonArrivals::per_second(4_000.0);
    c.bench_function("count_table_build_500ms", |b| {
        b.iter(|| black_box(&process).table(black_box(0.5), 1e-12))
    });
    let table = process.table(0.5, 1e-12);
    c.bench_function("count_table_mass_in", |b| {
        b.iter(|| black_box(&table).mass_in(black_box(1_900), black_box(2_100)))
    });
}

fn bench_transition_row(c: &mut Criterion) {
    let profile = profile();
    let slo = 0.15;
    let grid = TimeGrid::build(&profile, slo, Discretization::fixed_length(100));
    let space = StateSpace::new(profile.max_batch() + 3, grid.len() as u32);
    let process = PoissonArrivals::per_second(2_000.0);
    let builder = TransitionBuilder::new(&profile, &grid, &space, &process, 60, slo, 1e-12, 1e-12);
    let state = State::Queued {
        n: 4,
        slack: grid.top() as u32 / 2,
    };
    let action = Action::Serve {
        model: profile.fastest_model() as u32,
        batch: 4,
    };
    // Warm the table cache so the bench measures the hot path.
    let _ = builder.row(state, action);
    c.bench_function("transition_row_warm_d100", |b| {
        b.iter(|| black_box(&builder).row(black_box(state), black_box(action)))
    });
}

fn bench_value_iteration(c: &mut Criterion) {
    let profile = profile();
    let config = PolicyConfig::builder(Duration::from_millis(150))
        .workers(60)
        .discretization(Discretization::fixed_length(25))
        .build();
    let process = PoissonArrivals::per_second(2_000.0);
    let mdp = assemble_mdp_for_bench(&profile, &process, &config).expect("assembles");
    c.bench_function("value_iteration_d25", |b| {
        b.iter(|| {
            value_iteration(
                black_box(&mdp),
                &SolveOptions {
                    discount: 0.99,
                    tolerance: 1e-6,
                    max_iterations: 100_000,
                },
            )
        })
    });
}

fn bench_policy_generation(c: &mut Criterion) {
    let profile = profile();
    let config = PolicyConfig::builder(Duration::from_millis(150))
        .workers(60)
        .discretization(Discretization::fixed_length(10))
        .build();
    let process = PoissonArrivals::per_second(2_000.0);
    c.bench_function("generate_policy_end_to_end_d10", |b| {
        b.iter(|| generate_policy(black_box(&profile), black_box(&process), black_box(&config)))
    });
}

fn bench_simulator(c: &mut Criterion) {
    let profile = profile();
    struct Fastest(usize);
    impl ServingScheme for Fastest {
        fn name(&self) -> &str {
            "fastest"
        }
        fn routing(&self) -> Routing {
            Routing::Central
        }
        fn select(&mut self, ctx: &ramsis_sim::scheme::SelectionContext) -> Selection {
            Selection::Serve {
                model: self.0,
                batch: (ctx.queued as u32).min(8),
            }
        }
    }
    let trace = Trace::constant(2_000.0, 5.0);
    let sim = Simulation::new(&profile, SimulationConfig::new(60, 0.15))
        .expect("valid simulation config");
    c.bench_function("simulate_10k_queries", |b| {
        b.iter_batched(
            || (Fastest(profile.fastest_model()), LoadMonitor::new()),
            |(mut scheme, mut monitor)| sim.run(black_box(&trace), &mut scheme, &mut monitor),
            BatchSize::PerIteration,
        )
    });
}

fn bench_pareto(c: &mut Criterion) {
    let points: Vec<(f64, f64)> = (0..1_000)
        .map(|i| {
            let x = (i as f64 * 0.7901).fract();
            let y = (i as f64 * 0.3571).fract();
            (x, y * 100.0)
        })
        .collect();
    c.bench_function("pareto_front_1000", |b| {
        b.iter(|| pareto_front(black_box(&points)))
    });
}

fn bench_policy_decide(c: &mut Criterion) {
    let profile = profile();
    let config = PolicyConfig::builder(Duration::from_millis(150))
        .workers(60)
        .discretization(Discretization::fixed_length(100))
        .build();
    let policy = generate_policy(&profile, &PoissonArrivals::per_second(2_000.0), &config)
        .expect("generates");
    c.bench_function("policy_decide_lookup", |b| {
        b.iter(|| black_box(&policy).decide(black_box(5), black_box(0.087)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    targets = bench_count_table,
    bench_transition_row,
    bench_value_iteration,
    bench_policy_generation,
    bench_simulator,
    bench_pareto,
    bench_policy_decide
);
criterion_main!(benches);
