//! Timeline view of the production-trace run: per-ten-second accuracy
//! tracking the diurnal load curve (the mechanism behind Fig. 5's
//! aggregate numbers).
//!
//! Expected shape: RAMSIS's accuracy moves *inversely* with the load —
//! high in the trace's valleys (lulls afford slow models), dipping at
//! the peaks — while the load-granular baseline steps between a few
//! plateau levels.

use ramsis_baselines::JellyfishPlus;
use ramsis_bench::harness::{
    build_profile, ramsis_config, ramsis_loads_for_range, ramsis_policy_set, MonitorKind,
};
use ramsis_bench::{ascii_plot, render_table, write_csv, write_json, ExperimentArgs};
use ramsis_profiles::Task;
use ramsis_sim::{RamsisScheme, ServingScheme, Simulation, SimulationConfig};
use ramsis_workload::{LoadEstimator, LoadMonitor, OracleMonitor, Trace};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    method: String,
    window_start_s: f64,
    load_qps: f64,
    accuracy: f64,
    violations: u64,
    served: u64,
}

fn main() {
    let args = ExperimentArgs::parse();
    let task = args.task.unwrap_or(Task::ImageClassification);
    let slo_s = args.slos_for(task)[0];
    let workers = args.workers.unwrap_or(80);
    let d = if args.full { 100 } else { 25 };
    let profile = build_profile(task, slo_s);
    let trace = Trace::twitter_like(42);

    let config = ramsis_config(slo_s, workers, d);
    let loads = ramsis_loads_for_range(trace.min_qps() * 0.5, trace.max_qps(), 8);
    let set = ramsis_policy_set(&args.out_dir, &profile, &loads, &config);

    let window_s = Trace::ARTIFACT_INTERVAL_S;
    let run = |scheme: &mut dyn ServingScheme, monitor: MonitorKind| {
        let sim = Simulation::new(
            &profile,
            SimulationConfig::new(workers, slo_s)
                .seeded(0x71E)
                .with_timeline(window_s),
        )
        .expect("valid simulation config");
        let mut estimator: Box<dyn LoadEstimator> = match monitor {
            MonitorKind::MovingAverage => Box::new(LoadMonitor::new()),
            MonitorKind::Oracle => Box::new(OracleMonitor::new(trace.clone())),
        };
        sim.run(&trace, scheme, estimator.as_mut())
    };

    let mut ramsis = RamsisScheme::new(set);
    let r = run(&mut ramsis, MonitorKind::MovingAverage);
    let mut jellyfish = JellyfishPlus::new(&profile, workers);
    let j = run(&mut jellyfish, MonitorKind::MovingAverage);

    println!(
        "\n=== Timeline — production trace, {} task, SLO {:.0} ms, {workers} workers ===",
        task.name(),
        slo_s * 1e3
    );
    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (i, (rb, jb)) in r.timeline.iter().zip(&j.timeline).enumerate() {
        let load = trace.qps_at(rb.start_s);
        table.push(vec![
            format!("{:.0}", rb.start_s),
            format!("{load:.0}"),
            rb.accuracy
                .map_or_else(|| "-".into(), |a| format!("{a:.2}")),
            jb.accuracy
                .map_or_else(|| "-".into(), |a| format!("{a:.2}")),
            rb.violations.to_string(),
            jb.violations.to_string(),
        ]);
        for (method, b) in [("RAMSIS", rb), ("Jellyfish+", jb)] {
            rows.push(Row {
                method: method.into(),
                window_start_s: b.start_s,
                load_qps: load,
                accuracy: b.accuracy.unwrap_or(0.0),
                violations: b.violations,
                served: b.served,
            });
        }
        // Keep the printed table readable in full mode.
        if i > 40 {
            break;
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "t_s",
                "load_qps",
                "RAMSIS_acc",
                "JF+_acc",
                "RAMSIS_viol",
                "JF+_viol"
            ],
            &table
        )
    );

    // The headline check: RAMSIS accuracy is anti-correlated with load.
    // Windows with no satisfied queries carry no accuracy sample and are
    // excluded from the correlation rather than counted as zero.
    let (corr_loads, corr_accs): (Vec<f64>, Vec<f64>) = r
        .timeline
        .iter()
        .filter_map(|b| b.accuracy.map(|a| (trace.qps_at(b.start_s), a)))
        .unzip();
    let corr = correlation(&corr_loads, &corr_accs);
    println!("correlation(load, RAMSIS accuracy) = {corr:.3} (expected strongly negative)");

    let series = vec![
        (
            "RAMSIS".to_string(),
            r.timeline
                .iter()
                .filter_map(|b| b.accuracy.map(|a| (b.start_s, a)))
                .collect::<Vec<_>>(),
        ),
        (
            "Jellyfish+".to_string(),
            j.timeline
                .iter()
                .filter_map(|b| b.accuracy.map(|a| (b.start_s, a)))
                .collect(),
        ),
        (
            "load (scaled)".to_string(),
            r.timeline
                .iter()
                .map(|b| {
                    // Map the QPS range onto the accuracy band for overlay.
                    let t = (trace.qps_at(b.start_s) - trace.min_qps())
                        / (trace.max_qps() - trace.min_qps());
                    (b.start_s, 60.0 + t * 25.0)
                })
                .collect(),
        ),
    ];
    println!("accuracy (%) and scaled load vs time (s):");
    println!("{}", ascii_plot(&series, 64, 14));

    write_json(&args.out_dir, "timeline_production", &rows);
    write_csv(
        &args.out_dir,
        "timeline_production",
        &[
            "method",
            "window_start_s",
            "load_qps",
            "accuracy",
            "violations",
            "served",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.method.clone(),
                    format!("{:.0}", r.window_start_s),
                    format!("{:.0}", r.load_qps),
                    format!("{:.4}", r.accuracy),
                    r.violations.to_string(),
                    r.served.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len().min(ys.len()) as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx <= 0.0 || vy <= 0.0 {
        0.0
    } else {
        cov / (vx * vy).sqrt()
    }
}
