//! Appendix §I: RAMSIS with shortest-queue-first load balancing.
//!
//! Only the MDP transition probabilities depend on the balancing
//! strategy; this binary generates policies under the §I conditional-
//! Poisson JSQ model, deploys them with SQF routing in the simulator,
//! and compares against the default round-robin RAMSIS at constant
//! loads.
//!
//! Expected shape: both balancers achieve comparable accuracy at
//! satisfiable loads (JSQ tends to shave tail violations; round-robin
//! is what the paper evaluates end to end).

use ramsis_bench::harness::{
    build_profile, constant_load_workers, pct, ramsis_policy_set, run_scheme, MonitorKind,
};
use ramsis_bench::{render_table, write_csv, write_json, ExperimentArgs};
use ramsis_core::{Balancing, Discretization, PolicyConfig};
use ramsis_profiles::Task;
use ramsis_sim::{LatencyMode, RamsisScheme};
use ramsis_workload::Trace;
use serde::Serialize;
use std::time::Duration;

#[derive(Serialize)]
struct Row {
    balancer: String,
    load_qps: f64,
    accuracy: f64,
    violation_rate: f64,
    p95_response_ms: f64,
    p99_response_ms: f64,
}

fn main() {
    let args = ExperimentArgs::parse();
    let task = args.task.unwrap_or(Task::ImageClassification);
    let slo_s = args.slos_for(task)[0];
    let workers = args.workers.unwrap_or_else(|| constant_load_workers(task));
    let d = if args.full { 100 } else { 25 };
    let load_step = if args.full { 400 } else { 800 };
    let loads: Vec<f64> = (1..)
        .map(|i| (400 + (i - 1) * load_step) as f64)
        .take_while(|&l| l <= 4_000.0)
        .collect();
    let profile = build_profile(task, slo_s);

    let mut rows: Vec<Row> = Vec::new();
    for (label, balancing) in [
        ("round-robin", Balancing::RoundRobin),
        ("shortest-queue", Balancing::ShortestQueueFirst),
    ] {
        let config = PolicyConfig::builder(Duration::from_secs_f64(slo_s))
            .workers(workers)
            .discretization(Discretization::fixed_length(d))
            .balancing(balancing)
            .build();
        let set = ramsis_policy_set(&args.out_dir, &profile, &loads, &config);
        for &load in &loads {
            let trace = Trace::constant(load, 30.0);
            let mut scheme = match balancing {
                Balancing::RoundRobin => RamsisScheme::new(set.clone()),
                Balancing::ShortestQueueFirst => RamsisScheme::with_shortest_queue(set.clone()),
            };
            let r = run_scheme(
                &profile,
                workers,
                &trace,
                &mut scheme,
                MonitorKind::Oracle,
                LatencyMode::DeterministicP95,
                0xA1 ^ load as u64,
            );
            rows.push(Row {
                balancer: label.to_string(),
                load_qps: load,
                accuracy: r.accuracy_per_satisfied_query,
                violation_rate: r.violation_rate,
                p95_response_ms: r.p95_response_s * 1e3,
                p99_response_ms: r.p99_response_s * 1e3,
            });
        }
    }

    println!(
        "\n=== Appendix I — load balancing strategies, {} task, SLO {:.0} ms, \
         {workers} workers ===",
        task.name(),
        slo_s * 1e3
    );
    let mut table = Vec::new();
    for &load in &loads {
        let get = |label: &str| {
            rows.iter()
                .find(|r| r.balancer == label && r.load_qps == load)
                .expect("all combinations ran")
        };
        let rr = get("round-robin");
        let sq = get("shortest-queue");
        table.push(vec![
            format!("{load}"),
            format!("{:.2}", rr.accuracy),
            format!("{:.2}", sq.accuracy),
            pct(rr.violation_rate),
            pct(sq.violation_rate),
            format!("{:.1}", rr.p95_response_ms),
            format!("{:.1}", sq.p95_response_ms),
            format!("{:.1}", rr.p99_response_ms),
            format!("{:.1}", sq.p99_response_ms),
        ]);
    }
    let header = [
        "load_qps",
        "RR_acc",
        "SQF_acc",
        "RR_viol",
        "SQF_viol",
        "RR_p95_ms",
        "SQF_p95_ms",
        "RR_p99_ms",
        "SQF_p99_ms",
    ];
    println!("{}", render_table(&header, &table));

    let mean = |label: &str| {
        let pts: Vec<f64> = rows
            .iter()
            .filter(|r| r.balancer == label && r.violation_rate < 0.05)
            .map(|r| r.accuracy)
            .collect();
        pts.iter().sum::<f64>() / pts.len().max(1) as f64
    };
    println!(
        "mean satisfiable accuracy: round-robin {:.2}%, shortest-queue {:.2}%",
        mean("round-robin"),
        mean("shortest-queue")
    );

    write_json(&args.out_dir, "appendix_i_sqf", &rows);
    write_csv(
        &args.out_dir,
        "appendix_i_sqf",
        &[
            "balancer",
            "load_qps",
            "accuracy",
            "violation_rate",
            "p95_response_ms",
            "p99_response_ms",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.balancer.clone(),
                    format!("{}", r.load_qps),
                    format!("{:.4}", r.accuracy),
                    format!("{:.6}", r.violation_rate),
                    format!("{:.2}", r.p95_response_ms),
                    format!("{:.2}", r.p99_response_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
