//! Table 1: key features of inference serving systems.
//!
//! This table is descriptive (no experiment); it is rendered here so
//! every numbered artifact of the paper has a regenerating binary.

use ramsis_bench::{render_table, write_csv, ExperimentArgs};

fn main() {
    let args = ExperimentArgs::parse();
    let header = ["ISS", "MS", "Latency", "Accuracy", "Constraints"];
    let rows: Vec<Vec<String>> = [
        ["Clipper [7]", "-", "SLO", "-", "-"],
        ["Nexus [43]", "-", "SLO", "-", "D"],
        ["Clockwork [15]", "-", "SLO", "-", "D"],
        ["MArk [54]", "-", "SLO", "-", "-"],
        ["InferLine [6]", "-", "SLO", "-", "-"],
        ["INFaaS [38]", "X", "min", "SLO", "-"],
        ["Cocktail [16]", "X", "min", "max", "P, E"],
        ["Jellyfish [32]", "X", "SLO", "max", "D"],
        ["ModelSwitching [57]", "X", "SLO", "max", "-"],
        ["RAMSIS (this paper)", "X", "SLO", "max", "D"],
    ]
    .iter()
    .map(|r| r.iter().map(|s| s.to_string()).collect())
    .collect();

    println!("=== Table 1 — key features of ISSs ===");
    println!("{}", render_table(&header, &rows));
    println!(
        "D: assumes deterministic, predictable inference response latency; \
         E: model ensembling; P: preemptible workers.\n\
         ISSs without a model selection (MS) component rely on users to select models."
    );
    write_csv(&args.out_dir, "table1_features", &header, &rows);
}
