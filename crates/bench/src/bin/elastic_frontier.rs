//! Elastic capacity vs fixed pools on a diurnal trace: the
//! cost–accuracy–violation frontier of the fault-aware autoscaler.
//!
//! The Fig. 5 diurnal shape is rescaled to a 10x (quick) or 20x
//! (`--full`) trough-to-peak swing and served by the degradable
//! model-selection scheme under every fixed pool size and once with the
//! autoscaler + brownout ladder enabled. See EXPERIMENTS.md
//! "elastic_frontier".
//!
//! Expected shape: the elastic run spends fewer worker-seconds than the
//! cheapest fixed pool matching its miss-or-loss rate; the process
//! exits non-zero if it does not, making the frontier claim
//! CI-checkable.

use ramsis_bench::elastic::{
    frontier_claim, run_elastic_frontier, ElasticFrontierConfig, ElasticFrontierOutcome,
};
use ramsis_bench::{build_profile, render_table, write_csv, write_json, ExperimentArgs};
use ramsis_profiles::Task;

fn main() {
    let args = ExperimentArgs::parse();
    let task = args.task.unwrap_or(Task::ImageClassification);
    let mut cfg = if args.full {
        ElasticFrontierConfig::full()
    } else {
        ElasticFrontierConfig::default()
    };
    if let Some(ms) = args.slo_ms {
        cfg.slo_s = ms as f64 / 1e3;
    }
    if let Some(w) = args.workers {
        assert!(w >= 1, "need at least one worker");
        cfg.max_pool = w;
        cfg.fixed_pools.retain(|&p| p <= w);
        if cfg.fixed_pools.is_empty() {
            cfg.fixed_pools.push(w);
        }
    }
    if let Some(load) = args.load {
        cfg.trough_qps = load;
    }
    let profile = build_profile(task, cfg.slo_s);

    println!(
        "=== elastic_frontier — {} classification, SLO {:.0} ms, diurnal {:.0}-{:.0} QPS \
         over {:.0} s, pool 1-{}, warm-up {:.2} s ===",
        task.name(),
        cfg.slo_s * 1e3,
        cfg.trough_qps,
        cfg.trough_qps * cfg.swing,
        cfg.duration_s,
        cfg.max_pool,
        cfg.warmup_s,
    );
    let outcomes: Vec<ElasticFrontierOutcome> = run_elastic_frontier(&profile, &cfg);
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.method.clone(),
                format!("{:.1}", o.worker_seconds),
                format!("{:.4}%", o.miss_or_loss_rate * 100.0),
                format!("{:.4}%", o.violation_rate * 100.0),
                format!("{:.4}", o.accuracy),
                format!("{}", o.scale_ups),
                format!("{}", o.scale_downs),
                format!("{}", o.brownout_enters),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "method",
                "worker-s",
                "miss-or-loss",
                "viol rate",
                "accuracy",
                "ups",
                "downs",
                "brownouts",
            ],
            &rows,
        )
    );
    write_csv(
        &args.out_dir,
        &format!("elastic_frontier_{}", task.name()),
        &[
            "method",
            "worker_seconds",
            "miss_or_loss_rate",
            "violation_rate",
            "accuracy",
            "scale_ups",
            "scale_downs",
            "brownout_enters",
        ],
        &rows,
    );
    write_json(
        &args.out_dir,
        &format!("elastic_frontier_{}", task.name()),
        &outcomes,
    );

    // The headline claim — the frontier direction is an assertion, not
    // a narration.
    let (elastic_ws, fixed_ws) = frontier_claim(&outcomes);
    assert!(
        elastic_ws < fixed_ws,
        "elastic must beat the cheapest qualifying fixed pool: \
         {elastic_ws:.1} vs {fixed_ws:.1} worker-seconds"
    );
    println!(
        "\nOK: elastic serves the day in {elastic_ws:.1} worker-seconds vs {fixed_ws:.1} \
         for the cheapest fixed pool at equal-or-better miss-or-loss"
    );
}
