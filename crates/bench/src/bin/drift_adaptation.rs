//! Adaptive runtime under arrival drift: drift detection + policy
//! hot-swap + deadline-aware shedding vs stale policies.
//!
//! Runs the canonical drifting stream (20 s steady Poisson at the base
//! rate, a 20 s ten-step ramp to the peak rate crossing two regime-grid
//! edges, then 20 s of bursty gamma-renewal arrivals at the peak)
//! against three systems. See EXPERIMENTS.md "drift_adaptation".
//!
//! Expected shape: RAMSIS-adaptive strictly beats RAMSIS-stale on
//! miss-or-loss rate by hot-swapping to higher-rate (and, after the
//! dispersion shift, bursty) regimes; Fixed-fastest is drift-immune but
//! gives up accuracy everywhere; the swap log shows two ramp swaps plus
//! the bursty one, each with its detection delay.

use ramsis_bench::drift::{run_drift, DriftConfig};
use ramsis_bench::{build_profile, render_table, write_csv, write_json, ExperimentArgs};
use ramsis_profiles::Task;

fn main() {
    let args = ExperimentArgs::parse();
    let task = args.task.unwrap_or(Task::ImageClassification);
    let slo_s = args.slo_ms.map_or(0.15, |ms| ms as f64 / 1e3);
    let mut cfg = DriftConfig {
        slo_s,
        d: if args.full { 25 } else { 10 },
        ..DriftConfig::default()
    };
    if let Some(w) = args.workers {
        cfg.workers = w;
    }
    if let Some(load) = args.load {
        cfg.base_qps = load;
        cfg.peak_qps = load * 2.5;
    }
    let profile = build_profile(task, cfg.slo_s);

    println!(
        "\n=== drift_adaptation — {} classification, SLO {:.0} ms, {} workers, \
         {:.0} -> {:.0} QPS ramp + bursty tail (shape {}) ===",
        task.name(),
        cfg.slo_s * 1e3,
        cfg.workers,
        cfg.base_qps,
        cfg.peak_qps,
        cfg.burst_shape,
    );
    let outcomes = run_drift(&profile, &cfg);

    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            let (swaps, sheds, fallbacks) = o.report.adaptive.as_ref().map_or_else(
                || ("-".to_string(), "-".to_string(), "-".to_string()),
                |a| {
                    (
                        a.swaps.to_string(),
                        (a.shed_hopeless + a.shed_queue_depth).to_string(),
                        a.fallback_decisions.to_string(),
                    )
                },
            );
            vec![
                o.method.clone(),
                format!("{:.4}%", o.miss_or_loss_rate * 100.0),
                format!("{:.4}%", o.report.violation_rate * 100.0),
                format!("{:.2}%", o.report.accuracy_per_satisfied_query),
                swaps,
                sheds,
                fallbacks,
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "method",
                "miss-or-loss",
                "violation",
                "accuracy",
                "swaps",
                "sheds",
                "fallbacks",
            ],
            &rows,
        )
    );

    // The swap log: when each regime change committed and how long
    // detection took.
    if let Some(stats) = outcomes[0].report.adaptive.as_ref() {
        println!(
            "\nswap log ({} refits, {} lazy solves):",
            stats.refits, stats.lazy_solves
        );
        for e in &stats.regime_events {
            println!(
                "  t={:6.2}s  {} -> {}  (fit {:.0} QPS, dispersion {:.2}, detected in {:.2}s)",
                e.at_s, e.from, e.to, e.fitted_rate_qps, e.fitted_dispersion, e.detection_delay_s
            );
        }
        println!("\nper-regime violation rates:");
        for r in &stats.per_regime {
            println!(
                "  {:>20}  served {:6}  violations {:5}  ({:.4}%)",
                r.regime,
                r.served,
                r.violations,
                r.violation_rate() * 100.0
            );
        }
    }

    write_csv(
        &args.out_dir,
        &format!("drift_adaptation_{}", task.name()),
        &[
            "method",
            "miss_or_loss_rate",
            "violation_rate",
            "accuracy",
            "swaps",
            "sheds",
            "fallback_decisions",
        ],
        &rows,
    );
    write_json(
        &args.out_dir,
        &format!("drift_adaptation_{}", task.name()),
        &outcomes,
    );

    let adaptive = &outcomes[0];
    let stale = &outcomes[1];
    if adaptive.miss_or_loss_rate < stale.miss_or_loss_rate {
        println!(
            "\nOK: adaptation lowers miss-or-loss {:.4}% -> {:.4}%",
            stale.miss_or_loss_rate * 100.0,
            adaptive.miss_or_loss_rate * 100.0
        );
    } else {
        println!(
            "\nWARNING: adaptation did not help ({:.4}% vs {:.4}%)",
            adaptive.miss_or_loss_rate * 100.0,
            stale.miss_or_loss_rate * 100.0
        );
    }
}
