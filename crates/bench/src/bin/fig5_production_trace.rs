//! Fig. 5 + Table 3: RAMSIS vs Jellyfish+ vs ModelSwitching on the
//! production (Twitter-like) trace (§7.1).
//!
//! The five-minute trace ranges 1,617–3,905 QPS; worker counts sweep
//! 20–100 (quick mode: {40, 60, 80, 100}); the 500 ms moving-average
//! load monitor anticipates load. Besides accuracy/violation curves, the
//! headline resource-saving statistic is computed: the fewest workers
//! RAMSIS needs to match each baseline's accuracy at each worker count.

use ramsis_baselines::JellyfishPlus;
use ramsis_bench::harness::{
    build_profile, ms_profiling_loads, ms_scheme, pct, ramsis_config, ramsis_loads_for_range,
    ramsis_policy_set, run_scheme, MonitorKind, RunOutcome,
};
use ramsis_bench::{ascii_plot, render_table, write_csv, write_json, ExperimentArgs};
use ramsis_sim::{LatencyMode, RamsisScheme};
use ramsis_workload::Trace;

fn main() {
    let args = ExperimentArgs::parse();
    let worker_counts: Vec<usize> = if let Some(w) = args.workers {
        vec![w]
    } else if args.full {
        (2..=10).map(|i| i * 10).collect()
    } else {
        vec![40, 60, 80, 100]
    };
    let d = if args.full { 100 } else { 25 };
    let trace = Trace::twitter_like(42);
    println!(
        "production trace: {} intervals, {:.0}-{:.0} QPS, {:.0} expected queries",
        trace.segments().len(),
        trace.min_qps(),
        trace.max_qps(),
        trace.expected_queries()
    );

    let mut all_rows: Vec<RunOutcome> = Vec::new();
    for task in args.tasks() {
        for slo_s in args.slos_for(task) {
            let slo_ms = (slo_s * 1e3).round() as u64;
            println!(
                "\n=== Fig. 5 — {} classification, SLO {slo_ms} ms ===",
                task.name()
            );
            let profile = build_profile(task, slo_s);
            let policy_loads = ramsis_loads_for_range(trace.min_qps() * 0.5, trace.max_qps(), 8);

            let mut table_rows = Vec::new();
            for &workers in &worker_counts {
                let config = ramsis_config(slo_s, workers, d);
                let set = ramsis_policy_set(&args.out_dir, &profile, &policy_loads, &config);
                let ms_base = ms_scheme(
                    &args.out_dir,
                    &profile,
                    workers,
                    &ms_profiling_loads(args.full),
                    if args.full { 10.0 } else { 5.0 },
                );
                let seed = 0xF05 ^ workers as u64 ^ slo_ms;
                let mut outcomes = Vec::new();
                {
                    let mut scheme = RamsisScheme::new(set.clone());
                    outcomes.push(run_scheme(
                        &profile,
                        workers,
                        &trace,
                        &mut scheme,
                        MonitorKind::MovingAverage,
                        LatencyMode::DeterministicP95,
                        seed,
                    ));
                }
                {
                    let mut scheme = JellyfishPlus::new(&profile, workers);
                    outcomes.push(run_scheme(
                        &profile,
                        workers,
                        &trace,
                        &mut scheme,
                        MonitorKind::MovingAverage,
                        LatencyMode::DeterministicP95,
                        seed,
                    ));
                }
                {
                    let mut scheme =
                        ramsis_baselines::ModelSwitching::new(&profile, ms_base.table().clone());
                    outcomes.push(run_scheme(
                        &profile,
                        workers,
                        &trace,
                        &mut scheme,
                        MonitorKind::MovingAverage,
                        LatencyMode::DeterministicP95,
                        seed,
                    ));
                }
                let mut row = vec![workers.to_string()];
                for r in &outcomes {
                    row.push(format!("{:.2}", r.accuracy_per_satisfied_query));
                    row.push(pct(r.violation_rate));
                    all_rows.push(RunOutcome {
                        task: task.name().to_string(),
                        method: r.scheme.clone(),
                        slo_ms,
                        workers,
                        load_qps: trace.expected_queries() / trace.duration(),
                        report: r.clone(),
                    });
                }
                table_rows.push(row);
            }

            let header = [
                "workers",
                "RAMSIS_acc",
                "RAMSIS_viol",
                "JF+_acc",
                "JF+_viol",
                "MS_acc",
                "MS_viol",
            ];
            println!("{}", render_table(&header, &table_rows));
            summarize(&all_rows, task.name(), slo_ms, &worker_counts);
        }
    }

    write_json(&args.out_dir, "fig5_production_trace", &all_rows);
    write_csv(
        &args.out_dir,
        "fig5_production_trace",
        &[
            "task",
            "method",
            "slo_ms",
            "workers",
            "accuracy",
            "violation_rate",
        ],
        &all_rows
            .iter()
            .map(|r| {
                vec![
                    r.task.clone(),
                    r.method.clone(),
                    r.slo_ms.to_string(),
                    r.workers.to_string(),
                    format!("{:.4}", r.report.accuracy_per_satisfied_query),
                    format!("{:.6}", r.report.violation_rate),
                ]
            })
            .collect::<Vec<_>>(),
    );
    write_csv(
        &args.out_dir,
        "table3_violation_rates",
        &["task", "method", "slo_ms", "workers", "violation_rate"],
        &all_rows
            .iter()
            .map(|r| {
                vec![
                    r.task.clone(),
                    r.method.clone(),
                    r.slo_ms.to_string(),
                    r.workers.to_string(),
                    pct(r.report.violation_rate),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

fn acc_of<'a>(
    rows: &'a [RunOutcome],
    task: &str,
    slo_ms: u64,
    method: &str,
    workers: usize,
) -> Option<&'a RunOutcome> {
    rows.iter().find(|r| {
        r.task == task && r.slo_ms == slo_ms && r.method == method && r.workers == workers
    })
}

/// Prints accuracy-gain and resource-saving statistics plus the
/// accuracy-vs-workers plot (violation rate < 5% filter, as the paper's
/// figures apply).
fn summarize(rows: &[RunOutcome], task: &str, slo_ms: u64, worker_counts: &[usize]) {
    let series: Vec<(String, Vec<(f64, f64)>)> = ["RAMSIS", "Jellyfish+", "ModelSwitching"]
        .iter()
        .map(|&m| {
            let pts = worker_counts
                .iter()
                .filter_map(|&w| {
                    acc_of(rows, task, slo_ms, m, w)
                        .filter(|r| r.report.violation_rate < 0.05)
                        .map(|r| (w as f64, r.report.accuracy_per_satisfied_query))
                })
                .collect();
            (m.to_string(), pts)
        })
        .collect();
    println!("accuracy (%) vs workers, violation rate < 5%:");
    println!("{}", ascii_plot(&series, 64, 12));

    for baseline in ["Jellyfish+", "ModelSwitching"] {
        let mut acc_deltas = Vec::new();
        let mut savings = Vec::new();
        for &w in worker_counts {
            let (Some(r), Some(b)) = (
                acc_of(rows, task, slo_ms, "RAMSIS", w),
                acc_of(rows, task, slo_ms, baseline, w),
            ) else {
                continue;
            };
            if r.report.violation_rate >= 0.05 || b.report.violation_rate >= 0.05 {
                continue;
            }
            acc_deltas.push(
                r.report.accuracy_per_satisfied_query - b.report.accuracy_per_satisfied_query,
            );
            // Resource saving: fewest workers at which RAMSIS matches
            // the baseline's accuracy at w workers.
            let target = b.report.accuracy_per_satisfied_query;
            let needed = worker_counts
                .iter()
                .copied()
                .filter(|&w2| {
                    acc_of(rows, task, slo_ms, "RAMSIS", w2).is_some_and(|r2| {
                        r2.report.violation_rate < 0.05
                            && r2.report.accuracy_per_satisfied_query >= target - 1e-9
                    })
                })
                .min();
            if let Some(w2) = needed {
                if w2 <= w {
                    savings.push((w - w2) as f64 / w as f64);
                }
            }
        }
        if acc_deltas.is_empty() {
            continue;
        }
        let avg = acc_deltas.iter().sum::<f64>() / acc_deltas.len() as f64;
        let max = acc_deltas.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        println!("RAMSIS vs {baseline}: average accuracy increase {avg:.2}%, highest {max:.2}%");
        if !savings.is_empty() {
            let avg_s = 100.0 * savings.iter().sum::<f64>() / savings.len() as f64;
            let max_s = 100.0 * savings.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            println!(
                "RAMSIS matches {baseline}'s accuracy with up to {max_s:.2}% \
                 (on average {avg_s:.2}%) fewer workers"
            );
        }
    }
}
