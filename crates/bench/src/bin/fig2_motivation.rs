//! Fig. 2: the paper's motivating example, made concrete.
//!
//! Two models are loaded on every worker: model A (accurate, slow) and
//! model B (fast). Both meet the latency SLO at batch 1, but only B has
//! the throughput for the offered load. A load-granular scheme must
//! select B for *every* query; RAMSIS selects A during arrival lulls —
//! "higher accuracy with the same latency SLO violations (none)".
//!
//! The binary prints the worker-MDP decision table (showing exactly
//! where A is chosen), the §5.1 expectations, and a head-to-head
//! simulation.

use std::time::Duration;

use ramsis_baselines::JellyfishPlus;
use ramsis_bench::harness::{pct, run_scheme, MonitorKind};
use ramsis_bench::{render_table, write_csv, ExperimentArgs};
use ramsis_core::{
    generate_policy, Decision, Discretization, PoissonArrivals, PolicyConfig, PolicySet,
};
use ramsis_profiles::{ModelCatalog, ModelSpec, ProfilerConfig, Task, WorkerProfile};
use ramsis_sim::{LatencyMode, RamsisScheme};
use ramsis_workload::Trace;

fn main() {
    let args = ExperimentArgs::parse();
    let slo = Duration::from_millis(150);
    let workers = args.workers.unwrap_or(2);

    // Two models, as in Fig. 2. At 50 QPS over 2 workers (25 per
    // worker), B runs at ~45% utilization while A alone would need
    // ~175% — only B meets the load (the load-granular premise), yet
    // lulls leave room for occasional A selections.
    let catalog = ModelCatalog {
        task: Task::ImageClassification,
        models: vec![
            ModelSpec::new("model_A_accurate", 85.0, 0.070),
            ModelSpec::new("model_B_fast", 70.0, 0.018),
        ],
    };
    let profile = WorkerProfile::build(&catalog, slo, ProfilerConfig::default());
    let load = args.load.unwrap_or(50.0);
    println!(
        "model A: {:.0} ms ({}% accurate, ~{:.0} QPS/worker max)  |  \
         model B: {:.0} ms ({}%, ~{:.0} QPS/worker max)  |  load {load} QPS over {workers} workers",
        profile.latency(0, 1).unwrap() * 1e3,
        85,
        1.0 / profile.latency(0, 1).unwrap(),
        profile.latency(1, 1).unwrap() * 1e3,
        70,
        1.0 / profile.latency(1, 1).unwrap(),
    );

    // The load-granular choice: Jellyfish+ must pick B at this load.
    let jf = JellyfishPlus::new(&profile, workers);
    let jf_model = jf.model_for_load(load);
    println!(
        "load-granular selection at {load} QPS: {} for every query (Fig. 2, left)",
        profile.models[jf_model].name
    );

    // The RAMSIS policy: where in the state space is A chosen?
    let config = PolicyConfig::builder(slo)
        .workers(workers)
        .discretization(Discretization::fixed_length(25))
        .build();
    let policy = generate_policy(&profile, &PoissonArrivals::per_second(load), &config)
        .expect("policy generates");
    println!("\nRAMSIS decision table (Fig. 2, right — A appears during lulls):");
    let grid_len = policy.grid().len();
    let mut rows = Vec::new();
    for n in 1..=4u32 {
        let mut cells = vec![format!("n={n}")];
        for j in [
            0,
            grid_len / 4,
            grid_len / 2,
            3 * grid_len / 4,
            grid_len - 1,
        ] {
            let slack = policy.grid().value(j);
            let cell = match policy.decide(n as usize, slack) {
                Decision::Serve { model, .. } => {
                    if model == 0 {
                        "A".to_string()
                    } else {
                        "B".to_string()
                    }
                }
                Decision::Drop { .. } => ".".to_string(),
                Decision::Wait => " ".to_string(),
            };
            cells.push(cell);
        }
        rows.push(cells);
    }
    let headers: Vec<String> = std::iter::once("queue".to_string())
        .chain(
            [
                0,
                grid_len / 4,
                grid_len / 2,
                3 * grid_len / 4,
                grid_len - 1,
            ]
            .iter()
            .map(|&j| format!("slack {:.0}ms", policy.grid().value(j) * 1e3)),
        )
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("{}", render_table(&header_refs, &rows));
    let g = policy.guarantees();
    println!(
        "§5.1 expectations: accuracy >= {:.2}% (pure-B would be 70.00%), violations <= {}",
        g.expected_accuracy,
        pct(g.expected_violation_rate)
    );

    // Head to head on 60 seconds of Poisson arrivals.
    let trace = Trace::constant(load, 60.0);
    let set = PolicySet::from_policies(vec![policy]).expect("non-empty");
    let mut ramsis = RamsisScheme::new(set);
    let r = run_scheme(
        &profile,
        workers,
        &trace,
        &mut ramsis,
        MonitorKind::Oracle,
        LatencyMode::DeterministicP95,
        2,
    );
    let mut jf = JellyfishPlus::new(&profile, workers);
    let j = run_scheme(
        &profile,
        workers,
        &trace,
        &mut jf,
        MonitorKind::Oracle,
        LatencyMode::DeterministicP95,
        2,
    );
    println!("\nhead to head over {} queries:", r.served);
    let table = vec![
        vec![
            "RAMSIS".to_string(),
            format!("{:.2}", r.accuracy_per_satisfied_query),
            pct(r.violation_rate),
            r.per_model
                .iter()
                .map(|(m, c)| format!("{m}:{c}"))
                .collect::<Vec<_>>()
                .join(" "),
        ],
        vec![
            "load-granular".to_string(),
            format!("{:.2}", j.accuracy_per_satisfied_query),
            pct(j.violation_rate),
            j.per_model
                .iter()
                .map(|(m, c)| format!("{m}:{c}"))
                .collect::<Vec<_>>()
                .join(" "),
        ],
    ];
    println!(
        "{}",
        render_table(
            &["scheme", "accuracy_%", "violations", "queries per model"],
            &table
        )
    );
    println!(
        "paper check (Fig. 2): RAMSIS sends a substantial share of queries to model A \
         during lulls while keeping violations at ~zero."
    );

    write_csv(
        &args.out_dir,
        "fig2_motivation",
        &["scheme", "accuracy", "violation_rate"],
        &[
            vec![
                "RAMSIS".into(),
                format!("{:.4}", r.accuracy_per_satisfied_query),
                format!("{:.6}", r.violation_rate),
            ],
            vec![
                "load-granular".into(),
                format!("{:.4}", j.accuracy_per_satisfied_query),
                format!("{:.6}", j.violation_rate),
            ],
        ],
    );
}
