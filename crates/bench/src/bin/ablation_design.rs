//! Design-choice ablations beyond the paper's own appendices:
//!
//! 1. **Greedy vs MDP** (§8): the MDInference-style greedy selector sees
//!    the same queue state but ignores the arrival process — under
//!    bursts its optimistic picks back later queries up. This isolates
//!    the value of RAMSIS's inter-arrival awareness.
//! 2. **Reward shaping** (§4.1): the paper's per-batch reward vs the
//!    batch-weighted per-query variant.
//! 3. **Discount factor**: γ ∈ {0.9, 0.99, 0.999}.
//! 4. **Solver** (§4.1): value iteration vs policy iteration vs
//!    relative value iteration — same optimal policy, different cost.

use ramsis_baselines::GreedyDeadline;
use ramsis_bench::harness::{
    build_profile, constant_load_workers, pct, ramsis_config, ramsis_policy_set, run_scheme,
    MonitorKind,
};
use ramsis_bench::{render_table, write_csv, write_json, ExperimentArgs};
use ramsis_core::{generate_policy, PoissonArrivals, RewardKind, SolverKind};
use ramsis_profiles::Task;
use ramsis_sim::{LatencyMode, RamsisScheme};
use ramsis_workload::Trace;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    ablation: String,
    variant: String,
    load_qps: f64,
    accuracy: f64,
    violation_rate: f64,
    note: String,
}

fn main() {
    let args = ExperimentArgs::parse();
    let task = args.task.unwrap_or(Task::ImageClassification);
    let slo_s = args.slos_for(task)[0];
    let workers = args.workers.unwrap_or_else(|| constant_load_workers(task));
    let d = if args.full { 100 } else { 25 };
    let loads: Vec<f64> = vec![1_200.0, 2_400.0, 3_200.0];
    let profile = build_profile(task, slo_s);
    let mut rows: Vec<Row> = Vec::new();

    // --- 1. Greedy vs RAMSIS. ---
    println!("\n=== Ablation 1 — greedy deadline-aware selection vs the MDP policy (§8) ===");
    let config = ramsis_config(slo_s, workers, d);
    let set = ramsis_policy_set(&args.out_dir, &profile, &loads, &config);
    let mut table = Vec::new();
    for &load in &loads {
        let trace = Trace::constant(load, 30.0);
        let seed = 0xAB1 ^ load as u64;
        let mut ramsis = RamsisScheme::new(set.clone());
        let r = run_scheme(
            &profile,
            workers,
            &trace,
            &mut ramsis,
            MonitorKind::Oracle,
            LatencyMode::DeterministicP95,
            seed,
        );
        let mut greedy = GreedyDeadline::new(&profile);
        let g = run_scheme(
            &profile,
            workers,
            &trace,
            &mut greedy,
            MonitorKind::Oracle,
            LatencyMode::DeterministicP95,
            seed,
        );
        table.push(vec![
            format!("{load}"),
            format!("{:.2}", r.accuracy_per_satisfied_query),
            pct(r.violation_rate),
            format!("{:.2}", g.accuracy_per_satisfied_query),
            pct(g.violation_rate),
        ]);
        for (name, rep) in [("RAMSIS", &r), ("Greedy", &g)] {
            rows.push(Row {
                ablation: "greedy".into(),
                variant: name.into(),
                load_qps: load,
                accuracy: rep.accuracy_per_satisfied_query,
                violation_rate: rep.violation_rate,
                note: String::new(),
            });
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "load_qps",
                "RAMSIS_acc",
                "RAMSIS_viol",
                "Greedy_acc",
                "Greedy_viol"
            ],
            &table
        )
    );
    println!(
        "expected shape: greedy picks accurate models optimistically, so its accuracy can\n\
         look high — but its violation rate deteriorates with load (it never hedges\n\
         against bursts), while RAMSIS holds violations near zero."
    );

    // --- 2. Reward shaping. ---
    println!("\n=== Ablation 2 — reward shaping (§4.1): per-batch vs per-query ===");
    ablate(
        &mut rows,
        &args,
        &profile,
        workers,
        slo_s,
        d,
        &loads,
        "reward",
        &[
            ("per-batch", |c: &mut ramsis_core::PolicyConfig| {
                c.reward = RewardKind::PerBatch;
            }),
            ("per-query", |c| {
                c.reward = RewardKind::PerQuery;
            }),
        ],
    );

    // --- 3. Discount factor. ---
    println!("\n=== Ablation 3 — discount factor ===");
    ablate(
        &mut rows,
        &args,
        &profile,
        workers,
        slo_s,
        d,
        &loads,
        "discount",
        &[
            ("gamma=0.9", |c| c.discount = 0.9),
            ("gamma=0.99", |c| c.discount = 0.99),
            ("gamma=0.999", |c| c.discount = 0.999),
        ],
    );

    // --- 4. Solver agreement and cost. ---
    println!("\n=== Ablation 4 — exact solvers (§4.1) ===");
    let mut table = Vec::new();
    for (label, solver) in [
        ("value-iteration", SolverKind::ValueIteration),
        ("gauss-seidel-VI", SolverKind::GaussSeidelValueIteration),
        ("policy-iteration", SolverKind::PolicyIteration),
        ("relative-VI", SolverKind::RelativeValueIteration),
    ] {
        let mut config = ramsis_config(slo_s, workers, d);
        config.solver = solver;
        let policy = generate_policy(&profile, &PoissonArrivals::per_second(2_000.0), &config)
            .expect("generation succeeds");
        let g = policy.guarantees();
        table.push(vec![
            label.to_string(),
            format!("{:.2}", g.expected_accuracy),
            pct(g.expected_violation_rate),
            format!("{:.2}", policy.generation_seconds),
            policy.solve_iterations.to_string(),
        ]);
        rows.push(Row {
            ablation: "solver".into(),
            variant: label.into(),
            load_qps: 2_000.0,
            accuracy: g.expected_accuracy,
            violation_rate: g.expected_violation_rate,
            note: format!(
                "{} sweeps, {:.2}s",
                policy.solve_iterations, policy.generation_seconds
            ),
        });
    }
    println!(
        "{}",
        render_table(&["solver", "E[acc]", "E[viol]", "gen_s", "sweeps"], &table)
    );
    println!("expected shape: all four exact solvers land on (nearly) the same policy.");

    write_json(&args.out_dir, "ablation_design", &rows);
    write_csv(
        &args.out_dir,
        "ablation_design",
        &[
            "ablation",
            "variant",
            "load_qps",
            "accuracy",
            "violation_rate",
            "note",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.ablation.clone(),
                    r.variant.clone(),
                    format!("{}", r.load_qps),
                    format!("{:.4}", r.accuracy),
                    format!("{:.6}", r.violation_rate),
                    r.note.clone(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Runs one config-knob ablation: generate per-variant policy sets and
/// simulate the same loads.
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
fn ablate(
    rows: &mut Vec<Row>,
    args: &ExperimentArgs,
    profile: &ramsis_profiles::WorkerProfile,
    workers: usize,
    slo_s: f64,
    d: u32,
    loads: &[f64],
    name: &str,
    variants: &[(&str, fn(&mut ramsis_core::PolicyConfig))],
) {
    let mut table = Vec::new();
    for &load in loads {
        let mut row = vec![format!("{load}")];
        for &(label, tweak) in variants {
            let mut config = ramsis_config(slo_s, workers, d);
            tweak(&mut config);
            let set = ramsis_policy_set(&args.out_dir, profile, loads, &config);
            let trace = Trace::constant(load, 30.0);
            let mut scheme = RamsisScheme::new(set);
            let r = run_scheme(
                profile,
                workers,
                &trace,
                &mut scheme,
                MonitorKind::Oracle,
                LatencyMode::DeterministicP95,
                0xAB2 ^ load as u64,
            );
            row.push(format!("{:.2}", r.accuracy_per_satisfied_query));
            row.push(pct(r.violation_rate));
            rows.push(Row {
                ablation: name.into(),
                variant: label.into(),
                load_qps: load,
                accuracy: r.accuracy_per_satisfied_query,
                violation_rate: r.violation_rate,
                note: String::new(),
            });
        }
        table.push(row);
    }
    let mut header = vec!["load_qps".to_string()];
    for &(label, _) in variants {
        header.push(format!("{label}_acc"));
        header.push(format!("{label}_viol"));
    }
    let refs: Vec<&str> = header.iter().map(String::as_str).collect();
    println!("{}", render_table(&refs, &table));
}
