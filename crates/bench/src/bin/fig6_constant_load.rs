//! Fig. 6 + Table 4: RAMSIS vs Jellyfish+ vs ModelSwitching under
//! constant query load (§7.2).
//!
//! 30-second constant-load traces from 400 to 4,000 QPS in increments
//! of 400, with 60 workers (image) / 20 workers (text) chosen so that
//! at 3,600–4,000 QPS only the lowest-latency model sustains the load,
//! and a perfect load monitor ("we assume the load monitor perfectly
//! predicts the query load").
//!
//! Expected shape: RAMSIS achieves equal or higher accuracy at every
//! satisfiable load; the gains vanish at both extremes of the range.

use ramsis_baselines::JellyfishPlus;
use ramsis_bench::harness::{
    build_profile, constant_load_workers, ms_profiling_loads, ms_scheme, pct, ramsis_config,
    ramsis_policy_set, run_scheme, MonitorKind, RunOutcome,
};
use ramsis_bench::{ascii_plot, render_table, write_csv, write_json, ExperimentArgs};
use ramsis_sim::{LatencyMode, RamsisScheme};
use ramsis_workload::Trace;

fn main() {
    let args = ExperimentArgs::parse();
    let loads: Vec<f64> = (1..=10).map(|i| 400.0 * i as f64).collect();
    let duration_s = 30.0;
    let d = if args.full { 100 } else { 25 };
    let mut all_rows: Vec<RunOutcome> = Vec::new();

    for task in args.tasks() {
        for slo_s in args.slos_for(task) {
            let slo_ms = (slo_s * 1e3).round() as u64;
            let workers = args.workers.unwrap_or_else(|| constant_load_workers(task));
            println!(
                "\n=== Fig. 6 — {} classification, SLO {slo_ms} ms, {workers} workers ===",
                task.name()
            );
            let profile = build_profile(task, slo_s);
            let config = ramsis_config(slo_s, workers, d);
            let set = ramsis_policy_set(&args.out_dir, &profile, &loads, &config);
            let ms_base = ms_scheme(
                &args.out_dir,
                &profile,
                workers,
                &ms_profiling_loads(args.full),
                if args.full { 10.0 } else { 5.0 },
            );

            let mut table_rows = Vec::new();
            for &load in &loads {
                let trace = Trace::constant(load, duration_s);
                let seed = 0xF16 ^ (load as u64) ^ slo_ms;
                let mut outcomes = Vec::new();
                {
                    let mut scheme = RamsisScheme::new(set.clone());
                    outcomes.push(run_scheme(
                        &profile,
                        workers,
                        &trace,
                        &mut scheme,
                        MonitorKind::Oracle,
                        LatencyMode::DeterministicP95,
                        seed,
                    ));
                }
                {
                    let mut scheme = JellyfishPlus::new(&profile, workers);
                    outcomes.push(run_scheme(
                        &profile,
                        workers,
                        &trace,
                        &mut scheme,
                        MonitorKind::Oracle,
                        LatencyMode::DeterministicP95,
                        seed,
                    ));
                }
                {
                    let mut scheme =
                        ramsis_baselines::ModelSwitching::new(&profile, ms_base.table().clone());
                    outcomes.push(run_scheme(
                        &profile,
                        workers,
                        &trace,
                        &mut scheme,
                        MonitorKind::Oracle,
                        LatencyMode::DeterministicP95,
                        seed,
                    ));
                }
                let mut row = vec![format!("{load}")];
                for r in &outcomes {
                    row.push(format!("{:.2}", r.accuracy_per_satisfied_query));
                    row.push(pct(r.violation_rate));
                    all_rows.push(RunOutcome {
                        task: task.name().to_string(),
                        method: r.scheme.clone(),
                        slo_ms,
                        workers,
                        load_qps: load,
                        report: r.clone(),
                    });
                }
                table_rows.push(row);
            }

            let header = [
                "load_qps",
                "RAMSIS_acc",
                "RAMSIS_viol",
                "JF+_acc",
                "JF+_viol",
                "MS_acc",
                "MS_viol",
            ];
            println!("{}", render_table(&header, &table_rows));
            print_summary(&all_rows, task.name(), slo_ms, workers);
            plot(&all_rows, task.name(), slo_ms, workers, &loads);
        }
    }

    write_json(&args.out_dir, "fig6_constant_load", &all_rows);
    let csv_rows: Vec<Vec<String>> = all_rows
        .iter()
        .map(|r| {
            vec![
                r.task.clone(),
                r.method.clone(),
                r.slo_ms.to_string(),
                r.workers.to_string(),
                format!("{}", r.load_qps),
                format!("{:.4}", r.report.accuracy_per_satisfied_query),
                format!("{:.6}", r.report.violation_rate),
            ]
        })
        .collect();
    write_csv(
        &args.out_dir,
        "fig6_constant_load",
        &[
            "task",
            "method",
            "slo_ms",
            "workers",
            "load_qps",
            "accuracy",
            "violation_rate",
        ],
        &csv_rows,
    );
    write_csv(
        &args.out_dir,
        "table4_violation_rates",
        &[
            "task",
            "method",
            "slo_ms",
            "workers",
            "load_qps",
            "violation_rate",
        ],
        &all_rows
            .iter()
            .map(|r| {
                vec![
                    r.task.clone(),
                    r.method.clone(),
                    r.slo_ms.to_string(),
                    r.workers.to_string(),
                    format!("{}", r.load_qps),
                    pct(r.report.violation_rate),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// The paper's Fig. 6 filter and headline statistics: only points with
/// violation rate < 5% count, and the accuracy delta of RAMSIS over
/// each baseline is reported as average and maximum.
fn print_summary(rows: &[RunOutcome], task: &str, slo_ms: u64, workers: usize) {
    for baseline in ["Jellyfish+", "ModelSwitching"] {
        let mut deltas = Vec::new();
        for r in rows.iter().filter(|r| {
            r.task == task && r.slo_ms == slo_ms && r.workers == workers && r.method == "RAMSIS"
        }) {
            let Some(b) = rows.iter().find(|b| {
                b.task == task
                    && b.slo_ms == slo_ms
                    && b.workers == workers
                    && b.method == baseline
                    && b.load_qps == r.load_qps
            }) else {
                continue;
            };
            if r.report.violation_rate < 0.05 && b.report.violation_rate < 0.05 {
                deltas.push(
                    r.report.accuracy_per_satisfied_query - b.report.accuracy_per_satisfied_query,
                );
            }
        }
        if deltas.is_empty() {
            continue;
        }
        let avg = deltas.iter().sum::<f64>() / deltas.len() as f64;
        let max = deltas.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "RAMSIS vs {baseline}: average accuracy increase {avg:.2}%, highest {max:.2}% \
             (over {} satisfiable loads)",
            deltas.len()
        );
    }
}

fn plot(rows: &[RunOutcome], task: &str, slo_ms: u64, workers: usize, loads: &[f64]) {
    let series: Vec<(String, Vec<(f64, f64)>)> = ["RAMSIS", "Jellyfish+", "ModelSwitching"]
        .iter()
        .map(|&m| {
            let pts = loads
                .iter()
                .filter_map(|&l| {
                    rows.iter()
                        .find(|r| {
                            r.task == task
                                && r.slo_ms == slo_ms
                                && r.workers == workers
                                && r.method == m
                                && r.load_qps == l
                                && r.report.violation_rate < 0.05
                        })
                        .map(|r| (l, r.report.accuracy_per_satisfied_query))
                })
                .collect();
            (m.to_string(), pts)
        })
        .collect();
    println!("accuracy (%) vs load (QPS), points with violation rate < 5%:");
    println!("{}", ascii_plot(&series, 64, 12));
}
