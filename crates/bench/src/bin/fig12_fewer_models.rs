//! Fig. 12 (appendix §E): model-set ablation — RAMSIS and Jellyfish+
//! with the full image model set versus a 3-model subset (the
//! minimum-latency, a medium, and a long-latency model).
//!
//! Expected shape: RAMSIS with only 3 models still beats Jellyfish+
//! with all models — it "does not rely on many models to achieve high
//! accuracy".

use ramsis_baselines::JellyfishPlus;
use ramsis_bench::harness::{
    constant_load_workers, pct, ramsis_config, ramsis_policy_set, run_scheme, MonitorKind,
};
use ramsis_bench::{ascii_plot, render_table, write_csv, write_json, ExperimentArgs};
use ramsis_profiles::{ModelCatalog, ProfilerConfig, Task, WorkerProfile};
use ramsis_sim::{LatencyMode, RamsisScheme};
use ramsis_workload::Trace;
use serde::Serialize;
use std::time::Duration;

#[derive(Serialize)]
struct Row {
    catalog: String,
    method: String,
    load_qps: f64,
    accuracy: f64,
    violation_rate: f64,
}

fn main() {
    let args = ExperimentArgs::parse();
    let task = Task::ImageClassification;
    let slo_s = args.slos_for(task)[0];
    let workers = args.workers.unwrap_or_else(|| constant_load_workers(task));
    let d = if args.full { 100 } else { 25 };
    let load_step = if args.full { 400 } else { 800 };
    let loads: Vec<f64> = (1..)
        .map(|i| (400 + (i - 1) * load_step) as f64)
        .take_while(|&l| l <= 4_000.0)
        .collect();

    let catalogs = [
        ("full".to_string(), ModelCatalog::torchvision_image()),
        ("3-model".to_string(), ModelCatalog::reduced_image_3()),
    ];

    let mut rows: Vec<Row> = Vec::new();
    for (label, catalog) in &catalogs {
        let profile = WorkerProfile::build(
            catalog,
            Duration::from_secs_f64(slo_s),
            ProfilerConfig::default(),
        );
        let config = ramsis_config(slo_s, workers, d);
        let set = ramsis_policy_set(&args.out_dir, &profile, &loads, &config);
        for &load in &loads {
            let trace = Trace::constant(load, 30.0);
            let seed = 0xF12 ^ load as u64;
            let mut scheme = RamsisScheme::new(set.clone());
            let r = run_scheme(
                &profile,
                workers,
                &trace,
                &mut scheme,
                MonitorKind::Oracle,
                LatencyMode::DeterministicP95,
                seed,
            );
            rows.push(Row {
                catalog: label.clone(),
                method: "RAMSIS".into(),
                load_qps: load,
                accuracy: r.accuracy_per_satisfied_query,
                violation_rate: r.violation_rate,
            });
            let mut scheme = JellyfishPlus::new(&profile, workers);
            let r = run_scheme(
                &profile,
                workers,
                &trace,
                &mut scheme,
                MonitorKind::Oracle,
                LatencyMode::DeterministicP95,
                seed,
            );
            rows.push(Row {
                catalog: label.clone(),
                method: "Jellyfish+".into(),
                load_qps: load,
                accuracy: r.accuracy_per_satisfied_query,
                violation_rate: r.violation_rate,
            });
        }
    }

    println!(
        "\n=== Fig. 12 — model ablation, image, SLO {:.0} ms, {workers} workers ===",
        slo_s * 1e3
    );
    let mut table = Vec::new();
    for &load in &loads {
        let get = |cat: &str, m: &str| {
            rows.iter()
                .find(|r| r.catalog == cat && r.method == m && r.load_qps == load)
                .expect("all combinations ran")
        };
        let rf = get("full", "RAMSIS");
        let r3 = get("3-model", "RAMSIS");
        let jf = get("full", "Jellyfish+");
        let j3 = get("3-model", "Jellyfish+");
        table.push(vec![
            format!("{load}"),
            format!("{:.2}", rf.accuracy),
            format!("{:.2}", r3.accuracy),
            format!("{:.2}", jf.accuracy),
            format!("{:.2}", j3.accuracy),
            pct(rf.violation_rate),
            pct(r3.violation_rate),
        ]);
    }
    let header = [
        "load_qps",
        "RAMSIS_full",
        "RAMSIS_3m",
        "JF+_full",
        "JF+_3m",
        "RAMSIS_full_viol",
        "RAMSIS_3m_viol",
    ];
    println!("{}", render_table(&header, &table));

    // Paper check (§E): with the same model set, RAMSIS always achieves
    // higher accuracy than Jellyfish+.
    for cat in ["full", "3-model"] {
        let mut wins = 0;
        let mut comparable = 0;
        for &load in &loads {
            let r = rows
                .iter()
                .find(|r| r.catalog == cat && r.method == "RAMSIS" && r.load_qps == load);
            let j = rows
                .iter()
                .find(|r| r.catalog == cat && r.method == "Jellyfish+" && r.load_qps == load);
            if let (Some(r), Some(j)) = (r, j) {
                if r.violation_rate < 0.05 && j.violation_rate < 0.05 {
                    comparable += 1;
                    if r.accuracy >= j.accuracy - 1e-9 {
                        wins += 1;
                    }
                }
            }
        }
        println!(
            "{cat} catalog: RAMSIS matches or beats Jellyfish+ at {wins}/{comparable} \
             satisfiable loads (paper: always)"
        );
    }

    let series: Vec<(String, Vec<(f64, f64)>)> = [
        ("RAMSIS full", "full", "RAMSIS"),
        ("J: RAMSIS 3m", "3-model", "RAMSIS"),
        ("M: JF+ full", "full", "Jellyfish+"),
        ("I: JF+ 3m", "3-model", "Jellyfish+"),
    ]
    .iter()
    .map(|&(label, cat, m)| {
        (
            label.to_string(),
            rows.iter()
                .filter(|r| r.catalog == cat && r.method == m && r.violation_rate < 0.05)
                .map(|r| (r.load_qps, r.accuracy))
                .collect(),
        )
    })
    .collect();
    println!("{}", ascii_plot(&series, 64, 12));

    write_json(&args.out_dir, "fig12_fewer_models", &rows);
    write_csv(
        &args.out_dir,
        "fig12_fewer_models",
        &[
            "catalog",
            "method",
            "load_qps",
            "accuracy",
            "violation_rate",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.catalog.clone(),
                    r.method.clone(),
                    format!("{}", r.load_qps),
                    format!("{:.4}", r.accuracy),
                    format!("{:.6}", r.violation_rate),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
