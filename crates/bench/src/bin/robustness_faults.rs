//! Robustness under injected faults: graceful policy degradation vs
//! stale policies and fault-oblivious baselines.
//!
//! Runs the canonical fault schedule ([`ramsis_sim::FaultPlan::canonical`]:
//! worker 0 down over [10 s, 40 s), worker 1 at 2× latency over
//! [15 s, 35 s), a 3× arrival surge over [20 s, 30 s)) against four
//! systems on a constant-load trace, under both crash policies
//! (requeue-to-survivors and drop). See EXPERIMENTS.md
//! "robustness_faults".
//!
//! Expected shape: RAMSIS-degrading strictly beats RAMSIS-stale on
//! miss-or-loss rate; Fixed-fastest is robust but gives up accuracy
//! everywhere; violation rates outside fault windows stay near zero for
//! the degradation-aware scheme.

use ramsis_bench::robustness::{run_robustness, RobustnessConfig, RobustnessOutcome};
use ramsis_bench::{build_profile, render_table, write_csv, write_json, ExperimentArgs};
use ramsis_profiles::Task;
use ramsis_sim::CrashPolicy;

fn main() {
    let args = ExperimentArgs::parse();
    let task = args.task.unwrap_or(Task::ImageClassification);
    let slo_s = args.slo_ms.map_or(0.15, |ms| ms as f64 / 1e3);
    let mut cfg = RobustnessConfig {
        slo_s,
        d: if args.full { 25 } else { 10 },
        ..RobustnessConfig::default()
    };
    if let Some(w) = args.workers {
        assert!(w >= 2, "the canonical schedule needs >= 2 workers");
        cfg.workers = w;
        cfg.min_workers = (w / 2).max(1);
    }
    if let Some(load) = args.load {
        cfg.load_qps = load;
    }
    let profile = build_profile(task, cfg.slo_s);

    let mut all: Vec<RobustnessOutcome> = Vec::new();
    for policy in [CrashPolicy::RequeueToSurvivors, CrashPolicy::Drop] {
        cfg.crash_policy = policy;
        println!(
            "\n=== robustness_faults — {} classification, SLO {:.0} ms, {} workers, \
             {:.0} QPS, crash policy {policy:?} ===",
            task.name(),
            cfg.slo_s * 1e3,
            cfg.workers,
            cfg.load_qps,
        );
        let outcomes = run_robustness(&profile, &cfg);
        let rows: Vec<Vec<String>> = outcomes
            .iter()
            .map(|o| {
                vec![
                    o.method.clone(),
                    format!("{:.4}%", o.miss_or_loss_rate * 100.0),
                    format!("{:.4}%", o.violation_rate_in_fault * 100.0),
                    format!("{:.4}%", o.violation_rate_outside_fault * 100.0),
                    format!("{:.2}%", o.report.accuracy_per_satisfied_query),
                    format!("{}", o.report.dropped),
                    format!("{:.1}", o.report.faults.downtime_s),
                    o.fallback_decisions
                        .map_or_else(|| "-".to_string(), |n| n.to_string()),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &[
                    "method",
                    "miss-or-loss",
                    "viol (fault)",
                    "viol (clear)",
                    "accuracy",
                    "dropped",
                    "downtime s",
                    "fallbacks",
                ],
                &rows,
            )
        );
        let suffix = match policy {
            CrashPolicy::RequeueToSurvivors => "requeue",
            CrashPolicy::Drop => "drop",
        };
        write_csv(
            &args.out_dir,
            &format!("robustness_faults_{}_{suffix}", task.name()),
            &[
                "method",
                "miss_or_loss_rate",
                "violation_rate_in_fault",
                "violation_rate_outside_fault",
                "accuracy",
                "dropped",
                "downtime_s",
                "fallback_decisions",
            ],
            &rows,
        );
        all.extend(outcomes);
    }
    write_json(
        &args.out_dir,
        &format!("robustness_faults_{}", task.name()),
        &all,
    );

    // The headline claim, checked on the requeue half of the sweep.
    let degrading = &all[0];
    let stale = &all[1];
    assert_eq!(degrading.method, "RAMSIS-degrading");
    if degrading.miss_or_loss_rate < stale.miss_or_loss_rate {
        println!(
            "\nOK: degradation lowers miss-or-loss {:.4}% -> {:.4}%",
            stale.miss_or_loss_rate * 100.0,
            degrading.miss_or_loss_rate * 100.0
        );
    } else {
        println!(
            "\nWARNING: degradation did not help ({:.4}% vs {:.4}%)",
            degrading.miss_or_loss_rate * 100.0,
            stale.miss_or_loss_rate * 100.0
        );
    }
}
