//! Performance baseline: the repo's `BENCH_*.json` perf-regression
//! artifact (DESIGN.md §10, EXPERIMENTS.md "perf_baseline").
//!
//! Runs the pinned scenario matrix (constant load, surge + faults,
//! adaptive drift) with the engine's self-profiler attached, times both
//! exact MDP solvers on a pinned policy MDP, and writes everything to
//! `results/BENCH_perf.json`. The run itself asserts the
//! profiling-off contract: the constant-load scenario must produce an
//! identical report with the profiler disabled.
//!
//! ```text
//! perf_baseline [--smoke] [--out DIR]      # run + write BENCH_perf.json
//! perf_baseline --validate PATH            # schema-check an existing file
//! ```
//!
//! `--smoke` shrinks trace lengths for CI; the scenario structure and
//! schema are unchanged. `--validate` exits non-zero when the file does
//! not parse as the current schema or fails its structural invariants.

use std::path::PathBuf;
use std::process::exit;

use ramsis_bench::{render_table, write_json, BenchPerf, PerfBaselineConfig};

fn validate_file(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: read {path}: {e}");
            return 1;
        }
    };
    let bench: BenchPerf = match serde_json::from_str(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {path} does not parse as BENCH_perf schema: {e}");
            return 1;
        }
    };
    if let Err(e) = bench.validate() {
        eprintln!("error: {path} violates the BENCH_perf schema: {e}");
        return 1;
    }
    println!(
        "{path}: valid (schema v{}, {} scenarios, {} solver profiles{})",
        bench.schema_version,
        bench.scenarios.len(),
        bench.solvers.len(),
        if bench.smoke { ", smoke" } else { "" }
    );
    0
}

fn main() {
    let mut smoke = false;
    let mut out_dir = PathBuf::from("results");
    let mut validate: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_dir = PathBuf::from(args.next().expect("--out requires a directory")),
            "--validate" => {
                validate = Some(args.next().expect("--validate requires a file path"));
            }
            other => {
                eprintln!("error: unknown flag {other:?}");
                eprintln!("usage: perf_baseline [--smoke] [--out DIR] | --validate PATH");
                exit(2);
            }
        }
    }
    if let Some(path) = validate {
        exit(validate_file(&path));
    }

    let cfg = if smoke {
        PerfBaselineConfig::default().smoke()
    } else {
        PerfBaselineConfig::default()
    };
    println!(
        "=== perf_baseline — {} workers, SLO {:.0} ms, {:.0} QPS, seed {:#x}{} ===",
        cfg.workers,
        cfg.slo_s * 1e3,
        cfg.load_qps,
        cfg.seed,
        if smoke { " (smoke)" } else { "" }
    );

    let bench = ramsis_bench::run_perf_baseline(&cfg, smoke);
    bench.validate().expect("fresh document validates");

    let rows: Vec<Vec<String>> = bench
        .scenarios
        .iter()
        .map(|s| {
            vec![
                s.scenario.clone(),
                s.arrivals.to_string(),
                format!("{:.1}", s.wall_ns as f64 / 1e6),
                s.events_processed.to_string(),
                format!("{:.2}", s.events_per_sec / 1e6),
                s.peak_heap_depth.to_string(),
                s.peak_queue_depth.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "scenario",
                "arrivals",
                "wall ms",
                "events",
                "M events/s",
                "peak heap",
                "peak queue",
            ],
            &rows,
        )
    );
    let solver_rows: Vec<Vec<String>> = bench
        .solvers
        .iter()
        .map(|sp| {
            vec![
                sp.method.clone(),
                sp.sweeps.to_string(),
                sp.states_touched.to_string(),
                format!("{:.1}", sp.total_s * 1e3),
                format!("{:.3}", sp.mean_sweep_s * 1e3),
                format!("{:.2e}", sp.final_residual),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "solver",
                "sweeps",
                "states",
                "total ms",
                "mean sweep ms",
                "residual",
            ],
            &solver_rows,
        )
    );

    write_json(&out_dir, "BENCH_perf", &bench);
    println!("OK: profiling-off bit-identity held; schema valid");
}
