//! Checkpoint overhead: the cost of durable runs at the default cadence.
//!
//! Runs the same seeded constant-load simulation three ways — plain
//! (checkpointing disabled, timed for the baseline), capture-only
//! (snapshots built at the default 100 000-event cadence and
//! discarded), and fully durable (a [`FileRecorder`] fsync-ing each
//! snapshot to disk) — with the self-profiler attached to the durable
//! variants. The engine attributes snapshot capture and the recorder's
//! write to the dedicated `checkpoint` phase, so the overhead ratio is
//! `checkpoint_phase_time / plain_wall_time`: the numerator is measured
//! directly inside one run rather than differenced between two runs,
//! which keeps shared-container clock drift out of the gate.
//!
//! Two contracts under test (DESIGN.md §12): every variant's report
//! must be byte-identical (checkpointing never perturbs the
//! simulation), and the engine-side capture cost must stay under 3% of
//! the run. The fsync-durable tier is reported for capacity planning
//! but not gated: at several million events per second the engine
//! burns through a 100k-event interval in ~15 ms, so a
//! millisecond-scale fsync is disk latency, not engine overhead, and
//! varies with the filesystem. Results land in
//! `results/BENCH_checkpoint.json` alongside `BENCH_perf.json`.
//!
//! ```text
//! checkpoint_overhead [--smoke] [--out DIR]
//! ```
//!
//! `--smoke` shrinks the trace for CI and loosens the capture gate
//! (a smoke run takes so few snapshots that fixed per-snapshot cost is
//! amortized over far fewer events); the byte-identity assertions are
//! unchanged.

use std::path::PathBuf;
use std::process::exit;
use std::time::Instant;

use ramsis_baselines::JellyfishPlus;
use ramsis_bench::harness::{build_profile, constant_load_workers};
use ramsis_bench::{render_table, write_json};
use ramsis_profiles::Task;
use ramsis_sim::{
    CheckpointPolicy, CheckpointRecorder, EngineSnapshot, FaultPlan, FileRecorder, Profiler,
    Simulation, SimulationConfig, SimulationReport,
};
use ramsis_telemetry::NullSink;
use ramsis_workload::{OracleMonitor, Trace};
use serde::Serialize;

/// The capture-overhead gate: checkpoint-phase time under 3% of the
/// plain run's wall clock.
const FULL_GATE: f64 = 1.03;
/// Smoke gate: a ~45 s trace crosses the cadence once, so one
/// snapshot's fixed cost lands on a run an order of magnitude shorter.
const SMOKE_GATE: f64 = 1.25;

/// Counts cadence points without retaining or persisting anything:
/// isolates the engine-side cost of building a snapshot.
struct DiscardRecorder {
    seen: u64,
}

impl CheckpointRecorder for DiscardRecorder {
    fn record(&mut self, _snapshot: &EngineSnapshot) -> bool {
        self.seen += 1;
        true
    }
}

#[derive(Serialize)]
struct BenchCheckpoint {
    schema_version: u32,
    smoke: bool,
    workers: usize,
    load_qps: f64,
    duration_s: f64,
    reps: usize,
    interval_events: u64,
    events_processed: u64,
    plain_min_s: f64,
    plain_mean_s: f64,
    /// Median checkpoint-phase time with snapshots discarded, seconds.
    capture_phase_s: f64,
    /// Median checkpoint-phase time with fsync-to-disk, seconds.
    durable_phase_s: f64,
    /// `1 + capture_phase / plain_min` — the gated ratio.
    capture_overhead: f64,
    capture_gate: f64,
    /// `1 + durable_phase / plain_min`, informational.
    durable_overhead: f64,
    snapshots_per_run: u64,
    snapshot_bytes: u64,
    events_at_last_snapshot: u64,
    arrivals: u64,
}

fn main() {
    let mut smoke = false;
    let mut out_dir = PathBuf::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_dir = PathBuf::from(args.next().expect("--out requires a directory")),
            other => {
                eprintln!("error: unknown flag {other:?}");
                eprintln!("usage: checkpoint_overhead [--smoke] [--out DIR]");
                exit(2);
            }
        }
    }

    let task = Task::ImageClassification;
    let slo_s = task.paper_slos()[0];
    let workers = constant_load_workers(task);
    let load = 1_500.0;
    // Smoke still runs at the default cadence, so it must be long
    // enough to cross 100k engine events at least once (~45 s at
    // 1 500 QPS).
    let (duration_s, reps) = if smoke { (45.0, 3) } else { (300.0, 5) };
    let interval = CheckpointPolicy::default().every_events;

    let profile = build_profile(task, slo_s);
    let trace = Trace::constant(load, duration_s);
    let plan = FaultPlan::none();
    let base_config = SimulationConfig::new(workers, slo_s).seeded(0xC4C4);

    let ckpt_dir = std::env::temp_dir().join(format!("ramsis-ckpt-bench-{}", std::process::id()));
    std::fs::create_dir_all(&ckpt_dir).expect("create checkpoint scratch dir");
    let ckpt_path = ckpt_dir.join("snapshot.json");

    let plain = || -> (f64, SimulationReport) {
        let sim = Simulation::new(&profile, base_config).expect("valid simulation config");
        let mut scheme = JellyfishPlus::new(&profile, workers);
        let mut monitor = OracleMonitor::new(trace.clone());
        let start = Instant::now();
        let report = sim
            .run_faulted_traced(&trace, &plan, &mut scheme, &mut monitor, &mut NullSink)
            .expect("empty fault plan always validates");
        (start.elapsed().as_secs_f64(), report)
    };
    // One profiled durable run; the recorder tier is the only variable.
    // Returns (checkpoint-phase seconds, events processed, report).
    let durable = |recorder: &mut dyn CheckpointRecorder| -> (f64, u64, SimulationReport) {
        let config = base_config.with_checkpoints(CheckpointPolicy::every_events(interval));
        let sim = Simulation::new(&profile, config).expect("valid simulation config");
        let mut scheme = JellyfishPlus::new(&profile, workers);
        let mut monitor = OracleMonitor::new(trace.clone());
        let mut prof = Profiler::on();
        let report = sim
            .run_durable_profiled(
                &trace,
                &plan,
                &mut scheme,
                &mut monitor,
                &mut NullSink,
                recorder,
                &mut prof,
            )
            .expect("empty fault plan always validates")
            .expect("no recorder tier stops the run");
        let p = prof.report();
        let ckpt_ns = p
            .phases
            .iter()
            .find(|ph| ph.phase == "checkpoint")
            .map_or(0, |ph| ph.total_ns);
        (ckpt_ns as f64 / 1e9, p.events_processed, report)
    };

    println!(
        "\n=== Checkpoint overhead — {} task, {workers} workers, {load:.0} QPS x \
         {duration_s:.0} s, snapshot every {interval} events, {reps} reps{} ===",
        task.name(),
        if smoke { " (smoke)" } else { "" }
    );

    // One untimed warmup so the first timed rep doesn't pay the cold
    // caches.
    let _ = plain();
    let mut plain_times = Vec::with_capacity(reps);
    let mut capture_phases = Vec::with_capacity(reps);
    let mut durable_phases = Vec::with_capacity(reps);
    let mut reports: Option<(SimulationReport, SimulationReport, SimulationReport)> = None;
    let mut snapshots_per_run = 0;
    let mut events_processed = 0;
    for _ in 0..reps {
        let (pt, pr) = plain();
        let mut discard = DiscardRecorder { seen: 0 };
        let (cs, events, cr) = durable(&mut discard);
        let mut file = FileRecorder::new(&ckpt_path);
        let (ds, _, dr) = durable(&mut file);
        assert_eq!(
            file.written(),
            discard.seen,
            "recorder tiers saw different cadence points: {}",
            file.take_error().unwrap_or_default()
        );
        plain_times.push(pt);
        capture_phases.push(cs);
        durable_phases.push(ds);
        snapshots_per_run = file.written();
        events_processed = events;
        reports.get_or_insert((pr, cr, dr));
    }
    let min = |ts: &[f64]| ts.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = |ts: &[f64]| ts.iter().sum::<f64>() / ts.len() as f64;
    let median = |ts: &[f64]| {
        let mut s = ts.to_vec();
        s.sort_by(f64::total_cmp);
        s[s.len() / 2]
    };
    let plain_min = min(&plain_times);
    let capture_phase_s = median(&capture_phases);
    let durable_phase_s = median(&durable_phases);
    let capture_overhead = 1.0 + capture_phase_s / plain_min;
    let durable_overhead = 1.0 + durable_phase_s / plain_min;
    let gate = if smoke { SMOKE_GATE } else { FULL_GATE };

    let (plain_report, capture_report, durable_report) = reports.expect("at least one rep ran");
    let plain_json = serde_json::to_string(&plain_report).expect("report serializes");
    for (tier, report) in [("capture", &capture_report), ("durable", &durable_report)] {
        assert_eq!(
            plain_json,
            serde_json::to_string(report).expect("report serializes"),
            "{tier} run diverged from the plain run — checkpointing must never perturb \
             the simulation"
        );
    }
    assert!(
        snapshots_per_run >= 1,
        "run too short to checkpoint: no snapshot at the {interval}-event cadence"
    );

    let last_snapshot = EngineSnapshot::read(&ckpt_path).expect("last written snapshot reads back");
    let snapshot_bytes = std::fs::metadata(&ckpt_path)
        .expect("snapshot file exists")
        .len();
    std::fs::remove_dir_all(&ckpt_dir).ok();

    let doc = BenchCheckpoint {
        schema_version: 1,
        smoke,
        workers,
        load_qps: load,
        duration_s,
        reps,
        interval_events: interval,
        events_processed,
        plain_min_s: plain_min,
        plain_mean_s: mean(&plain_times),
        capture_phase_s,
        durable_phase_s,
        capture_overhead,
        capture_gate: gate,
        durable_overhead,
        snapshots_per_run,
        snapshot_bytes,
        events_at_last_snapshot: last_snapshot.meta.events_done,
        arrivals: plain_report.total_arrivals,
    };

    let per_snapshot_us = |phase_s: f64| 1e6 * phase_s / snapshots_per_run as f64;
    let rows = vec![
        vec![
            "plain".to_string(),
            format!("{:.3}", doc.plain_min_s),
            "-".to_string(),
            "-".to_string(),
            "1.00x".to_string(),
        ],
        vec![
            "capture".to_string(),
            format!("{:.3}", doc.plain_min_s + capture_phase_s),
            format!("{:.3}", 1e3 * capture_phase_s),
            format!("{:.0}", per_snapshot_us(capture_phase_s)),
            format!("{capture_overhead:.4}x"),
        ],
        vec![
            "durable (fsync)".to_string(),
            format!("{:.3}", doc.plain_min_s + durable_phase_s),
            format!("{:.3}", 1e3 * durable_phase_s),
            format!("{:.0}", per_snapshot_us(durable_phase_s)),
            format!("{durable_overhead:.4}x"),
        ],
    ];
    println!(
        "{}",
        render_table(
            &["run", "wall_s", "ckpt ms", "us/snapshot", "slowdown"],
            &rows
        )
    );
    println!(
        "{snapshots_per_run} snapshots of {snapshot_bytes} B per run; last at event {} of {} \
         heap events ({} arrivals)",
        doc.events_at_last_snapshot, events_processed, doc.arrivals
    );

    write_json(&out_dir, "BENCH_checkpoint", &doc);

    assert!(
        capture_overhead < gate,
        "snapshot capture {capture_overhead:.4}x the plain run — checkpointing every \
         {interval} events must cost <{:.0}% engine-side (median checkpoint-phase time \
         of {reps} reps over min-of-{reps} plain wall)",
        (gate - 1.0) * 100.0
    );
    println!(
        "OK: report byte-identity held; capture overhead {:.2}% < {:.0}% gate \
         (fsync tier {:.2}%, informational)",
        (capture_overhead - 1.0) * 100.0,
        (gate - 1.0) * 100.0,
        (durable_overhead - 1.0) * 100.0
    );
}
