//! Fig. 8: sensitivity to the number of available models (§7.3.2).
//!
//! Low-model-count scenario: the 26-model image catalog (effectively its
//! 9 Pareto models, M = 9). High-model-count: the synthetic catalog of
//! interpolated front models (M ≈ 60). 100 workers, 30-second constant
//! loads, RAMSIS vs ModelSwitching.
//!
//! Expected shape: ModelSwitching improves markedly with the dense model
//! set; RAMSIS barely changes and stays on top — it "emulates a large
//! model set through fine-grained MS&S decisions".

use ramsis_baselines::{profile_response_latency, ModelSwitching};
use ramsis_bench::harness::{
    ms_profiling_loads, pct, ramsis_config, ramsis_policy_set, run_scheme, MonitorKind,
};
use ramsis_bench::{ascii_plot, render_table, write_csv, write_json, ExperimentArgs};
use ramsis_profiles::{ModelCatalog, ProfilerConfig, WorkerProfile};
use ramsis_sim::{LatencyMode, RamsisScheme};
use ramsis_workload::Trace;
use serde::Serialize;
use std::time::Duration;

#[derive(Serialize)]
struct Row {
    catalog: String,
    method: String,
    load_qps: f64,
    accuracy: f64,
    violation_rate: f64,
}

fn main() {
    let args = ExperimentArgs::parse();
    let slo_s = args.slo_ms.map(|ms| ms as f64 / 1e3).unwrap_or(0.15);
    let workers = args.workers.unwrap_or(100);
    let d = if args.full { 100 } else { 25 };
    let load_step = if args.full { 400 } else { 800 };
    let loads: Vec<f64> = (1..)
        .map(|i| (400 + (i - 1) * load_step) as f64)
        .take_while(|&l| l <= 4_000.0)
        .collect();

    let base = ModelCatalog::torchvision_image();
    let dense = ModelCatalog::synthetic_interpolated(&base, 0.5);
    println!(
        "catalogs: 26-model base (9 Pareto, the paper's M=9 scenario) vs \
         {}-model synthetic superset (the paper's M=60 scenario)",
        dense.len()
    );
    let catalogs = [("M=9".to_string(), base), ("dense".to_string(), dense)];

    let mut rows: Vec<Row> = Vec::new();
    for (label, catalog) in &catalogs {
        let profile = WorkerProfile::build(
            catalog,
            Duration::from_secs_f64(slo_s),
            ProfilerConfig::default(),
        );
        let config = ramsis_config(slo_s, workers, d);
        let set = ramsis_policy_set(&args.out_dir, &profile, &loads, &config);
        // The dense catalog's MS table is not cacheable under the shared
        // key scheme (different model set); profile it directly.
        let ms_table = profile_response_latency(
            &profile,
            workers,
            &ms_profiling_loads(args.full),
            if args.full { 10.0 } else { 5.0 },
            0xF18,
        );
        for &load in &loads {
            let trace = Trace::constant(load, 30.0);
            let seed = 0xF18 ^ load as u64;
            let mut scheme = RamsisScheme::new(set.clone());
            let r = run_scheme(
                &profile,
                workers,
                &trace,
                &mut scheme,
                MonitorKind::Oracle,
                LatencyMode::DeterministicP95,
                seed,
            );
            rows.push(Row {
                catalog: label.to_string(),
                method: "RAMSIS".into(),
                load_qps: load,
                accuracy: r.accuracy_per_satisfied_query,
                violation_rate: r.violation_rate,
            });
            let mut scheme = ModelSwitching::new(&profile, ms_table.clone());
            let r = run_scheme(
                &profile,
                workers,
                &trace,
                &mut scheme,
                MonitorKind::Oracle,
                LatencyMode::DeterministicP95,
                seed,
            );
            rows.push(Row {
                catalog: label.to_string(),
                method: "ModelSwitching".into(),
                load_qps: load,
                accuracy: r.accuracy_per_satisfied_query,
                violation_rate: r.violation_rate,
            });
        }
    }

    println!(
        "\n=== Fig. 8 — model-count sensitivity, image, SLO {:.0} ms, {workers} workers ===",
        slo_s * 1e3
    );
    let mut table = Vec::new();
    for &load in &loads {
        let get = |cat: &str, m: &str| {
            rows.iter()
                .find(|r| r.catalog == cat && r.method == m && r.load_qps == load)
                .map(|r| (r.accuracy, r.violation_rate))
                .unwrap_or((f64::NAN, f64::NAN))
        };
        let (a9r, v9r) = get("M=9", "RAMSIS");
        let (a9m, v9m) = get("M=9", "ModelSwitching");
        let (a60r, _) = get("dense", "RAMSIS");
        let (a60m, _) = get("dense", "ModelSwitching");
        table.push(vec![
            format!("{load}"),
            format!("{a9r:.2}"),
            format!("{a60r:.2}"),
            format!("{a9m:.2}"),
            format!("{a60m:.2}"),
            pct(v9r),
            pct(v9m),
        ]);
    }
    let header = [
        "load_qps",
        "RAMSIS_M9",
        "RAMSIS_M59",
        "MS_M9",
        "MS_M59",
        "RAMSIS_M9_viol",
        "MS_M9_viol",
    ];
    println!("{}", render_table(&header, &table));

    // Headline deltas over satisfiable points.
    let avg = |cat: &str, m: &str| {
        let v: Vec<f64> = rows
            .iter()
            .filter(|r| r.catalog == cat && r.method == m && r.violation_rate < 0.05)
            .map(|r| r.accuracy)
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    println!(
        "mean satisfiable accuracy — RAMSIS: M=9 {:.2}%, dense {:.2}% (delta {:+.2}%)",
        avg("M=9", "RAMSIS"),
        avg("dense", "RAMSIS"),
        avg("dense", "RAMSIS") - avg("M=9", "RAMSIS"),
    );
    println!(
        "mean satisfiable accuracy — ModelSwitching: M=9 {:.2}%, dense {:.2}% (delta {:+.2}%)",
        avg("M=9", "ModelSwitching"),
        avg("dense", "ModelSwitching"),
        avg("dense", "ModelSwitching") - avg("M=9", "ModelSwitching"),
    );

    let series: Vec<(String, Vec<(f64, f64)>)> = [
        ("RAMSIS M=9", "M=9", "RAMSIS"),
        ("J: MS M=9", "M=9", "ModelSwitching"),
        ("M: MS dense", "dense", "ModelSwitching"),
    ]
    .iter()
    .map(|&(label, cat, m)| {
        (
            label.to_string(),
            rows.iter()
                .filter(|r| r.catalog == cat && r.method == m && r.violation_rate < 0.05)
                .map(|r| (r.load_qps, r.accuracy))
                .collect(),
        )
    })
    .collect();
    println!("{}", ascii_plot(&series, 64, 12));

    write_json(&args.out_dir, "fig8_many_models", &rows);
    write_csv(
        &args.out_dir,
        "fig8_many_models",
        &[
            "catalog",
            "method",
            "load_qps",
            "accuracy",
            "violation_rate",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.catalog.clone(),
                    r.method.clone(),
                    format!("{}", r.load_qps),
                    format!("{:.4}", r.accuracy),
                    format!("{:.6}", r.violation_rate),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
