//! Telemetry scalability baseline: the repo's `BENCH_telemetry.json`
//! artifact (DESIGN.md §15, EXPERIMENTS.md "telemetry_scale").
//!
//! Replays a canonical seeded event stream through the JSONL, binary,
//! and 1%-sampled-binary sinks, measures whole-engine overhead of
//! sampled tracing vs tracing-off, checks the sampling identity
//! invariants, and gates the two scalability contracts:
//!
//! - binary sink events/sec ≥ 3x the JSONL sink's
//! - 1% sampling ≤ 1% engine overhead vs tracing-off, measured in the
//!   serving-time frame (extra wall clock over the simulated serving
//!   duration) with a per-event nanosecond ceiling as the absolute
//!   regression guard; the raw DES-wall ratio is recorded ungated —
//!   the simulator retires events in under 100 ns, so a fractional
//!   gate against its wall clock would measure the simulator's speed,
//!   not the telemetry's cost (see `decision_overhead` for the same
//!   argument)
//!
//! ```text
//! telemetry_scale [--smoke] [--out DIR]    # run + write BENCH_telemetry.json
//! telemetry_scale --validate PATH          # schema-check an existing file
//! ```

use std::path::PathBuf;
use std::process::exit;

use ramsis_bench::{
    render_table, run_telemetry_scale, write_json, BenchTelemetry, TelemetryScaleConfig,
    BIN_SPEEDUP_GATE, SAMPLED_NS_GATE, SAMPLED_OVERHEAD_GATE,
};

/// Per-event ceiling multiplier in smoke mode: a CI smoke rep lasts
/// milliseconds, where one scheduler preemption skews the per-event
/// attribution. The full run uses the strict gate.
const SMOKE_NS_MARGIN: f64 = 2.0;

fn validate_file(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: read {path}: {e}");
            return 1;
        }
    };
    let bench: BenchTelemetry = match serde_json::from_str(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {path} does not parse as BENCH_telemetry schema: {e}");
            return 1;
        }
    };
    if let Err(e) = bench.validate() {
        eprintln!("error: {path} violates the BENCH_telemetry schema: {e}");
        return 1;
    }
    println!(
        "{path}: valid (schema v{}, {} stream events, bin {:.1}x jsonl, \
         sampled overhead {:+.2}%{})",
        bench.schema_version,
        bench.stream_events,
        bench.bin_speedup_vs_jsonl,
        bench.sampled_engine_overhead * 100.0,
        if bench.smoke { ", smoke" } else { "" }
    );
    0
}

fn main() {
    let mut smoke = false;
    let mut out_dir = PathBuf::from("results");
    let mut validate: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_dir = PathBuf::from(args.next().expect("--out requires a directory")),
            "--validate" => {
                validate = Some(args.next().expect("--validate requires a file path"));
            }
            other => {
                eprintln!("error: unknown flag {other:?}");
                eprintln!("usage: telemetry_scale [--smoke] [--out DIR] | --validate PATH");
                exit(2);
            }
        }
    }
    if let Some(path) = validate {
        exit(validate_file(&path));
    }

    let cfg = if smoke {
        TelemetryScaleConfig::default().smoke()
    } else {
        TelemetryScaleConfig::default()
    };
    println!(
        "=== telemetry_scale — {} workers, {:.0} QPS x {:.0} s, rate {}, seed {:#x}{} ===",
        cfg.workers,
        cfg.load_qps,
        cfg.duration_s,
        cfg.sample_rate,
        cfg.seed,
        if smoke { " (smoke)" } else { "" }
    );

    let bench = run_telemetry_scale(&cfg, smoke);
    bench.validate().expect("fresh document validates");

    let rows: Vec<Vec<String>> = bench
        .sink_tiers
        .iter()
        .map(|t| {
            vec![
                t.tier.clone(),
                format!("{:.4}", t.wall_min_s),
                t.events_out.to_string(),
                format!("{:.2}", t.bytes as f64 / 1e6),
                format!("{:.2}", t.events_per_sec / 1e6),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["sink", "min_s", "events out", "MB", "M events/s"], &rows)
    );
    let rows: Vec<Vec<String>> = bench
        .engine_tiers
        .iter()
        .map(|t| {
            vec![
                t.tier.clone(),
                format!("{:.4}", t.wall_min_s),
                format!("{:+.2}%", t.overhead_vs_off * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["engine", "min_s", "overhead vs off"], &rows)
    );

    write_json(&out_dir, "BENCH_telemetry", &bench);

    assert!(
        bench.bin_speedup_vs_jsonl >= BIN_SPEEDUP_GATE,
        "binary sink only {:.2}x the JSONL sink's events/sec (gate ≥ {BIN_SPEEDUP_GATE}x)",
        bench.bin_speedup_vs_jsonl
    );
    assert!(
        bench.sampled_engine_overhead <= SAMPLED_OVERHEAD_GATE,
        "1% sampling costs {:.3}% of serving time vs tracing-off (budget {:.1}%)",
        bench.sampled_engine_overhead * 100.0,
        SAMPLED_OVERHEAD_GATE * 100.0
    );
    let ns_gate = SAMPLED_NS_GATE * if smoke { SMOKE_NS_MARGIN } else { 1.0 };
    assert!(
        bench.sampled_ns_per_event <= ns_gate,
        "sampled tracing costs {:.0} ns per event (gate ≤ {ns_gate:.0} ns)",
        bench.sampled_ns_per_event
    );
    println!(
        "OK: bin {:.1}x jsonl (gate {BIN_SPEEDUP_GATE}x); sampled overhead {:.3}% of \
         serving time (budget {:.1}%), {:.0} ns/event (gate {ns_gate:.0}), DES wall \
         {:+.1}% recorded ungated; report + sampling-off identity held",
        bench.bin_speedup_vs_jsonl,
        bench.sampled_engine_overhead * 100.0,
        SAMPLED_OVERHEAD_GATE * 100.0,
        bench.sampled_ns_per_event,
        bench.sampled_des_overhead * 100.0
    );
}
