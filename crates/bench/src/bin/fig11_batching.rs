//! Fig. 11 (appendix §D): maximal versus variable batching.
//!
//! Expected shape: near-identical accuracy and violation rates (§4.3.2:
//! variable-batching policies select the maximum batch in 80% of
//! decisions anyway), with variable batching costing far more policy-
//! generation time (also visible in Table 2).

use ramsis_bench::harness::{
    build_profile, constant_load_workers, pct, ramsis_policy_set, run_scheme, MonitorKind,
};
use ramsis_bench::{render_table, write_csv, write_json, ExperimentArgs};
use ramsis_core::{Batching, Discretization, PolicyConfig};
use ramsis_profiles::Task;
use ramsis_sim::{LatencyMode, RamsisScheme};
use ramsis_workload::Trace;
use serde::Serialize;
use std::time::Duration;

#[derive(Serialize)]
struct Row {
    batching: String,
    load_qps: f64,
    accuracy: f64,
    violation_rate: f64,
    mean_batch: f64,
    generation_seconds: f64,
}

fn main() {
    let args = ExperimentArgs::parse();
    let task = args.task.unwrap_or(Task::ImageClassification);
    let slo_s = args.slos_for(task)[0];
    let workers = args.workers.unwrap_or_else(|| constant_load_workers(task));
    let d = if args.full { 100 } else { 20 };
    let load_step = if args.full { 400 } else { 800 };
    let loads: Vec<f64> = (1..)
        .map(|i| (400 + (i - 1) * load_step) as f64)
        .take_while(|&l| l <= 4_000.0)
        .collect();
    let profile = build_profile(task, slo_s);

    let mut rows: Vec<Row> = Vec::new();
    for (label, batching) in [
        ("maximal", Batching::Maximal),
        ("variable", Batching::Variable),
    ] {
        let config = PolicyConfig::builder(Duration::from_secs_f64(slo_s))
            .workers(workers)
            .discretization(Discretization::fixed_length(d))
            .batching(batching)
            .build();
        let set = ramsis_policy_set(&args.out_dir, &profile, &loads, &config);
        let gen_time: f64 = set.policies().iter().map(|p| p.generation_seconds).sum();
        for &load in &loads {
            let trace = Trace::constant(load, 30.0);
            let mut scheme = RamsisScheme::new(set.clone());
            let r = run_scheme(
                &profile,
                workers,
                &trace,
                &mut scheme,
                MonitorKind::Oracle,
                LatencyMode::DeterministicP95,
                0xF11 ^ load as u64,
            );
            rows.push(Row {
                batching: label.to_string(),
                load_qps: load,
                accuracy: r.accuracy_per_satisfied_query,
                violation_rate: r.violation_rate,
                mean_batch: r.mean_batch,
                generation_seconds: gen_time,
            });
        }
    }

    println!(
        "\n=== Fig. 11 — batching strategies, {} task, SLO {:.0} ms, {workers} workers ===",
        task.name(),
        slo_s * 1e3
    );
    let mut table = Vec::new();
    for &load in &loads {
        let get = |label: &str| {
            rows.iter()
                .find(|r| r.batching == label && r.load_qps == load)
                .expect("all combinations ran")
        };
        let m = get("maximal");
        let v = get("variable");
        table.push(vec![
            format!("{load}"),
            format!("{:.2}", m.accuracy),
            format!("{:.2}", v.accuracy),
            pct(m.violation_rate),
            pct(v.violation_rate),
            format!("{:.2}", m.mean_batch),
            format!("{:.2}", v.mean_batch),
        ]);
    }
    let header = [
        "load_qps",
        "max_acc",
        "var_acc",
        "max_viol",
        "var_viol",
        "max_meanbatch",
        "var_meanbatch",
    ];
    println!("{}", render_table(&header, &table));

    let gen = |label: &str| {
        rows.iter()
            .find(|r| r.batching == label)
            .map(|r| r.generation_seconds)
            .unwrap_or(0.0)
    };
    println!(
        "policy-set generation time: maximal {:.2}s, variable {:.2}s ({:.1}x)",
        gen("maximal"),
        gen("variable"),
        gen("variable") / gen("maximal").max(1e-9)
    );
    let max_gap = loads
        .iter()
        .filter_map(|&l| {
            let m = rows
                .iter()
                .find(|r| r.batching == "maximal" && r.load_qps == l)?;
            let v = rows
                .iter()
                .find(|r| r.batching == "variable" && r.load_qps == l)?;
            (m.violation_rate < 0.05 && v.violation_rate < 0.05)
                .then(|| (m.accuracy - v.accuracy).abs())
        })
        .fold(0.0f64, f64::max);
    println!("largest satisfiable accuracy gap: {max_gap:.2}% (paper: negligible)");

    write_json(&args.out_dir, "fig11_batching", &rows);
    write_csv(
        &args.out_dir,
        "fig11_batching",
        &[
            "batching",
            "load_qps",
            "accuracy",
            "violation_rate",
            "mean_batch",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.batching.clone(),
                    format!("{}", r.load_qps),
                    format!("{:.4}", r.accuracy),
                    format!("{:.6}", r.violation_rate),
                    format!("{:.3}", r.mean_batch),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
