//! Request-level resilience under a straggler + surge: timeouts,
//! retry/backoff, hedged dispatch, and admission control vs the same
//! seed with the layer disabled.
//!
//! Worker 0 runs 12× slower over [5 s, 30 s) while offered load surges
//! 2.5× over [10 s, 25 s); the fixed-fastest scheme round-robins
//! arrivals, so a quarter of dispatches land on the straggler and blow
//! the SLO unless timeouts/retries/hedges rescue them. See
//! EXPERIMENTS.md "resilience_surge".
//!
//! Expected shape: the resilient run strictly lowers the miss-or-loss
//! rate (violations + drops over arrivals); the process exits non-zero
//! if it does not, making the improvement direction a CI-checkable
//! claim.

use ramsis_bench::resilience::{
    run_resilience_surge, ResilienceSurgeConfig, ResilienceSurgeOutcome,
};
use ramsis_bench::{build_profile, render_table, write_csv, write_json, ExperimentArgs};
use ramsis_profiles::Task;

fn main() {
    let args = ExperimentArgs::parse();
    let task = args.task.unwrap_or(Task::ImageClassification);
    let mut cfg = ResilienceSurgeConfig {
        slo_s: args.slo_ms.map_or(0.15, |ms| ms as f64 / 1e3),
        ..ResilienceSurgeConfig::default()
    };
    if let Some(w) = args.workers {
        assert!(w >= 2, "hedges and retries need >= 2 workers");
        cfg.workers = w;
    }
    if let Some(load) = args.load {
        cfg.load_qps = load;
    }
    let profile = build_profile(task, cfg.slo_s);

    println!(
        "=== resilience_surge — {} classification, SLO {:.0} ms, {} workers, {:.0} QPS, \
         worker 0 at {:.0}x over [5 s, 30 s), {:.1}x surge over [10 s, 25 s) ===",
        task.name(),
        cfg.slo_s * 1e3,
        cfg.workers,
        cfg.load_qps,
        cfg.slowdown_factor,
        cfg.surge_factor,
    );
    let outcomes: Vec<ResilienceSurgeOutcome> = run_resilience_surge(&profile, &cfg);
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            let rs = &o.report.resilience;
            vec![
                o.method.clone(),
                format!("{:.4}%", o.miss_or_loss_rate * 100.0),
                format!("{:.4}%", o.violation_rate * 100.0),
                format!("{}", o.report.dropped),
                format!("{}", rs.timeouts),
                format!("{}", rs.retries),
                format!("{}", rs.hedges_issued),
                format!("{}", rs.hedge_wins),
                format!("{}", rs.admission_shed),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "method",
                "miss-or-loss",
                "viol rate",
                "dropped",
                "timeouts",
                "retries",
                "hedges",
                "hedge wins",
                "adm shed",
            ],
            &rows,
        )
    );
    write_csv(
        &args.out_dir,
        &format!("resilience_surge_{}", task.name()),
        &[
            "method",
            "miss_or_loss_rate",
            "violation_rate",
            "dropped",
            "timeouts",
            "retries",
            "hedges_issued",
            "hedge_wins",
            "admission_shed",
        ],
        &rows,
    );
    write_json(
        &args.out_dir,
        &format!("resilience_surge_{}", task.name()),
        &outcomes,
    );

    // The headline claim — the improvement direction is an assertion,
    // not a narration.
    let baseline = &outcomes[0];
    let resilient = &outcomes[1];
    assert!(
        resilient.miss_or_loss_rate < baseline.miss_or_loss_rate,
        "resilience must lower miss-or-loss: resilient {:.4}% vs baseline {:.4}%",
        resilient.miss_or_loss_rate * 100.0,
        baseline.miss_or_loss_rate * 100.0
    );
    println!(
        "\nOK: resilience lowers miss-or-loss {:.4}% -> {:.4}%",
        baseline.miss_or_loss_rate * 100.0,
        resilient.miss_or_loss_rate * 100.0
    );
}
