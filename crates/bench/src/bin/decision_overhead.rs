//! Decision-provenance overhead: the cost of recording every routing
//! decision.
//!
//! Runs the same seeded constant-load simulation three ways — plain
//! (no provenance, timed for the baseline), recording-off (the
//! [`NullDecisionSink`] default: every emission site costs one
//! predictable branch), and recording-on (an in-memory
//! [`VecDecisionSink`] capturing every
//! [`ramsis_telemetry::DecisionRecord`]) — with the
//! self-profiler attached to the provenance variants. The engine
//! attributes record construction to the dedicated `decision` phase,
//! so the gated ratio is `decision_phase_time / plain_wall_time`,
//! measured inside one run rather than differenced between two.
//!
//! Three contracts under test (DESIGN.md §13): every variant's report
//! must be byte-identical (provenance never perturbs the simulation —
//! the off-by-default tier is additionally *bit*-identical by
//! construction); the off-by-default tier's decision-phase cost must
//! stay under 3% of the plain run (the subsystem is free unless asked
//! for); and recording-on must stay under an absolute per-record
//! construction ceiling. Recording is *not* gated as a run fraction:
//! a record fires per dispatch decision (~0.4 per heap event), so its
//! cost scales with the run itself and a fractional gate would gate
//! the scenario, not the subsystem — the honest unit is ns/record.
//! A JSONL-to-disk tier is reported for capacity planning but not
//! gated: serialization-to-file cost varies with the filesystem.
//! Results land in `results/BENCH_decisions.json`.
//!
//! ```text
//! decision_overhead [--smoke] [--out DIR]
//! ```
//!
//! `--smoke` shrinks the trace for CI and loosens the gate (short runs
//! amortize fixed per-run cost over far fewer decisions); the
//! byte-identity assertions are unchanged.

use std::path::PathBuf;
use std::process::exit;
use std::time::Instant;

use ramsis_baselines::JellyfishPlus;
use ramsis_bench::harness::{build_profile, constant_load_workers};
use ramsis_bench::{render_table, write_json};
use ramsis_profiles::Task;
use ramsis_sim::{FaultPlan, Profiler, Simulation, SimulationConfig, SimulationReport};
use ramsis_telemetry::{
    DecisionSink, JsonlDecisionSink, NullDecisionSink, NullSink, VecDecisionSink,
};
use ramsis_workload::{OracleMonitor, Trace};
use serde::Serialize;

/// The off-by-default gate: with the disabled sink, decision-phase
/// time under 3% of the plain run.
const FULL_GATE: f64 = 1.03;
/// Smoke variant of the disabled gate: a short run gives the ~0-cost
/// branch less wall clock to amortize against timer granularity.
const SMOKE_GATE: f64 = 1.10;
/// Recording-on ceiling: nanoseconds to build and capture one record
/// (in-memory sink), median of reps.
const RECORD_NS_GATE: f64 = 2_000.0;
/// Smoke variant of the per-record ceiling (shared CI boxes jitter).
const SMOKE_RECORD_NS_GATE: f64 = 4_000.0;

#[derive(Serialize)]
struct BenchDecisions {
    schema_version: u32,
    smoke: bool,
    workers: usize,
    load_qps: f64,
    duration_s: f64,
    reps: usize,
    events_processed: u64,
    records_per_run: u64,
    plain_min_s: f64,
    plain_mean_s: f64,
    /// Median decision-phase time with the disabled sink, seconds
    /// (the off-by-default branch cost; expected ~0).
    disabled_phase_s: f64,
    /// Median decision-phase time with the in-memory sink, seconds.
    recording_phase_s: f64,
    /// Median decision-phase time with JSONL-to-disk, seconds.
    jsonl_phase_s: f64,
    /// `1 + disabled_phase / plain_min` — the gated off-by-default
    /// ratio.
    disabled_overhead: f64,
    disabled_gate: f64,
    /// Median per-record construction cost with the in-memory sink,
    /// nanoseconds — the gated recording quantity.
    record_ns: f64,
    record_ns_gate: f64,
    /// `1 + recording_phase / plain_min`, informational (recording
    /// fires per dispatch, so this scales with the scenario).
    recording_overhead: f64,
    /// `1 + jsonl_phase / plain_min`, informational.
    jsonl_overhead: f64,
    arrivals: u64,
}

fn main() {
    let mut smoke = false;
    let mut out_dir = PathBuf::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_dir = PathBuf::from(args.next().expect("--out requires a directory")),
            other => {
                eprintln!("error: unknown flag {other:?}");
                eprintln!("usage: decision_overhead [--smoke] [--out DIR]");
                exit(2);
            }
        }
    }

    let task = Task::ImageClassification;
    let slo_s = task.paper_slos()[0];
    let workers = constant_load_workers(task);
    let load = 1_500.0;
    let (duration_s, reps) = if smoke { (20.0, 3) } else { (120.0, 5) };

    let profile = build_profile(task, slo_s);
    let trace = Trace::constant(load, duration_s);
    let plan = FaultPlan::none();
    let config = SimulationConfig::new(workers, slo_s).seeded(0xDEC1);

    let jsonl_dir = std::env::temp_dir().join(format!("ramsis-dec-bench-{}", std::process::id()));
    std::fs::create_dir_all(&jsonl_dir).expect("create decision-log scratch dir");
    let jsonl_path = jsonl_dir.join("decisions.jsonl");

    let plain = || -> (f64, SimulationReport) {
        let sim = Simulation::new(&profile, config).expect("valid simulation config");
        let mut scheme = JellyfishPlus::new(&profile, workers);
        let mut monitor = OracleMonitor::new(trace.clone());
        let start = Instant::now();
        let report = sim
            .run_faulted_traced(&trace, &plan, &mut scheme, &mut monitor, &mut NullSink)
            .expect("empty fault plan always validates");
        (start.elapsed().as_secs_f64(), report)
    };
    // One profiled run; the decision sink is the only variable.
    // Returns (decision-phase seconds, events processed, report).
    let provenance = |decisions: &mut dyn DecisionSink| -> (f64, u64, SimulationReport) {
        let sim = Simulation::new(&profile, config).expect("valid simulation config");
        let mut scheme = JellyfishPlus::new(&profile, workers);
        let mut monitor = OracleMonitor::new(trace.clone());
        let mut prof = Profiler::on();
        let report = sim
            .run_faulted_traced_decisions_profiled(
                &trace,
                &plan,
                &mut scheme,
                &mut monitor,
                &mut NullSink,
                decisions,
                &mut prof,
            )
            .expect("empty fault plan always validates");
        let p = prof.report();
        let dec_ns = p
            .phases
            .iter()
            .find(|ph| ph.phase == "decision")
            .map_or(0, |ph| ph.total_ns);
        (dec_ns as f64 / 1e9, p.events_processed, report)
    };

    println!(
        "\n=== Decision-provenance overhead — {} task, {workers} workers, {load:.0} QPS x \
         {duration_s:.0} s, {reps} reps{} ===",
        task.name(),
        if smoke { " (smoke)" } else { "" }
    );

    // One untimed warmup so the first timed rep doesn't pay the cold
    // caches.
    let _ = plain();
    let mut plain_times = Vec::with_capacity(reps);
    let mut disabled_phases = Vec::with_capacity(reps);
    let mut recording_phases = Vec::with_capacity(reps);
    let mut jsonl_phases = Vec::with_capacity(reps);
    let mut reports: Option<[SimulationReport; 4]> = None;
    let mut records_per_run = 0u64;
    let mut events_processed = 0u64;
    for _ in 0..reps {
        let (pt, pr) = plain();
        let (os, _, or) = provenance(&mut NullDecisionSink);
        let mut vec_sink = VecDecisionSink::new();
        let (rs, events, rr) = provenance(&mut vec_sink);
        let mut jsonl =
            JsonlDecisionSink::create(&jsonl_path).expect("open decision log in scratch dir");
        let (js, _, jr) = provenance(&mut jsonl);
        assert!(!jsonl.write_failed(), "decision log write failed");
        assert_eq!(
            jsonl.lines(),
            vec_sink.records().len() as u64,
            "sink tiers saw different record counts"
        );
        plain_times.push(pt);
        disabled_phases.push(os);
        recording_phases.push(rs);
        jsonl_phases.push(js);
        records_per_run = vec_sink.records().len() as u64;
        events_processed = events;
        reports.get_or_insert([pr, or, rr, jr]);
    }
    let min = |ts: &[f64]| ts.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = |ts: &[f64]| ts.iter().sum::<f64>() / ts.len() as f64;
    let median = |ts: &[f64]| {
        let mut s = ts.to_vec();
        s.sort_by(f64::total_cmp);
        s[s.len() / 2]
    };
    let plain_min = min(&plain_times);
    let disabled_phase_s = median(&disabled_phases);
    let recording_phase_s = median(&recording_phases);
    let jsonl_phase_s = median(&jsonl_phases);
    let disabled_overhead = 1.0 + disabled_phase_s / plain_min;
    let recording_overhead = 1.0 + recording_phase_s / plain_min;
    let jsonl_overhead = 1.0 + jsonl_phase_s / plain_min;
    let gate = if smoke { SMOKE_GATE } else { FULL_GATE };
    let record_ns_gate = if smoke {
        SMOKE_RECORD_NS_GATE
    } else {
        RECORD_NS_GATE
    };

    let [plain_report, disabled_report, recording_report, jsonl_report] =
        reports.expect("at least one rep ran");
    let plain_json = serde_json::to_string(&plain_report).expect("report serializes");
    for (tier, report) in [
        ("disabled", &disabled_report),
        ("recording", &recording_report),
        ("jsonl", &jsonl_report),
    ] {
        assert_eq!(
            plain_json,
            serde_json::to_string(report).expect("report serializes"),
            "{tier} run diverged from the plain run — decision provenance must never \
             perturb the simulation"
        );
    }
    assert!(records_per_run > 0, "run produced no decision records");
    std::fs::remove_dir_all(&jsonl_dir).ok();
    let record_ns = 1e9 * recording_phase_s / records_per_run as f64;

    let doc = BenchDecisions {
        schema_version: 1,
        smoke,
        workers,
        load_qps: load,
        duration_s,
        reps,
        events_processed,
        records_per_run,
        plain_min_s: plain_min,
        plain_mean_s: mean(&plain_times),
        disabled_phase_s,
        recording_phase_s,
        jsonl_phase_s,
        disabled_overhead,
        disabled_gate: gate,
        record_ns,
        record_ns_gate,
        recording_overhead,
        jsonl_overhead,
        arrivals: plain_report.total_arrivals,
    };

    let per_record_ns = |phase_s: f64| 1e9 * phase_s / records_per_run as f64;
    let rows = vec![
        vec![
            "plain".to_string(),
            format!("{:.3}", doc.plain_min_s),
            "-".to_string(),
            "-".to_string(),
            "1.00x".to_string(),
        ],
        vec![
            "disabled (default)".to_string(),
            format!("{:.3}", doc.plain_min_s + disabled_phase_s),
            format!("{:.3}", 1e3 * disabled_phase_s),
            format!("{:.0}", per_record_ns(disabled_phase_s)),
            format!("{:.4}x", 1.0 + disabled_phase_s / plain_min),
        ],
        vec![
            "recording (memory)".to_string(),
            format!("{:.3}", doc.plain_min_s + recording_phase_s),
            format!("{:.3}", 1e3 * recording_phase_s),
            format!("{:.0}", per_record_ns(recording_phase_s)),
            format!("{recording_overhead:.4}x"),
        ],
        vec![
            "jsonl (disk)".to_string(),
            format!("{:.3}", doc.plain_min_s + jsonl_phase_s),
            format!("{:.3}", 1e3 * jsonl_phase_s),
            format!("{:.0}", per_record_ns(jsonl_phase_s)),
            format!("{jsonl_overhead:.4}x"),
        ],
    ];
    println!(
        "{}",
        render_table(
            &["run", "wall_s", "decision ms", "ns/record", "slowdown"],
            &rows
        )
    );
    println!(
        "{records_per_run} decision records per run over {events_processed} heap events \
         ({} arrivals)",
        doc.arrivals
    );

    write_json(&out_dir, "BENCH_decisions", &doc);

    assert!(
        disabled_overhead < gate,
        "off-by-default decision phase {disabled_overhead:.4}x the plain run — the \
         provenance subsystem must cost <{:.0}% when nothing is recording (median \
         decision-phase time of {reps} reps over min-of-{reps} plain wall)",
        (gate - 1.0) * 100.0
    );
    assert!(
        record_ns < record_ns_gate,
        "decision record construction {record_ns:.0} ns/record — must stay under \
         {record_ns_gate:.0} ns (in-memory sink, median of {reps} reps)"
    );
    println!(
        "OK: report byte-identity held; off-by-default overhead {:.2}% < {:.0}% gate; \
         recording {record_ns:.0} ns/record < {record_ns_gate:.0} ns gate \
         (run slowdown {:.2}x memory / {:.2}x jsonl, informational)",
        (disabled_overhead - 1.0) * 100.0,
        (gate - 1.0) * 100.0,
        recording_overhead,
        jsonl_overhead
    );
}
