//! Fig. 10 (appendix §C): impact of the time-discretization strategy.
//!
//! RAMSIS with FLD `D ∈ {2, 10, 100}` versus model-based discretization
//! (MD), image task, constant loads.
//!
//! Expected shape: accuracy improves with `D` with diminishing returns;
//! `D = 100` matches MD; `D = 2` is noticeably conservative.

use ramsis_bench::harness::{
    build_profile, constant_load_workers, pct, ramsis_policy_set, run_scheme, MonitorKind,
};
use ramsis_bench::{ascii_plot, render_table, write_csv, write_json, ExperimentArgs};
use ramsis_core::{Discretization, PolicyConfig};
use ramsis_profiles::Task;
use ramsis_sim::{LatencyMode, RamsisScheme};
use ramsis_workload::Trace;
use serde::Serialize;
use std::time::Duration;

#[derive(Serialize)]
struct Row {
    strategy: String,
    load_qps: f64,
    accuracy: f64,
    violation_rate: f64,
}

fn main() {
    let args = ExperimentArgs::parse();
    let task = args.task.unwrap_or(Task::ImageClassification);
    let slo_s = args.slos_for(task)[0];
    let workers = args.workers.unwrap_or_else(|| constant_load_workers(task));
    let load_step = if args.full { 400 } else { 800 };
    let loads: Vec<f64> = (1..)
        .map(|i| (400 + (i - 1) * load_step) as f64)
        .take_while(|&l| l <= 4_000.0)
        .collect();
    let profile = build_profile(task, slo_s);

    let strategies: Vec<(String, Discretization)> = vec![
        ("FLD D=2".into(), Discretization::fixed_length(2)),
        ("FLD D=10".into(), Discretization::fixed_length(10)),
        ("FLD D=100".into(), Discretization::fixed_length(100)),
        ("MD".into(), Discretization::ModelBased),
    ];

    let mut rows: Vec<Row> = Vec::new();
    for (label, disc) in &strategies {
        let config = PolicyConfig::builder(Duration::from_secs_f64(slo_s))
            .workers(workers)
            .discretization(*disc)
            .build();
        let set = ramsis_policy_set(&args.out_dir, &profile, &loads, &config);
        for &load in &loads {
            let trace = Trace::constant(load, 30.0);
            let mut scheme = RamsisScheme::new(set.clone());
            let r = run_scheme(
                &profile,
                workers,
                &trace,
                &mut scheme,
                MonitorKind::Oracle,
                LatencyMode::DeterministicP95,
                0xF10 ^ load as u64,
            );
            rows.push(Row {
                strategy: label.clone(),
                load_qps: load,
                accuracy: r.accuracy_per_satisfied_query,
                violation_rate: r.violation_rate,
            });
        }
    }

    println!(
        "\n=== Fig. 10 — time discretization, {} task, SLO {:.0} ms, {workers} workers ===",
        task.name(),
        slo_s * 1e3
    );
    let mut table = Vec::new();
    for &load in &loads {
        let mut row = vec![format!("{load}")];
        for (label, _) in &strategies {
            let r = rows
                .iter()
                .find(|r| &r.strategy == label && r.load_qps == load)
                .expect("all combinations ran");
            row.push(format!("{:.2}", r.accuracy));
            row.push(pct(r.violation_rate));
        }
        table.push(row);
    }
    let header = [
        "load_qps",
        "D=2_acc",
        "D=2_viol",
        "D=10_acc",
        "D=10_viol",
        "D=100_acc",
        "D=100_viol",
        "MD_acc",
        "MD_viol",
    ];
    println!("{}", render_table(&header, &table));

    // Headline: mean satisfiable accuracy per strategy (ordering check).
    let mut summary = Vec::new();
    for (label, _) in &strategies {
        let pts: Vec<f64> = rows
            .iter()
            .filter(|r| &r.strategy == label && r.violation_rate < 0.05)
            .map(|r| r.accuracy)
            .collect();
        let mean = pts.iter().sum::<f64>() / pts.len().max(1) as f64;
        summary.push((label.clone(), mean));
        println!("{label}: mean satisfiable accuracy {mean:.2}%");
    }
    let d100 = summary
        .iter()
        .find(|(l, _)| l == "FLD D=100")
        .map(|&(_, m)| m);
    let md = summary.iter().find(|(l, _)| l == "MD").map(|&(_, m)| m);
    if let (Some(a), Some(b)) = (d100, md) {
        println!("paper check: FLD D=100 within {:.2}% of MD", (a - b).abs());
    }

    let series: Vec<(String, Vec<(f64, f64)>)> = strategies
        .iter()
        .map(|(label, _)| {
            (
                label.clone(),
                rows.iter()
                    .filter(|r| &r.strategy == label && r.violation_rate < 0.05)
                    .map(|r| (r.load_qps, r.accuracy))
                    .collect(),
            )
        })
        .collect();
    println!("{}", ascii_plot(&series, 64, 12));

    write_json(&args.out_dir, "fig10_discretization", &rows);
    write_csv(
        &args.out_dir,
        "fig10_discretization",
        &["strategy", "load_qps", "accuracy", "violation_rate"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.strategy.clone(),
                    format!("{}", r.load_qps),
                    format!("{:.4}", r.accuracy),
                    format!("{:.6}", r.violation_rate),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
