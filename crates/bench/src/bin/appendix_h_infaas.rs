//! Appendix §H: the INFaaS-style selector swept over accuracy targets.
//!
//! INFaaS minimizes cost (latency) subject to accuracy and latency
//! SLOs; adapted to the paper's evaluation by sweeping accuracy targets
//! equal to each model's accuracy. Expected shape: for every target,
//! INFaaS pins the *minimally* accurate qualifying model, so it "performs
//! no better than RAMSIS or the baselines" — its achieved accuracy
//! roughly equals the target while RAMSIS at the same load does better
//! without needing a target at all.

use ramsis_baselines::InfaasStyle;
use ramsis_bench::harness::{
    build_profile, constant_load_workers, pct, ramsis_config, ramsis_policy_set, run_scheme,
    MonitorKind,
};
use ramsis_bench::{render_table, write_csv, write_json, ExperimentArgs};
use ramsis_profiles::Task;
use ramsis_sim::{LatencyMode, RamsisScheme};
use ramsis_workload::Trace;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    accuracy_target: f64,
    load_qps: f64,
    infaas_accuracy: f64,
    infaas_violation: f64,
    ramsis_accuracy: f64,
    ramsis_violation: f64,
}

fn main() {
    let args = ExperimentArgs::parse();
    let task = args.task.unwrap_or(Task::ImageClassification);
    let slo_s = args.slos_for(task)[0];
    let workers = args.workers.unwrap_or_else(|| constant_load_workers(task));
    let d = if args.full { 100 } else { 25 };
    let loads: Vec<f64> = if let Some(l) = args.load {
        vec![l]
    } else {
        vec![800.0, 2_000.0, 3_200.0]
    };
    let profile = build_profile(task, slo_s);
    let config = ramsis_config(slo_s, workers, d);
    let set = ramsis_policy_set(&args.out_dir, &profile, &loads, &config);

    // Accuracy targets: the achievable model accuracies (§H's sweep).
    let targets: Vec<f64> = profile
        .pareto_models()
        .iter()
        .map(|&m| profile.accuracy(m))
        .collect();

    let mut rows: Vec<Row> = Vec::new();
    let mut table = Vec::new();
    for &load in &loads {
        let trace = Trace::constant(load, 30.0);
        let seed = 0xAF ^ load as u64;
        let mut ramsis = RamsisScheme::new(set.clone());
        let r_ramsis = run_scheme(
            &profile,
            workers,
            &trace,
            &mut ramsis,
            MonitorKind::Oracle,
            LatencyMode::DeterministicP95,
            seed,
        );
        for &target in &targets {
            let mut scheme = InfaasStyle::new(&profile, workers, target);
            let r = run_scheme(
                &profile,
                workers,
                &trace,
                &mut scheme,
                MonitorKind::Oracle,
                LatencyMode::DeterministicP95,
                seed,
            );
            table.push(vec![
                format!("{load}"),
                format!("{target:.2}"),
                format!("{:.2}", r.accuracy_per_satisfied_query),
                pct(r.violation_rate),
                format!("{:.2}", r_ramsis.accuracy_per_satisfied_query),
                pct(r_ramsis.violation_rate),
            ]);
            rows.push(Row {
                accuracy_target: target,
                load_qps: load,
                infaas_accuracy: r.accuracy_per_satisfied_query,
                infaas_violation: r.violation_rate,
                ramsis_accuracy: r_ramsis.accuracy_per_satisfied_query,
                ramsis_violation: r_ramsis.violation_rate,
            });
        }
    }

    println!(
        "\n=== Appendix H — INFaaS-style accuracy-target sweep, {} task, SLO {:.0} ms, \
         {workers} workers ===",
        task.name(),
        slo_s * 1e3
    );
    let header = [
        "load_qps",
        "target_%",
        "INFaaS_acc",
        "INFaaS_viol",
        "RAMSIS_acc",
        "RAMSIS_viol",
    ];
    println!("{}", render_table(&header, &table));

    // §H's observation: INFaaS's achieved accuracy tracks the target
    // from below-equal (it minimizes accuracy subject to the target),
    // while RAMSIS needs no target and at least matches the best
    // satisfiable INFaaS configuration.
    let mut tracked = 0;
    let mut total = 0;
    for r in rows.iter().filter(|r| r.infaas_violation < 0.05) {
        total += 1;
        if r.infaas_accuracy <= r.accuracy_target + 3.0 {
            tracked += 1;
        }
    }
    println!(
        "INFaaS achieved accuracy stays near its target in {tracked}/{total} satisfiable runs"
    );
    for &load in &loads {
        let best_infaas = rows
            .iter()
            .filter(|r| r.load_qps == load && r.infaas_violation < 0.05)
            .map(|r| r.infaas_accuracy)
            .fold(f64::NEG_INFINITY, f64::max);
        let ramsis = rows
            .iter()
            .find(|r| r.load_qps == load)
            .map(|r| r.ramsis_accuracy)
            .unwrap_or(f64::NAN);
        println!("load {load}: best satisfiable INFaaS {best_infaas:.2}% vs RAMSIS {ramsis:.2}%");
    }

    write_json(&args.out_dir, "appendix_h_infaas", &rows);
    write_csv(&args.out_dir, "appendix_h_infaas", &header, &table);
}
