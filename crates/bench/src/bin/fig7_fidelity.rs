//! Fig. 7: RAMSIS fidelity — accuracy and violation rate in theoretical
//! expectation (§5.1), in the deterministic-latency simulation, and in
//! the stochastic-latency "prototype implementation" (§7.3.1).
//!
//! Expected shape: expectation lower-bounds accuracy and upper-bounds
//! the violation rate; the implementation does at least as well as the
//! simulation because real invocations usually beat their p95 profile.

use ramsis_bench::harness::{
    build_profile, pct, ramsis_config, ramsis_policy_set, run_scheme, MonitorKind,
};
use ramsis_bench::{render_table, write_csv, write_json, ExperimentArgs};
use ramsis_profiles::Task;
use ramsis_sim::{LatencyMode, RamsisScheme};
use ramsis_workload::Trace;
use serde::Serialize;

#[derive(Serialize)]
struct FidelityRow {
    workers: usize,
    load_qps: f64,
    expected_accuracy: f64,
    sim_accuracy: f64,
    impl_accuracy: f64,
    expected_violation: f64,
    sim_violation: f64,
    impl_violation: f64,
}

fn main() {
    let args = ExperimentArgs::parse();
    let task = args.task.unwrap_or(Task::ImageClassification);
    let slo_s = args.slos_for(task)[0];
    let slo_ms = (slo_s * 1e3).round() as u64;
    let worker_counts: Vec<usize> = args.workers.map(|w| vec![w]).unwrap_or(vec![40, 60, 80]);
    let load_step = if args.full { 400 } else { 800 };
    let d = if args.full { 100 } else { 25 };
    let profile = build_profile(task, slo_s);

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for &workers in &worker_counts {
        let loads: Vec<f64> = (1..)
            .map(|i| (400 + (i - 1) * load_step) as f64)
            .take_while(|&l| l <= 4_000.0)
            .collect();
        let config = ramsis_config(slo_s, workers, d);
        let set = ramsis_policy_set(&args.out_dir, &profile, &loads, &config);
        for &load in &loads {
            let policy = set.select(load);
            let g = *policy.guarantees();
            let trace = Trace::constant(load, 30.0);
            let seed = 0xF07 ^ workers as u64 ^ load as u64;
            let mut sim_scheme = RamsisScheme::new(set.clone());
            let r_sim = run_scheme(
                &profile,
                workers,
                &trace,
                &mut sim_scheme,
                MonitorKind::Oracle,
                LatencyMode::DeterministicP95,
                seed,
            );
            let mut impl_scheme = RamsisScheme::new(set.clone());
            let r_impl = run_scheme(
                &profile,
                workers,
                &trace,
                &mut impl_scheme,
                MonitorKind::Oracle,
                LatencyMode::Stochastic,
                seed,
            );
            table.push(vec![
                workers.to_string(),
                format!("{load}"),
                format!("{:.2}", g.expected_accuracy),
                format!("{:.2}", r_sim.accuracy_per_satisfied_query),
                format!("{:.2}", r_impl.accuracy_per_satisfied_query),
                pct(g.expected_violation_rate),
                pct(r_sim.violation_rate),
                pct(r_impl.violation_rate),
            ]);
            rows.push(FidelityRow {
                workers,
                load_qps: load,
                expected_accuracy: g.expected_accuracy,
                sim_accuracy: r_sim.accuracy_per_satisfied_query,
                impl_accuracy: r_impl.accuracy_per_satisfied_query,
                expected_violation: g.expected_violation_rate,
                sim_violation: r_sim.violation_rate,
                impl_violation: r_impl.violation_rate,
            });
        }
    }

    println!(
        "\n=== Fig. 7 — RAMSIS fidelity, {} classification, SLO {slo_ms} ms ===",
        task.name()
    );
    let header = [
        "workers",
        "load",
        "E[acc]",
        "sim_acc",
        "impl_acc",
        "E[viol]",
        "sim_viol",
        "impl_viol",
    ];
    println!("{}", render_table(&header, &table));

    // The paper's two fidelity claims, checked over the satisfiable
    // region (at overload the expectation deliberately overestimates the
    // violation rate, §7.3.1).
    let satisfiable: Vec<&FidelityRow> = rows.iter().filter(|r| r.sim_violation < 0.05).collect();
    let acc_lower_bound_holds = satisfiable
        .iter()
        .filter(|r| r.sim_accuracy >= r.expected_accuracy - 0.5)
        .count();
    let viol_upper_bound_holds = satisfiable
        .iter()
        .filter(|r| r.sim_violation <= r.expected_violation + 0.005)
        .count();
    let impl_at_least_sim = satisfiable
        .iter()
        .filter(|r| r.impl_accuracy >= r.sim_accuracy - 0.5)
        .count();
    println!(
        "expectation lower-bounds simulated accuracy in {}/{} satisfiable points",
        acc_lower_bound_holds,
        satisfiable.len()
    );
    println!(
        "expectation upper-bounds simulated violation rate in {}/{} satisfiable points",
        viol_upper_bound_holds,
        satisfiable.len()
    );
    println!(
        "implementation accuracy >= simulation accuracy in {}/{} satisfiable points",
        impl_at_least_sim,
        satisfiable.len()
    );

    write_json(&args.out_dir, "fig7_fidelity", &rows);
    write_csv(&args.out_dir, "fig7_fidelity", &header, &table);
}
