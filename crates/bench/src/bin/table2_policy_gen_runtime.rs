//! Table 2: policy-generation runtimes for the time-discretization and
//! batching strategies (§4.2.2).
//!
//! Rows: {MD, FLD D=100} × {variable, max} plus FLD D=10 × max, for the
//! low (9 Pareto models) and high (dense synthetic) model counts.
//!
//! Expected shape: FLD D=10 max << FLD D=100 max < MD max << the
//! variable-batching variants, and the dense model set blowing up MD
//! (the paper's 24-hour timeouts). Absolute numbers will differ from
//! the paper's Python/numba implementation — ours are much faster —
//! but the ordering is the reproducible claim.
//!
//! Quick mode uses the 150 ms SLO and a soft time budget; `--full` uses
//! the paper's 500 ms SLO setting (where `B_w ≈ 29`) and runs every
//! combination.

use ramsis_bench::harness::ramsis_config;
use ramsis_bench::{render_table, write_csv, write_json, ExperimentArgs};
use ramsis_core::{generate_policy, mdp_dimensions, Batching, Discretization, PoissonArrivals};
use ramsis_profiles::{ModelCatalog, ProfilerConfig, WorkerProfile};
use serde::Serialize;
use std::time::Duration;

#[derive(Serialize)]
struct Row {
    discretization: String,
    batching: String,
    models: usize,
    states: usize,
    actions: usize,
    runtime_s: Option<f64>,
}

fn main() {
    let args = ExperimentArgs::parse();
    let slo_s = args
        .slo_ms
        .map(|ms| ms as f64 / 1e3)
        .unwrap_or(if args.full { 0.5 } else { 0.15 });
    let workers = args.workers.unwrap_or(60);
    let load = args.load.unwrap_or(2_000.0);
    let process = PoissonArrivals::per_second(load);

    let base = ModelCatalog::torchvision_image();
    let dense = ModelCatalog::synthetic_interpolated(&base, 0.5);
    let catalogs = [("9 (Pareto of 26)", base), ("59 (dense)", dense)];

    // (discretization label, strategy, batching label, batching). Paper
    // Table 2 ordering.
    let combos: Vec<(&str, Discretization, &str, Batching)> = vec![
        (
            "MD",
            Discretization::ModelBased,
            "variable",
            Batching::Variable,
        ),
        (
            "FLD D=100",
            Discretization::fixed_length(100),
            "variable",
            Batching::Variable,
        ),
        ("MD", Discretization::ModelBased, "max", Batching::Maximal),
        (
            "FLD D=100",
            Discretization::fixed_length(100),
            "max",
            Batching::Maximal,
        ),
        (
            "FLD D=10",
            Discretization::fixed_length(10),
            "max",
            Batching::Maximal,
        ),
    ];
    // Quick-mode budget: skip combos whose state-action product predicts
    // multi-minute solves (the paper's "timeout" rows).
    let budget_state_actions: usize = if args.full { usize::MAX } else { 3_000_000 };

    let mut rows: Vec<Row> = Vec::new();
    let mut table = Vec::new();
    for (cat_label, catalog) in &catalogs {
        let profile = WorkerProfile::build(
            catalog,
            Duration::from_secs_f64(slo_s),
            ProfilerConfig::default(),
        );
        println!(
            "\ncatalog {cat_label}: B_w = {}, {} Pareto models",
            profile.max_batch(),
            profile.pareto_models().len()
        );
        for &(d_label, disc, b_label, batching) in &combos {
            let mut config = ramsis_config(slo_s, workers, 10);
            config.discretization = disc;
            config.batching = batching;
            let (states, actions) = mdp_dimensions(&profile, &config).expect("valid config");
            let runtime = if states.saturating_mul(actions / states.max(1)).max(actions)
                > budget_state_actions
            {
                None
            } else {
                let t0 = std::time::Instant::now();
                let policy = generate_policy(&profile, &process, &config).expect("generation");
                let dt = t0.elapsed().as_secs_f64();
                // Sanity: the policy is usable.
                assert!(policy.guarantees().expected_accuracy > 0.0);
                Some(dt)
            };
            let cell = match runtime {
                Some(t) => format!("{t:.2}"),
                None => "skipped (quick-mode budget; use --full)".to_string(),
            };
            table.push(vec![
                d_label.to_string(),
                b_label.to_string(),
                cat_label.to_string(),
                states.to_string(),
                actions.to_string(),
                cell,
            ]);
            rows.push(Row {
                discretization: d_label.to_string(),
                batching: b_label.to_string(),
                models: profile.pareto_models().len(),
                states,
                actions,
                runtime_s: runtime,
            });
        }
    }

    println!(
        "\n=== Table 2 — policy generation runtimes (SLO {:.0} ms, {workers} workers, \
         {load} QPS) ===",
        slo_s * 1e3
    );
    let header = ["TD", "batch", "models", "states", "actions", "runtime_s"];
    println!("{}", render_table(&header, &table));

    // Ordering checks on the rows that ran.
    let get = |d: &str, b: &str, m: usize| {
        rows.iter()
            .find(|r| r.discretization == d && r.batching == b && r.models == m)
            .and_then(|r| r.runtime_s)
    };
    // Check orderings on the largest model count that ran (sub-second
    // small-catalog runs are dominated by timing noise).
    let m_big = rows
        .iter()
        .filter(|r| r.runtime_s.is_some())
        .map(|r| r.models)
        .max()
        .unwrap_or(9);
    if let (Some(fld10), Some(fld100)) = (
        get("FLD D=10", "max", m_big),
        get("FLD D=100", "max", m_big),
    ) {
        println!(
            "paper check: FLD D=10 max ({fld10:.2}s) < FLD D=100 max ({fld100:.2}s): {}",
            fld10 < fld100
        );
    }
    if let (Some(maxb), Some(varb)) = (get("MD", "max", m_big), get("MD", "variable", m_big)) {
        println!(
            "note: MD max {maxb:.2}s vs MD variable {varb:.2}s — near-equal here, unlike \
             the paper's ~30x gap: our reorganized Eq. 2 sums make the extra partial-batch \
             rows cheap (see docs/transition_derivation.md), so variable batching's cost \
             is dominated by the shared full-batch rows."
        );
    }

    write_json(&args.out_dir, "table2_policy_gen_runtime", &rows);
    write_csv(&args.out_dir, "table2_policy_gen_runtime", &header, &table);
}
