//! Fig. 9 (appendix §B): p95 inference latency vs GLUE-MNLI accuracy
//! for the 5 BERT variants; all five sit on the Pareto front.

use ramsis_bench::report::emit_profile_figure;
use ramsis_bench::ExperimentArgs;
use ramsis_profiles::{ModelCatalog, ProfilerConfig, WorkerProfile};
use std::time::Duration;

fn main() {
    let args = ExperimentArgs::parse();
    let slo_s = args.slo_ms.map(|ms| ms as f64 / 1e3).unwrap_or(0.2);
    let profile = WorkerProfile::build(
        &ModelCatalog::bert_text(),
        Duration::from_secs_f64(slo_s),
        ProfilerConfig::default(),
    );
    emit_profile_figure(&args, &profile, "fig9_text_profiles");
    println!("paper shape: 5 models, all on the Pareto front.");
}
