//! Telemetry overhead: the cost of the event trace at each sink tier.
//!
//! Runs the same seeded constant-load simulation four ways — the plain
//! untraced entry point, an explicit [`NullSink`], a bounded
//! [`RingSink`], and a [`JsonlSink`] writing to memory — and compares
//! wall-clock times. The contract under test: with the default
//! `NullSink` every emission site collapses to one cold branch, so the
//! traced entry point must cost the same as the untraced one (asserted
//! within a noise margin on min-of-reps). Ring and JSONL tiers report
//! their slowdown and events/s for capacity planning.

use std::time::Instant;

use ramsis_baselines::JellyfishPlus;
use ramsis_bench::harness::{build_profile, constant_load_workers};
use ramsis_bench::{render_table, write_csv, write_json, ExperimentArgs};
use ramsis_profiles::Task;
use ramsis_sim::{Simulation, SimulationConfig, SimulationReport};
use ramsis_telemetry::{JsonlSink, NullSink, RingSink, TelemetrySink};
use ramsis_workload::{OracleMonitor, Trace};
use serde::Serialize;

/// Min-of-reps wall-clock is far more noise-robust than the mean, but a
/// shared container can still stall a whole rep; keep the gate loose.
const NULL_SINK_NOISE_FACTOR: f64 = 1.30;

#[derive(Serialize)]
struct Row {
    sink: String,
    min_s: f64,
    mean_s: f64,
    events: u64,
    slowdown: f64,
}

fn main() {
    let args = ExperimentArgs::parse();
    let task = args.task.unwrap_or(Task::ImageClassification);
    let slo_s = args.slos_for(task)[0];
    let workers = args.workers.unwrap_or_else(|| constant_load_workers(task));
    let load = args.load.unwrap_or(1_500.0);
    let duration_s = if args.full { 600.0 } else { 120.0 };
    let reps = if args.full { 7 } else { 5 };

    let profile = build_profile(task, slo_s);
    let trace = Trace::constant(load, duration_s);

    // One timed run; the scheme and monitor are rebuilt per rep so every
    // rep sees identical state.
    let run = |sink: Option<&mut dyn TelemetrySink>| -> (f64, SimulationReport) {
        let sim = Simulation::new(
            &profile,
            SimulationConfig::new(workers, slo_s).seeded(0x0B5),
        )
        .expect("valid simulation config");
        let mut scheme = JellyfishPlus::new(&profile, workers);
        let mut monitor = OracleMonitor::new(trace.clone());
        let start = Instant::now();
        let report = match sink {
            None => sim.run(&trace, &mut scheme, &mut monitor),
            Some(s) => sim.run_traced(&trace, &mut scheme, &mut monitor, s),
        };
        (start.elapsed().as_secs_f64(), report)
    };
    let timings = |mut one_rep: Box<dyn FnMut() -> (f64, u64)>| -> (f64, f64, u64) {
        let mut times = Vec::with_capacity(reps);
        let mut events = 0;
        for _ in 0..reps {
            let (t, n) = one_rep();
            times.push(t);
            events = n;
        }
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let mean = times.iter().sum::<f64>() / reps as f64;
        (min, mean, events)
    };

    println!(
        "\n=== Telemetry overhead — {} task, {workers} workers, {load:.0} QPS x {duration_s:.0} s, \
         {reps} reps ===",
        task.name()
    );
    let (base_min, base_mean, _) = timings(Box::new(|| (run(None).0, 0)));
    let (null_min, null_mean, _) = timings(Box::new(|| (run(Some(&mut NullSink)).0, 0)));
    let (ring_min, ring_mean, ring_events) = timings(Box::new(|| {
        let mut sink = RingSink::new(65_536);
        let (t, _) = run(Some(&mut sink));
        (t, sink.seen())
    }));
    let (jsonl_min, jsonl_mean, jsonl_events) = timings(Box::new(|| {
        let mut sink = JsonlSink::new(Vec::with_capacity(64 << 20));
        let (t, _) = run(Some(&mut sink));
        (t, sink.lines())
    }));

    let rows = vec![
        Row {
            sink: "untraced".into(),
            min_s: base_min,
            mean_s: base_mean,
            events: 0,
            slowdown: 1.0,
        },
        Row {
            sink: "null".into(),
            min_s: null_min,
            mean_s: null_mean,
            events: 0,
            slowdown: null_min / base_min,
        },
        Row {
            sink: "ring-64k".into(),
            min_s: ring_min,
            mean_s: ring_mean,
            events: ring_events,
            slowdown: ring_min / base_min,
        },
        Row {
            sink: "jsonl-mem".into(),
            min_s: jsonl_min,
            mean_s: jsonl_mean,
            events: jsonl_events,
            slowdown: jsonl_min / base_min,
        },
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.sink.clone(),
                format!("{:.3}", r.min_s),
                format!("{:.3}", r.mean_s),
                r.events.to_string(),
                format!("{:.2}x", r.slowdown),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["sink", "min_s", "mean_s", "events", "slowdown"], &table)
    );
    if jsonl_events > 0 && jsonl_min > 0.0 {
        println!(
            "jsonl throughput: {:.1}M events/s",
            jsonl_events as f64 / jsonl_min / 1e6
        );
    }

    write_json(&args.out_dir, "telemetry_overhead", &rows);
    write_csv(
        &args.out_dir,
        "telemetry_overhead",
        &["sink", "min_s", "mean_s", "events", "slowdown"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.sink.clone(),
                    format!("{:.4}", r.min_s),
                    format!("{:.4}", r.mean_s),
                    r.events.to_string(),
                    format!("{:.3}", r.slowdown),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let ratio = null_min / base_min;
    assert!(
        ratio < NULL_SINK_NOISE_FACTOR,
        "NullSink run {ratio:.2}x the untraced run — disabled telemetry must be free \
         (threshold {NULL_SINK_NOISE_FACTOR}x on min-of-{reps})"
    );
    println!("check: NullSink within noise of untraced ({ratio:.2}x < {NULL_SINK_NOISE_FACTOR}x)");
}
