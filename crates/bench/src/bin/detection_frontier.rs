//! Detection frontier: probe cadence vs detection lag vs probe cost.
//!
//! Runs the same seeded gray-failure scenario (a crash with a later
//! recovery, a heartbeat partition, and a batch-error window, on
//! distinct workers) once with oracle membership knowledge and once
//! per probe interval with the perceived-health subsystem on
//! (DESIGN.md §14). Each detector point reports the measured detection
//! lag against the policy's provable bound, the false-suspicion cost,
//! the probe volume, and the resulting violation rate — the frontier a
//! deployment walks when it trades probe traffic for reaction time.
//!
//! Three contracts under test:
//!
//! - every measured detection lag stays within the policy's provable
//!   bound (`HealthPolicy::detection_bound_s`);
//! - a disabled detector reproduces the oracle run byte-for-byte;
//! - probing faster never costs fewer probes, and the finest cadence
//!   detects the crash strictly sooner than the coarsest.
//!
//! Results land in `results/BENCH_health.json`.
//!
//! ```text
//! detection_frontier [--smoke] [--out DIR]
//! ```
//!
//! `--smoke` shrinks the horizon and sweeps two intervals instead of
//! five; the contracts are unchanged.

use std::path::PathBuf;
use std::process::exit;

use ramsis_bench::harness::build_profile;
use ramsis_bench::{render_table, write_json};
use ramsis_profiles::Task;
use ramsis_sim::{
    FastestFixed, FaultPlan, HealthPolicy, Routing, Simulation, SimulationConfig, SimulationReport,
};
use ramsis_workload::{LoadMonitor, Trace};
use serde::Serialize;

/// One swept point of the frontier.
#[derive(Serialize)]
struct FrontierPoint {
    probe_interval_ms: f64,
    detection_bound_ms: f64,
    probes_sent: u64,
    probes_failed: u64,
    suspects: u64,
    suspects_genuine: u64,
    suspects_false: u64,
    reinstates: u64,
    mean_detection_lag_ms: f64,
    max_detection_lag_ms: f64,
    false_suspected_time_s: f64,
    violation_rate: f64,
}

#[derive(Serialize)]
struct BenchHealth {
    schema_version: u32,
    smoke: bool,
    workers: usize,
    load_qps: f64,
    duration_s: f64,
    oracle_violation_rate: f64,
    points: Vec<FrontierPoint>,
}

fn main() {
    let mut smoke = false;
    let mut out_dir = PathBuf::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_dir = PathBuf::from(args.next().expect("--out requires a directory")),
            other => {
                eprintln!("error: unknown flag {other:?}");
                eprintln!("usage: detection_frontier [--smoke] [--out DIR]");
                exit(2);
            }
        }
    }

    let task = Task::ImageClassification;
    let slo_s = task.paper_slos()[0];
    let workers = 6;
    let load = 150.0;
    let duration_s = if smoke { 20.0 } else { 60.0 };
    let intervals_ms: &[f64] = if smoke {
        &[10.0, 50.0]
    } else {
        &[5.0, 10.0, 20.0, 50.0, 100.0]
    };

    let profile = build_profile(task, slo_s);
    let trace = Trace::constant(load, duration_s);
    let d = duration_s;
    let plan = FaultPlan::none()
        .crash(1, 0.25 * d)
        .recover(1, 0.60 * d)
        .partition(2, 0.30 * d, 0.45 * d)
        .error_rate(3, 0.50 * d, 0.70 * d, 0.6);
    let base_config = SimulationConfig::new(workers, slo_s).seeded(0xDE7EC7);

    let run = |config: SimulationConfig| -> SimulationReport {
        let sim = Simulation::new(&profile, config).expect("valid simulation config");
        let mut scheme = FastestFixed::new(profile.fastest_model(), Routing::PerWorkerRoundRobin);
        let mut monitor = LoadMonitor::new();
        sim.run_faulted(&trace, &plan, &mut scheme, &mut monitor)
            .expect("canonical fault plan validates")
    };

    println!(
        "\n=== Detection frontier — {} task, {workers} workers, {load:.0} QPS x \
         {duration_s:.0} s, crash+partition+error-window scenario{} ===",
        task.name(),
        if smoke { " (smoke)" } else { "" }
    );

    let oracle = run(base_config);

    // Contract: a disabled detector is the oracle engine, byte for byte.
    let mut disabled = HealthPolicy::probing(0.02);
    disabled.enabled = false;
    let off = run(base_config.with_health(disabled));
    assert_eq!(
        serde_json::to_string(&oracle).expect("report serializes"),
        serde_json::to_string(&off).expect("report serializes"),
        "health-off run diverged from the oracle run — a disabled detector must not \
         perturb the simulation"
    );

    let mut points = Vec::with_capacity(intervals_ms.len());
    for &ms in intervals_ms {
        let policy = HealthPolicy::probing(ms / 1e3);
        let report = run(base_config.with_health(policy));
        let stats = report
            .health
            .expect("health-enabled run reports detector stats");
        let bound_ms = policy.detection_bound_s() * 1e3;
        assert!(
            stats.suspects_genuine >= 1,
            "probe interval {ms} ms never detected the crash"
        );
        assert!(
            stats.max_detection_lag_s * 1e3 <= bound_ms + 1e-6,
            "probe interval {ms} ms: max detection lag {:.2} ms exceeds the provable \
             bound {bound_ms:.2} ms",
            stats.max_detection_lag_s * 1e3
        );
        points.push(FrontierPoint {
            probe_interval_ms: ms,
            detection_bound_ms: bound_ms,
            probes_sent: stats.probes_sent,
            probes_failed: stats.probes_failed,
            suspects: stats.suspects,
            suspects_genuine: stats.suspects_genuine,
            suspects_false: stats.suspects_false,
            reinstates: stats.reinstates,
            mean_detection_lag_ms: stats.mean_detection_lag_s * 1e3,
            max_detection_lag_ms: stats.max_detection_lag_s * 1e3,
            false_suspected_time_s: stats.false_suspected_time_s,
            violation_rate: report.violation_rate,
        });
    }

    // Contract: probe volume is monotone in cadence, and the finest
    // cadence reacts strictly faster than the coarsest.
    for pair in points.windows(2) {
        assert!(
            pair[0].probes_sent >= pair[1].probes_sent,
            "probing every {} ms sent fewer probes than every {} ms",
            pair[0].probe_interval_ms,
            pair[1].probe_interval_ms
        );
    }
    let (finest, coarsest) = (&points[0], &points[points.len() - 1]);
    assert!(
        finest.max_detection_lag_ms < coarsest.max_detection_lag_ms,
        "finest cadence ({} ms) did not detect faster than the coarsest ({} ms): \
         {:.2} ms vs {:.2} ms",
        finest.probe_interval_ms,
        coarsest.probe_interval_ms,
        finest.max_detection_lag_ms,
        coarsest.max_detection_lag_ms
    );

    let mut rows: Vec<Vec<String>> = vec![vec![
        "oracle".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        format!("{:.4}%", oracle.violation_rate * 100.0),
    ]];
    rows.extend(points.iter().map(|p| {
        vec![
            format!("{:.0} ms", p.probe_interval_ms),
            p.probes_sent.to_string(),
            format!("{}g/{}f", p.suspects_genuine, p.suspects_false),
            format!("{:.1}", p.max_detection_lag_ms),
            format!("{:.1}", p.detection_bound_ms),
            format!("{:.2}", p.false_suspected_time_s),
            format!("{:.4}%", p.violation_rate * 100.0),
        ]
    }));
    println!(
        "{}",
        render_table(
            &[
                "probe",
                "probes",
                "suspects",
                "max lag ms",
                "bound ms",
                "false w-s",
                "violations",
            ],
            &rows
        )
    );
    println!(
        "frontier: {:.0} ms probes detect within {:.1} ms for {} probes; {:.0} ms \
         probes take {:.1} ms for {} — every lag within its provable bound",
        finest.probe_interval_ms,
        finest.max_detection_lag_ms,
        finest.probes_sent,
        coarsest.probe_interval_ms,
        coarsest.max_detection_lag_ms,
        coarsest.probes_sent,
    );

    let doc = BenchHealth {
        schema_version: 1,
        smoke,
        workers,
        load_qps: load,
        duration_s,
        oracle_violation_rate: oracle.violation_rate,
        points,
    };
    write_json(&out_dir, "BENCH_health", &doc);

    println!("OK: health-off byte-identity held; all detection lags within their bounds");
}
