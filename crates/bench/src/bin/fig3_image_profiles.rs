//! Fig. 3: 95th-percentile inference latency vs accuracy for the 26
//! TorchVision ImageNet models, with Pareto-front membership (§4.3.3:
//! 17 of 26 models are pruned, leaving 9).

use ramsis_bench::report::emit_profile_figure;
use ramsis_bench::ExperimentArgs;
use ramsis_profiles::{ModelCatalog, ProfilerConfig, WorkerProfile};
use std::time::Duration;

fn main() {
    let args = ExperimentArgs::parse();
    let slo_s = args.slo_ms.map(|ms| ms as f64 / 1e3).unwrap_or(0.3);
    let profile = WorkerProfile::build(
        &ModelCatalog::torchvision_image(),
        Duration::from_secs_f64(slo_s),
        ProfilerConfig::default(),
    );
    emit_profile_figure(&args, &profile, "fig3_image_profiles");
    println!("paper shape: 26 models with 9 on the Pareto front.");
}
