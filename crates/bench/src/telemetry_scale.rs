//! Telemetry at engine speed: the `BENCH_telemetry.json` artifact.
//!
//! Measures the telemetry pipeline at three layers and gates the two
//! scalability contracts (DESIGN.md §15, EXPERIMENTS.md
//! "telemetry_scale"):
//!
//! 1. **Sink throughput** — a canonical event stream (recorded once
//!    from a seeded constant-load run) is replayed through each sink
//!    tier in memory: JSONL, binary, and 1%-sampled binary. The binary
//!    codec must sustain ≥ [`BIN_SPEEDUP_GATE`]x the JSONL sink's
//!    events/sec.
//! 2. **Engine overhead** — the same simulation runs with tracing off
//!    ([`NullSink`]) and with a 1%-sampled binary sink attached; the
//!    sampled run's min-of-reps wall clock must stay within
//!    [`SAMPLED_OVERHEAD_GATE`] (plus a noise margin chosen by the
//!    caller) of the untraced run.
//! 3. **Identity invariants** — the report is bit-identical with
//!    tracing off and with sampling on, and a rate-1.0 sampler is
//!    byte-identical to the plain binary sink.
//!
//! Everything lands in one serialized [`BenchTelemetry`] document so
//! CI can `--validate` an existing file without re-running.

use std::time::Instant;

use ramsis_baselines::JellyfishPlus;
use ramsis_profiles::Task;
use ramsis_sim::{Simulation, SimulationConfig, SimulationReport};
use ramsis_telemetry::{
    BinSink, Event, JsonlSink, NullSink, SamplePolicy, SamplingSink, TelemetrySink, VecSink,
};
use ramsis_workload::{OracleMonitor, Trace};
use serde::{Deserialize, Serialize};

use crate::harness::{build_profile, constant_load_workers};

/// The binary codec must encode at least this many times the JSONL
/// sink's events/sec on the pinned stream.
pub const BIN_SPEEDUP_GATE: f64 = 3.0;

/// Serving-time budget for 1% sampling into a binary sink: the extra
/// wall clock the sampled run costs over tracing-off, as a fraction of
/// the *simulated serving duration* — what the telemetry would consume
/// of a real serving system's time budget. The raw DES-wall ratio is
/// recorded too but not fractionally gated: this simulator retires an
/// event in under 100 ns, so any per-event work looks enormous against
/// it (see `decision_overhead` for the same argument); the per-event
/// regression guard is [`SAMPLED_NS_GATE`].
pub const SAMPLED_OVERHEAD_GATE: f64 = 0.01;

/// Per-event sampling cost ceiling (engine-attributed nanoseconds per
/// offered event, min-of-reps): the absolute regression guard on the
/// sampled hot path.
pub const SAMPLED_NS_GATE: f64 = 400.0;

/// Pinned workload for the bench.
#[derive(Debug, Clone)]
pub struct TelemetryScaleConfig {
    pub task: Task,
    pub workers: usize,
    pub slo_s: f64,
    pub load_qps: f64,
    pub duration_s: f64,
    pub seed: u64,
    pub reps: usize,
    /// Rate for the sampled tiers (the acceptance gate pins 1%).
    pub sample_rate: f64,
}

impl Default for TelemetryScaleConfig {
    fn default() -> Self {
        Self {
            task: Task::ImageClassification,
            workers: constant_load_workers(Task::ImageClassification),
            slo_s: 0.150,
            load_qps: 1_500.0,
            duration_s: 120.0,
            seed: 0x7E1E,
            reps: 5,
            sample_rate: 0.01,
        }
    }
}

impl TelemetryScaleConfig {
    /// CI-sized variant: same structure, much shorter trace.
    #[must_use]
    pub fn smoke(mut self) -> Self {
        self.duration_s = 8.0;
        self.reps = 3;
        self
    }
}

/// One in-memory sink tier of the throughput matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SinkTier {
    pub tier: String,
    /// Min-of-reps wall clock for replaying the canonical stream.
    pub wall_min_s: f64,
    pub wall_mean_s: f64,
    /// Events offered to the sink (constant across tiers).
    pub events_in: u64,
    /// Events the sink actually wrote (smaller for sampled tiers).
    pub events_out: u64,
    /// Encoded output size, for the compression story.
    pub bytes: u64,
    /// Offered events per second of sink time, min-of-reps.
    pub events_per_sec: f64,
}

/// One engine tier of the overhead matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineTier {
    pub tier: String,
    pub wall_min_s: f64,
    pub wall_mean_s: f64,
    /// `wall_min / off_wall_min - 1`; 0 for the off tier itself.
    pub overhead_vs_off: f64,
}

/// The `results/BENCH_telemetry.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchTelemetry {
    pub schema_version: u32,
    pub smoke: bool,
    pub task: String,
    pub workers: usize,
    pub slo_ms: f64,
    pub load_qps: f64,
    pub duration_s: f64,
    pub seed: u64,
    pub sample_rate: f64,
    pub reps: usize,
    /// Size of the canonical event stream all sink tiers replay.
    pub stream_events: u64,
    pub sink_tiers: Vec<SinkTier>,
    pub engine_tiers: Vec<EngineTier>,
    /// Binary sink events/sec over JSONL events/sec (gate ≥ 3).
    pub bin_speedup_vs_jsonl: f64,
    /// Extra wall clock of the sampled run over tracing-off, as a
    /// fraction of the simulated serving duration (gate ≤ 0.01): what
    /// 1% sampling would cost a real serving system.
    pub sampled_engine_overhead: f64,
    /// The same extra wall clock as a fraction of the tracing-off DES
    /// wall. Recorded, not gated: the simulator retires events in
    /// under 100 ns, so a fractional gate here measures the
    /// simulator's speed, not the telemetry's cost.
    pub sampled_des_overhead: f64,
    /// Engine-attributed sampling cost per offered event (gate ≤
    /// [`SAMPLED_NS_GATE`] ns).
    pub sampled_ns_per_event: f64,
    /// Report bit-identity across {off, sampled} engine runs.
    pub report_identity_ok: bool,
    /// Rate-1.0 sampler byte-identical to the plain binary sink.
    pub sampling_off_identity_ok: bool,
}

impl BenchTelemetry {
    /// Structural schema check for `--validate` (no perf gating here:
    /// thresholds belong to the run, margins to the caller).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema_version != 1 {
            return Err(format!("unknown schema_version {}", self.schema_version));
        }
        if self.stream_events == 0 {
            return Err("empty canonical stream".into());
        }
        let want = ["jsonl", "binary", "sampled-binary"];
        let have: Vec<&str> = self.sink_tiers.iter().map(|t| t.tier.as_str()).collect();
        if have != want {
            return Err(format!("sink tiers {have:?}, expected {want:?}"));
        }
        let engines = ["off", "sampled-binary"];
        let have: Vec<&str> = self.engine_tiers.iter().map(|t| t.tier.as_str()).collect();
        if have != engines {
            return Err(format!("engine tiers {have:?}, expected {engines:?}"));
        }
        for t in &self.sink_tiers {
            let positive = |x: f64| x.is_finite() && x > 0.0;
            if !positive(t.wall_min_s) || !positive(t.events_per_sec) {
                return Err(format!("tier {} has degenerate timings", t.tier));
            }
            if t.events_out > t.events_in {
                return Err(format!("tier {} wrote more events than offered", t.tier));
            }
        }
        if !self.bin_speedup_vs_jsonl.is_finite() || self.bin_speedup_vs_jsonl <= 0.0 {
            return Err("degenerate bin_speedup_vs_jsonl".into());
        }
        if !self.sampled_engine_overhead.is_finite()
            || !self.sampled_des_overhead.is_finite()
            || !self.sampled_ns_per_event.is_finite()
        {
            return Err("degenerate sampled overhead metrics".into());
        }
        if !self.report_identity_ok {
            return Err("report changed under sampling".into());
        }
        if !self.sampling_off_identity_ok {
            return Err("rate-1.0 sampler diverged from the plain binary sink".into());
        }
        Ok(())
    }
}

fn min_mean(times: &[f64]) -> (f64, f64) {
    let min = times.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    (min, mean)
}

/// Runs the pinned matrix and returns the artifact document.
///
/// # Panics
///
/// Panics if the pinned simulation config is rejected (it never is).
#[must_use]
pub fn run_telemetry_scale(cfg: &TelemetryScaleConfig, smoke: bool) -> BenchTelemetry {
    let profile = build_profile(cfg.task, cfg.slo_s);
    let trace = Trace::constant(cfg.load_qps, cfg.duration_s);
    let run = |sink: &mut dyn TelemetrySink| -> (f64, SimulationReport) {
        let sim = Simulation::new(
            &profile,
            SimulationConfig::new(cfg.workers, cfg.slo_s).seeded(cfg.seed),
        )
        .expect("valid simulation config");
        let mut scheme = JellyfishPlus::new(&profile, cfg.workers);
        let mut monitor = OracleMonitor::new(trace.clone());
        let start = Instant::now();
        let report = sim.run_traced(&trace, &mut scheme, &mut monitor, sink);
        (start.elapsed().as_secs_f64(), report)
    };

    // Canonical stream: every sink tier replays exactly these events,
    // so throughput differences are pure codec cost.
    let mut canon = VecSink::new();
    run(&mut canon);
    let events: Vec<Event> = canon.into_events();
    let policy = SamplePolicy::new(cfg.sample_rate, cfg.seed).expect("pinned rate is valid");

    // Sink tiers: time `record()` over the canonical stream, in memory.
    let replay = |mk: &dyn Fn() -> Box<dyn FnMut(&Event)>, reps: usize| -> Vec<f64> {
        (0..reps)
            .map(|_| {
                let mut feed = mk();
                let start = Instant::now();
                for e in &events {
                    feed(e);
                }
                start.elapsed().as_secs_f64()
            })
            .collect()
    };
    let jsonl_times = replay(
        &|| {
            let mut sink = JsonlSink::new(Vec::with_capacity(64 << 20));
            Box::new(move |e| sink.record(e))
        },
        cfg.reps,
    );
    let bin_times = replay(
        &|| {
            let mut sink = BinSink::new(Vec::with_capacity(16 << 20));
            Box::new(move |e| sink.record(e))
        },
        cfg.reps,
    );
    let sampled_times = replay(
        &|| {
            let mut sink = SamplingSink::new(BinSink::new(Vec::with_capacity(1 << 20)), policy);
            Box::new(move |e| sink.record(e))
        },
        cfg.reps,
    );

    // One un-timed pass per tier for the output sizes and kept counts.
    let mut jsonl = JsonlSink::new(Vec::new());
    let mut bin = BinSink::new(Vec::new());
    let mut sampled = SamplingSink::new(BinSink::new(Vec::new()), policy);
    for e in &events {
        jsonl.record(e);
        bin.record(e);
        sampled.record(e);
    }
    let jsonl_out = jsonl.finish().expect("vec write never fails");
    let bin_out = bin.finish().expect("vec write never fails");
    let sampled_inner = sampled.finish();
    let sampled_records = sampled_inner.records();
    let sampled_out = sampled_inner.finish().expect("vec write never fails");

    let tier = |name: &str, times: &[f64], out: u64, bytes: u64| -> SinkTier {
        let (wall_min_s, wall_mean_s) = min_mean(times);
        SinkTier {
            tier: name.to_string(),
            wall_min_s,
            wall_mean_s,
            events_in: events.len() as u64,
            events_out: out,
            bytes,
            events_per_sec: events.len() as f64 / wall_min_s,
        }
    };
    let sink_tiers = vec![
        tier(
            "jsonl",
            &jsonl_times,
            events.len() as u64,
            jsonl_out.len() as u64,
        ),
        tier(
            "binary",
            &bin_times,
            events.len() as u64,
            bin_out.len() as u64,
        ),
        tier(
            "sampled-binary",
            &sampled_times,
            sampled_records,
            sampled_out.len() as u64,
        ),
    ];
    let bin_speedup_vs_jsonl = sink_tiers[1].events_per_sec / sink_tiers[0].events_per_sec;

    // Engine tiers: whole-run wall clock, tracing off vs 1%-sampled
    // binary. Min-of-reps absorbs most scheduler noise.
    let mut off_times = Vec::with_capacity(cfg.reps);
    let mut off_report = None;
    for _ in 0..cfg.reps {
        let (t, r) = run(&mut NullSink);
        off_times.push(t);
        off_report = Some(r);
    }
    let mut sampled_eng_times = Vec::with_capacity(cfg.reps);
    let mut sampled_report = None;
    for _ in 0..cfg.reps {
        let mut sink = SamplingSink::new(BinSink::new(Vec::with_capacity(1 << 20)), policy);
        let (t, r) = run(&mut sink);
        sampled_eng_times.push(t);
        sampled_report = Some(r);
    }
    let (off_min, off_mean) = min_mean(&off_times);
    let (samp_min, samp_mean) = min_mean(&sampled_eng_times);
    let extra_s = (samp_min - off_min).max(0.0);
    let sampled_engine_overhead = extra_s / cfg.duration_s;
    let sampled_des_overhead = samp_min / off_min - 1.0;
    let sampled_ns_per_event = extra_s / events.len() as f64 * 1e9;
    let engine_tiers = vec![
        EngineTier {
            tier: "off".into(),
            wall_min_s: off_min,
            wall_mean_s: off_mean,
            overhead_vs_off: 0.0,
        },
        EngineTier {
            tier: "sampled-binary".into(),
            wall_min_s: samp_min,
            wall_mean_s: samp_mean,
            overhead_vs_off: sampled_des_overhead,
        },
    ];
    let report_identity_ok = match (&off_report, &sampled_report) {
        (Some(a), Some(b)) => {
            serde_json::to_string(a).expect("reports serialize")
                == serde_json::to_string(b).expect("reports serialize")
        }
        _ => false,
    };

    // Sampling-off identity: a rate-1.0 sampler must be a no-op
    // wrapper — byte-identical binary output.
    let mut plain = BinSink::new(Vec::new());
    let mut wrapped = SamplingSink::new(
        BinSink::new(Vec::new()),
        SamplePolicy::new(1.0, cfg.seed).expect("rate 1.0 is valid"),
    );
    for e in &events {
        plain.record(e);
        wrapped.record(e);
    }
    let sampling_off_identity_ok = plain.finish().expect("vec write never fails")
        == wrapped.finish().finish().expect("vec write never fails");

    BenchTelemetry {
        schema_version: 1,
        smoke,
        task: cfg.task.name().to_string(),
        workers: cfg.workers,
        slo_ms: cfg.slo_s * 1e3,
        load_qps: cfg.load_qps,
        duration_s: cfg.duration_s,
        seed: cfg.seed,
        sample_rate: cfg.sample_rate,
        reps: cfg.reps,
        stream_events: events.len() as u64,
        sink_tiers,
        engine_tiers,
        bin_speedup_vs_jsonl,
        sampled_engine_overhead,
        sampled_des_overhead,
        sampled_ns_per_event,
        report_identity_ok,
        sampling_off_identity_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micro() -> TelemetryScaleConfig {
        TelemetryScaleConfig {
            duration_s: 1.5,
            load_qps: 400.0,
            workers: 8,
            reps: 2,
            ..TelemetryScaleConfig::default()
        }
    }

    #[test]
    fn document_is_structurally_valid_and_round_trips() {
        let bench = run_telemetry_scale(&micro(), true);
        bench.validate().expect("fresh document validates");
        let json = serde_json::to_string(&bench).unwrap();
        let back: BenchTelemetry = serde_json::from_str(&json).unwrap();
        back.validate().expect("round-tripped document validates");
        assert_eq!(back.stream_events, bench.stream_events);
    }

    #[test]
    fn identities_hold_on_a_tiny_run() {
        let bench = run_telemetry_scale(&micro(), true);
        assert!(bench.report_identity_ok);
        assert!(bench.sampling_off_identity_ok);
        // The sampled tier kept strictly fewer events than offered at
        // a 1% rate on a >100-query stream.
        assert!(bench.sink_tiers[2].events_out < bench.sink_tiers[2].events_in);
    }

    #[test]
    fn validate_rejects_broken_documents() {
        let mut bench = run_telemetry_scale(&micro(), true);
        bench.schema_version = 99;
        assert!(bench.validate().is_err());
        let mut bench2 = run_telemetry_scale(&micro(), true);
        bench2.sink_tiers.swap(0, 1);
        assert!(bench2.validate().is_err());
    }
}
