//! The `perf_baseline` harness: the repo's machine-readable performance
//! trajectory (DESIGN.md §10).
//!
//! Runs a pinned scenario matrix with the engine's self-profiler
//! attached and summarizes wall-clock, event throughput, peak heap and
//! queue depths, and solver sweep timings into the
//! `results/BENCH_perf.json` document. Three scenarios cover the
//! engine's qualitatively different regimes:
//!
//! - `constant_load` — steady Poisson arrivals, no faults, resilience
//!   off: the pure dispatch loop.
//! - `surge_faults` — a straggler, an arrival surge, and a
//!   crash/recover cycle with the full resilience layer on: timeouts,
//!   retries, hedges, and admission all exercise their heap paths.
//! - `adaptive_drift` — the drifting stream served by adaptive RAMSIS:
//!   policy lookups, regime swaps, and shedding under load drift.
//!
//! A separate solver stage assembles one pinned policy MDP and times
//! both exact solvers via the profiled hooks, so per-sweep cost lands
//! in the same artifact.
//!
//! Absolute wall-clock numbers vary across machines; the artifact's
//! value is the *trajectory* — commit-over-commit comparisons on the
//! same hardware — plus machine-independent invariants (events
//! processed, heap depths, sweep counts) that must stay put for a
//! fixed seed.

use serde::{Deserialize, Serialize};

use ramsis_core::{assemble_mdp_for_bench, PoissonArrivals};
use ramsis_mdp::{value_iteration_gauss_seidel_profiled, value_iteration_profiled, SolveOptions};
use ramsis_profiles::{Task, WorkerProfile};
use ramsis_sim::{
    AdaptiveRamsis, FastestFixed, FaultPlan, ProfileReport, Profiler, ResiliencePolicy, Routing,
    Simulation, SimulationConfig, SimulationReport,
};
use ramsis_telemetry::NullSink;
use ramsis_workload::{DriftDetector, DriftDetectorConfig, LoadMonitor, Trace};

use crate::drift::DriftConfig;
use crate::harness::{build_profile, ramsis_config};

/// Version stamp of the `BENCH_perf.json` schema; bump on breaking
/// layout changes so trajectory tooling can refuse mixed files.
pub const BENCH_PERF_SCHEMA_VERSION: u32 = 1;

/// Parameters of one `perf_baseline` run. All scenarios derive from
/// these pinned values; `smoke()` shrinks durations for CI without
/// changing the scenario structure.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfBaselineConfig {
    /// Response-latency SLO, seconds.
    pub slo_s: f64,
    /// Cluster size (≥ 2 so hedges and crash re-routing engage).
    pub workers: usize,
    /// Offered load of the constant and surge scenarios, QPS.
    pub load_qps: f64,
    /// Trace length of the constant and surge scenarios, seconds.
    pub duration_s: f64,
    /// Length of each drift phase (steady, ramp, bursty), seconds.
    pub drift_phase_s: f64,
    /// Shared simulation + arrival seed.
    pub seed: u64,
    /// FLD discretization of the solver-stage MDP.
    pub d: u32,
    /// Arrival rate the solver-stage MDP is assembled against, QPS.
    pub solver_qps: f64,
}

impl Default for PerfBaselineConfig {
    fn default() -> Self {
        Self {
            slo_s: 0.15,
            workers: 4,
            load_qps: 120.0,
            duration_s: 30.0,
            drift_phase_s: 15.0,
            seed: 0xBE9C,
            d: 10,
            solver_qps: 400.0,
        }
    }
}

impl PerfBaselineConfig {
    /// CI-sized variant: same scenarios, shorter traces.
    pub fn smoke(mut self) -> Self {
        self.duration_s = 6.0;
        self.drift_phase_s = 5.0;
        self
    }

    /// The surge-scenario fault plan: worker 0 straggles, load surges,
    /// and worker 1 crashes and recovers mid-surge.
    pub fn surge_plan(&self) -> FaultPlan {
        let t = self.duration_s;
        FaultPlan::none()
            .slowdown(0, 0.1 * t, 0.8 * t, 10.0)
            .surge(0.3 * t, 0.7 * t, 2.0)
            .crash(1, 0.4 * t)
            .recover(1, 0.6 * t)
    }
}

/// One scenario's headline numbers plus the full profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioPerf {
    /// Pinned scenario name.
    pub scenario: String,
    /// Arrivals offered by the scenario's trace.
    pub arrivals: u64,
    /// Queries served to completion.
    pub served: u64,
    /// Wall-clock time of the profiled run, nanoseconds.
    pub wall_ns: u64,
    /// Heap events processed.
    pub events_processed: u64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
    /// Peak event-heap depth.
    pub peak_heap_depth: u64,
    /// Peak serving-queue depth observed at dispatch.
    pub peak_queue_depth: u64,
    /// The full self-profile (phases, counters, gauges).
    pub profile: ProfileReport,
}

/// The `results/BENCH_perf.json` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchPerf {
    /// [`BENCH_PERF_SCHEMA_VERSION`] at write time.
    pub schema_version: u32,
    /// True when produced by the CI-sized smoke configuration.
    pub smoke: bool,
    /// Seed shared by every scenario.
    pub seed: u64,
    /// One entry per pinned scenario, in matrix order.
    pub scenarios: Vec<ScenarioPerf>,
    /// Solver-stage sweep summaries (both exact methods).
    pub solvers: Vec<ramsis_telemetry::SolverProfile>,
}

impl BenchPerf {
    /// Structural schema check, shared by the binary's `--validate`
    /// mode and the CI smoke stage: presence and sanity of every field
    /// the trajectory tooling keys on. (Type mismatches are already
    /// rejected by deserialization into this struct.)
    pub fn validate(&self) -> Result<(), String> {
        if self.schema_version != BENCH_PERF_SCHEMA_VERSION {
            return Err(format!(
                "schema_version {} != expected {BENCH_PERF_SCHEMA_VERSION}",
                self.schema_version
            ));
        }
        let expected = ["constant_load", "surge_faults", "adaptive_drift"];
        let got: Vec<&str> = self.scenarios.iter().map(|s| s.scenario.as_str()).collect();
        if got != expected {
            return Err(format!("scenario matrix {got:?} != pinned {expected:?}"));
        }
        for s in &self.scenarios {
            if !s.profile.enabled {
                return Err(format!(
                    "{}: profile captured with profiler off",
                    s.scenario
                ));
            }
            if s.events_processed == 0 || s.arrivals == 0 {
                return Err(format!("{}: empty run", s.scenario));
            }
            if s.wall_ns == 0 || s.events_per_sec <= 0.0 || s.events_per_sec.is_nan() {
                return Err(format!("{}: missing wall-clock timing", s.scenario));
            }
            if s.peak_heap_depth == 0 {
                return Err(format!("{}: heap gauge never sampled", s.scenario));
            }
            if s.profile.phases.is_empty() {
                return Err(format!("{}: no phase timings", s.scenario));
            }
        }
        if self.solvers.len() < 2 {
            return Err(format!(
                "solver stage produced {} profiles, expected both exact methods",
                self.solvers.len()
            ));
        }
        for sp in &self.solvers {
            if !sp.converged || sp.sweeps == 0 || sp.states_touched == 0 {
                return Err(format!("solver {}: degenerate sweep record", sp.method));
            }
        }
        Ok(())
    }
}

fn scenario_perf(name: &str, report: &SimulationReport, prof: &Profiler) -> ScenarioPerf {
    let profile = prof.report();
    ScenarioPerf {
        scenario: name.to_owned(),
        arrivals: report.total_arrivals,
        served: report.served,
        wall_ns: profile.wall_ns,
        events_processed: profile.events_processed,
        events_per_sec: profile.events_per_sec,
        peak_heap_depth: profile.gauge_peak("heap_depth"),
        peak_queue_depth: profile.gauge_peak("queue_depth"),
        profile,
    }
}

fn run_constant(
    profile: &WorkerProfile,
    cfg: &PerfBaselineConfig,
    prof: &mut Profiler,
) -> SimulationReport {
    let trace = Trace::constant(cfg.load_qps, cfg.duration_s);
    let sim = Simulation::new(
        profile,
        SimulationConfig::new(cfg.workers, cfg.slo_s).seeded(cfg.seed),
    )
    .expect("valid constant-load config");
    let mut scheme = FastestFixed::new(profile.fastest_model(), Routing::PerWorkerRoundRobin);
    let mut monitor = LoadMonitor::new();
    sim.run_profiled(&trace, &mut scheme, &mut monitor, prof)
}

fn run_surge(
    profile: &WorkerProfile,
    cfg: &PerfBaselineConfig,
    prof: &mut Profiler,
) -> SimulationReport {
    let trace = Trace::constant(cfg.load_qps, cfg.duration_s);
    let sim = Simulation::new(
        profile,
        SimulationConfig::new(cfg.workers, cfg.slo_s)
            .seeded(cfg.seed)
            .stochastic()
            .with_resilience(ResiliencePolicy::all_on()),
    )
    .expect("valid surge config");
    let mut scheme = FastestFixed::new(profile.fastest_model(), Routing::PerWorkerRoundRobin);
    let mut monitor = LoadMonitor::new();
    sim.run_faulted_traced_profiled(
        &trace,
        &cfg.surge_plan(),
        &mut scheme,
        &mut monitor,
        &mut NullSink,
        prof,
    )
    .expect("surge plan validates")
}

fn run_drift_scenario(
    profile: &WorkerProfile,
    cfg: &PerfBaselineConfig,
    prof: &mut Profiler,
) -> SimulationReport {
    let dcfg = DriftConfig {
        slo_s: cfg.slo_s,
        workers: cfg.workers,
        phase_s: cfg.drift_phase_s,
        d: cfg.d,
        seed: cfg.seed,
        ..DriftConfig::default()
    };
    let gen_config = ramsis_config(dcfg.slo_s, dcfg.workers, dcfg.d);
    let grid = dcfg.grid();
    let library = ramsis_core::PolicyLibrary::generate_poisson_bins(
        profile,
        grid.clone(),
        dcfg.bursty_dispersion,
        &gen_config,
    )
    .expect("poisson bins generate");
    let initial = dcfg.initial_regime();
    let detector = DriftDetector::new(grid, DriftDetectorConfig::default(), initial);
    let mut scheme = AdaptiveRamsis::new(profile, gen_config, library, detector)
        .expect("initial regime is solved")
        .with_shed_policy(dcfg.shed)
        .with_lazy_solve_budget(dcfg.lazy_solve_budget);
    let arrivals = dcfg.arrivals();
    let sim = Simulation::new(
        profile,
        SimulationConfig::new(dcfg.workers, dcfg.slo_s).seeded(dcfg.seed),
    )
    .expect("valid drift config");
    let mut monitor = LoadMonitor::new();
    sim.run_arrivals_faulted_traced_profiled(
        &arrivals,
        &FaultPlan::none(),
        &mut scheme,
        &mut monitor,
        &mut NullSink,
        prof,
    )
    .expect("empty fault plan validates")
}

/// Times both exact solvers on one pinned policy MDP via the profiled
/// hooks; returns the collected sweep summaries.
fn run_solver_stage(
    profile: &WorkerProfile,
    cfg: &PerfBaselineConfig,
) -> Vec<ramsis_telemetry::SolverProfile> {
    let gen_config = ramsis_config(cfg.slo_s, cfg.workers, cfg.d);
    let process = PoissonArrivals::per_second(cfg.solver_qps);
    let mdp = assemble_mdp_for_bench(profile, &process, &gen_config).expect("pinned MDP assembles");
    let opts = SolveOptions {
        discount: gen_config.discount,
        ..SolveOptions::default()
    };
    let mut prof = Profiler::on();
    let a = value_iteration_profiled(&mdp, &opts, &mut prof);
    let b = value_iteration_gauss_seidel_profiled(&mdp, &opts, &mut prof);
    // Both methods converge to the same fixed point; a divergence here
    // means a solver regression, not a perf change.
    assert_eq!(a.policy, b.policy, "exact solvers disagree on the policy");
    prof.report().solvers
}

/// The pinned scenario names, in matrix order.
pub const SCENARIOS: [&str; 3] = ["constant_load", "surge_faults", "adaptive_drift"];

/// Runs one pinned scenario by name with a fresh profiler attached;
/// returns the simulation report and the captured profile. This is the
/// entry point behind `ramsis-cli perf`.
///
/// # Errors
///
/// Returns an error for a name outside [`SCENARIOS`].
pub fn run_scenario(
    name: &str,
    cfg: &PerfBaselineConfig,
) -> Result<(SimulationReport, ProfileReport), String> {
    let profile = build_profile(Task::ImageClassification, cfg.slo_s);
    let mut prof = Profiler::on();
    let report = match name {
        "constant_load" => run_constant(&profile, cfg, &mut prof),
        "surge_faults" => run_surge(&profile, cfg, &mut prof),
        "adaptive_drift" => run_drift_scenario(&profile, cfg, &mut prof),
        other => {
            return Err(format!(
                "unknown scenario {other:?} (expected one of {SCENARIOS:?})"
            ))
        }
    };
    Ok((report, prof.report()))
}

/// Runs the pinned scenario matrix plus the solver stage. Also asserts
/// the profiling-off contract on the constant-load scenario: the same
/// seeded run with a disabled profiler (and with no profiler at all)
/// must produce an identical report.
pub fn run_perf_baseline(cfg: &PerfBaselineConfig, smoke: bool) -> BenchPerf {
    let profile = build_profile(Task::ImageClassification, cfg.slo_s);

    let mut scenarios = Vec::with_capacity(3);
    {
        let mut prof = Profiler::on();
        let report = run_constant(&profile, cfg, &mut prof);
        // Profiling-off bit-identity (the cheap end of the contract;
        // the integration suite also covers the event stream).
        let unprofiled = run_constant(&profile, cfg, &mut Profiler::off());
        assert_eq!(
            report, unprofiled,
            "profiler must not perturb the simulated run"
        );
        scenarios.push(scenario_perf("constant_load", &report, &prof));
    }
    {
        let mut prof = Profiler::on();
        let report = run_surge(&profile, cfg, &mut prof);
        scenarios.push(scenario_perf("surge_faults", &report, &prof));
    }
    {
        let mut prof = Profiler::on();
        let report = run_drift_scenario(&profile, cfg, &mut prof);
        scenarios.push(scenario_perf("adaptive_drift", &report, &prof));
    }

    BenchPerf {
        schema_version: BENCH_PERF_SCHEMA_VERSION,
        smoke,
        seed: cfg.seed,
        scenarios,
        solvers: run_solver_stage(&profile, cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_matrix_produces_a_valid_document() {
        let cfg = PerfBaselineConfig::default().smoke();
        let bench = run_perf_baseline(&cfg, true);
        bench.validate().expect("smoke document validates");
        // Round-trips through JSON without loss.
        let json = serde_json::to_string(&bench).expect("serializes");
        let back: BenchPerf = serde_json::from_str(&json).expect("parses");
        assert_eq!(bench, back);
    }

    #[test]
    fn validate_rejects_broken_documents() {
        let cfg = PerfBaselineConfig::default().smoke();
        let good = run_perf_baseline(&cfg, true);

        let mut wrong_version = good.clone();
        wrong_version.schema_version += 1;
        assert!(wrong_version.validate().is_err());

        let mut wrong_matrix = good.clone();
        wrong_matrix.scenarios.swap(0, 1);
        assert!(wrong_matrix.validate().is_err());

        let mut no_solvers = good.clone();
        no_solvers.solvers.clear();
        assert!(no_solvers.validate().is_err());

        let mut disabled = good;
        disabled.scenarios[0].profile.enabled = false;
        assert!(disabled.validate().is_err());
    }
}
