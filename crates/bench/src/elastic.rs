//! The `elastic_frontier` experiment: autoscaled capacity vs fixed
//! pools on a diurnal trace.
//!
//! The Fig. 5-style diurnal shape ([`Trace::twitter_like`]) is rescaled
//! to a configurable trough-to-peak swing (10x quick, wider in full
//! mode) and served by the degradable model-selection scheme
//! ([`DegradingRamsis`]) under two capacity disciplines:
//!
//! - **Fixed pools**: one run per static worker count; cost is simply
//!   `workers x horizon` worker-seconds.
//! - **Elastic**: one run with the fault-aware autoscaler enabled over
//!   `[1, max_pool]`; cost is the integral of the live pool over time
//!   ([`ramsis_sim::AutoscaleStats::worker_seconds`]), and the brownout
//!   ladder absorbs the scaling lag by degrading to cheaper models
//!   while replacement capacity warms.
//!
//! The headline claim — asserted by the binary — is the frontier
//! property: the elastic run spends *fewer worker-seconds* than the
//! cheapest fixed pool that matches or beats its miss-or-loss rate.
//! Night-time capacity is the waste a fixed pool cannot avoid: sized
//! for the peak it idles through the trough, sized for the trough it
//! melts at the peak.

use serde::{Deserialize, Serialize};

use ramsis_core::{DegradablePolicySet, Discretization, FallbackPolicy, PolicyConfig};
use ramsis_profiles::WorkerProfile;
use ramsis_sim::{
    AutoscalePolicy, DegradingRamsis, Simulation, SimulationConfig, SimulationReport,
};
use ramsis_workload::{LoadMonitor, Trace, TraceKind};

use std::time::Duration;

/// Parameters of one elastic-frontier comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ElasticFrontierConfig {
    /// Response-latency SLO, seconds.
    pub slo_s: f64,
    /// Seed for the diurnal trace shape and the simulation.
    pub seed: u64,
    /// Load at the trace trough, QPS.
    pub trough_qps: f64,
    /// Peak-to-trough load ratio (the "10-100x" swing).
    pub swing: f64,
    /// Total trace length, seconds (the diurnal day is compressed into
    /// this window).
    pub duration_s: f64,
    /// Upper pool bound for the elastic run and the policy sets.
    pub max_pool: usize,
    /// The static pool sizes to compare against.
    pub fixed_pools: Vec<usize>,
    /// Autoscaler capacity target, QPS per live worker.
    pub target_qps_per_worker: f64,
    /// Worker warm-up latency, seconds (the lag the brownout covers).
    pub warmup_s: f64,
    /// Policy-solver discretization (coarse for quick runs).
    pub discretization: Discretization,
}

impl Default for ElasticFrontierConfig {
    fn default() -> Self {
        Self {
            slo_s: 0.15,
            seed: 42,
            trough_qps: 40.0,
            swing: 10.0,
            duration_s: 40.0,
            max_pool: 8,
            fixed_pools: vec![2, 4, 6, 8],
            target_qps_per_worker: 55.0,
            warmup_s: 0.5,
            discretization: Discretization::fixed_length(8),
        }
    }
}

impl ElasticFrontierConfig {
    /// The paper-scale variant: a longer day and a wider swing.
    pub fn full() -> Self {
        Self {
            swing: 20.0,
            trough_qps: 30.0,
            duration_s: 120.0,
            max_pool: 12,
            fixed_pools: vec![2, 4, 6, 8, 10, 12],
            ..Self::default()
        }
    }

    /// The diurnal trace: the Fig. 5 shape, affinely rescaled so the
    /// trough sits at `trough_qps` and the peak at `trough_qps x swing`,
    /// compressed into `duration_s`.
    pub fn diurnal_trace(&self) -> Trace {
        let base = Trace::twitter_like(self.seed);
        let (lo, hi) = (base.min_qps(), base.max_qps());
        let samples: Vec<f64> = base
            .segments()
            .iter()
            .map(|&(_, q)| {
                let t = (q - lo) / (hi - lo);
                self.trough_qps * (1.0 + t * (self.swing - 1.0))
            })
            .collect();
        Trace::from_interval_qps(
            &samples,
            self.duration_s / samples.len() as f64,
            TraceKind::Custom,
        )
    }

    /// The elastic policy of the autoscaled run.
    pub fn autoscale_policy(&self) -> AutoscalePolicy {
        let mut p = AutoscalePolicy::elastic(1, self.max_pool, self.target_qps_per_worker);
        p.warmup_s = self.warmup_s;
        p
    }
}

/// One capacity discipline's cost and quality on the shared trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElasticFrontierOutcome {
    /// Variant name (`"fixed-4"` / `"elastic"`).
    pub method: String,
    /// Capacity spent: live-pool integral over the horizon.
    pub worker_seconds: f64,
    /// Violations over completions.
    pub violation_rate: f64,
    /// Violations + drops over arrivals (the quality bar — shedding is
    /// not a way to win).
    pub miss_or_loss_rate: f64,
    /// Mean accuracy over satisfied queries.
    pub accuracy: f64,
    /// Scale-out decisions (0 for fixed pools).
    pub scale_ups: u64,
    /// Scale-in decisions (0 for fixed pools).
    pub scale_downs: u64,
    /// Brownout ladder engagements (0 for fixed pools).
    pub brownout_enters: u64,
    /// The full simulation report.
    pub report: SimulationReport,
}

fn scheme(profile: &WorkerProfile, cfg: &ElasticFrontierConfig) -> DegradingRamsis {
    let peak = cfg.trough_qps * cfg.swing;
    let loads = [peak * 0.25, peak * 0.5, peak];
    let policy_config = PolicyConfig::builder(Duration::from_secs_f64(cfg.slo_s))
        .workers(cfg.max_pool)
        .discretization(cfg.discretization)
        .build();
    let sets = DegradablePolicySet::generate_poisson(profile, &loads, &policy_config, 1)
        .expect("elastic-frontier policy sets generate");
    let fallback = FallbackPolicy::fastest(profile).expect("profile has a fastest model");
    DegradingRamsis::new(sets, fallback)
}

fn outcome(
    method: String,
    worker_seconds: f64,
    report: SimulationReport,
) -> ElasticFrontierOutcome {
    let a = report.autoscale.as_ref();
    ElasticFrontierOutcome {
        method,
        worker_seconds,
        violation_rate: report.violation_rate,
        miss_or_loss_rate: report.miss_or_loss_rate(),
        accuracy: report.accuracy_per_satisfied_query,
        scale_ups: a.map_or(0, |s| s.scale_ups),
        scale_downs: a.map_or(0, |s| s.scale_downs),
        brownout_enters: a.map_or(0, |s| s.brownout_enters),
        report,
    }
}

/// Runs every fixed pool and the elastic variant on the shared diurnal
/// trace. Fixed pools come first (ascending), the elastic run last.
pub fn run_elastic_frontier(
    profile: &WorkerProfile,
    cfg: &ElasticFrontierConfig,
) -> Vec<ElasticFrontierOutcome> {
    let trace = cfg.diurnal_trace();
    let mut outcomes = Vec::with_capacity(cfg.fixed_pools.len() + 1);
    for &w in &cfg.fixed_pools {
        let sim = Simulation::new(
            profile,
            SimulationConfig::new(w, cfg.slo_s).seeded(cfg.seed),
        )
        .expect("valid fixed-pool config");
        let mut s = scheme(profile, cfg);
        let mut monitor = LoadMonitor::new();
        let report = sim.run(&trace, &mut s, &mut monitor);
        let ws = w as f64 * report.horizon_s;
        outcomes.push(outcome(format!("fixed-{w}"), ws, report));
    }

    // The elastic run starts at the smallest fixed pool (or 2): the
    // autoscaler has to earn the peak capacity itself.
    let initial = cfg.fixed_pools.first().copied().unwrap_or(2);
    let sim = Simulation::new(
        profile,
        SimulationConfig::new(initial, cfg.slo_s)
            .seeded(cfg.seed)
            .with_autoscale(cfg.autoscale_policy()),
    )
    .expect("valid elastic config");
    let mut s = scheme(profile, cfg);
    let mut monitor = LoadMonitor::new();
    let report = sim.run(&trace, &mut s, &mut monitor);
    let ws = report
        .autoscale
        .as_ref()
        .expect("elastic run reports autoscale stats")
        .worker_seconds;
    outcomes.push(outcome("elastic".to_string(), ws, report));
    outcomes
}

/// The frontier claim: `(elastic worker-seconds, cheapest qualifying
/// fixed worker-seconds)`, where a fixed pool qualifies when its
/// miss-or-loss rate is at most the elastic run's. When no fixed pool
/// matches the elastic quality, the comparison is against the cheapest
/// fixed pool that was tried at all (the elastic run dominates the
/// whole fixed family on quality, so beating any of them on cost
/// settles the claim).
///
/// # Panics
///
/// Panics when `outcomes` lacks an `"elastic"` entry or fixed pools.
pub fn frontier_claim(outcomes: &[ElasticFrontierOutcome]) -> (f64, f64) {
    let elastic = outcomes
        .iter()
        .find(|o| o.method == "elastic")
        .expect("an elastic outcome");
    let fixed: Vec<&ElasticFrontierOutcome> =
        outcomes.iter().filter(|o| o.method != "elastic").collect();
    assert!(!fixed.is_empty(), "need at least one fixed pool");
    let qualifying = fixed
        .iter()
        .filter(|o| o.miss_or_loss_rate <= elastic.miss_or_loss_rate + 1e-9)
        .map(|o| o.worker_seconds)
        .fold(f64::INFINITY, f64::min);
    let bar = if qualifying.is_finite() {
        qualifying
    } else {
        fixed
            .iter()
            .map(|o| o.worker_seconds)
            .fold(f64::INFINITY, f64::min)
    };
    (elastic.worker_seconds, bar)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::build_profile;
    use ramsis_profiles::Task;

    fn quick() -> ElasticFrontierConfig {
        ElasticFrontierConfig {
            duration_s: 20.0,
            fixed_pools: vec![2, 8],
            ..ElasticFrontierConfig::default()
        }
    }

    #[test]
    fn elastic_beats_the_cheapest_qualifying_fixed_pool() {
        let cfg = quick();
        let profile = build_profile(Task::ImageClassification, cfg.slo_s);
        let outcomes = run_elastic_frontier(&profile, &cfg);
        assert_eq!(outcomes.len(), cfg.fixed_pools.len() + 1);

        let elastic = outcomes.last().unwrap();
        assert_eq!(elastic.method, "elastic");
        // The autoscaler genuinely moved the pool across the day.
        assert!(elastic.scale_ups > 0, "no scale-ups on a 10x swing");
        assert!(elastic.scale_downs > 0, "no scale-ins after the peak");

        let (elastic_ws, fixed_ws) = frontier_claim(&outcomes);
        assert!(
            elastic_ws < fixed_ws,
            "elastic {elastic_ws:.1} worker-seconds must beat the qualifying fixed {fixed_ws:.1}"
        );
    }

    #[test]
    fn diurnal_trace_spans_the_requested_swing() {
        let cfg = quick();
        let t = cfg.diurnal_trace();
        assert!((t.duration() - cfg.duration_s).abs() < 1e-6);
        assert!((t.min_qps() - cfg.trough_qps).abs() < 1e-6);
        assert!((t.max_qps() - cfg.trough_qps * cfg.swing).abs() < 1e-6);
    }
}
