//! The `resilience_surge` experiment: request-level resilience under a
//! straggling worker and an arrival surge.
//!
//! One fixed-fastest scheme serves the same seeded trace twice: once
//! with the default (disabled) [`ResiliencePolicy`] — the baseline —
//! and once with timeouts + retry, hedged dispatch, and CoDel admission
//! all enabled. The fault plan slows one worker hard and surges the
//! offered load, so dispatches landing on the straggler blow their
//! deadlines unless the resilience layer rescues them: timeouts reclaim
//! the worker, retries re-route the queries, hedges duplicate
//! stragglers onto healthy workers, and admission sheds queries whose
//! wait would have been hopeless anyway.
//!
//! The headline comparison is the *miss-or-loss rate* (violations +
//! drops over arrivals): shedding a query and still missing its
//! deadline both count against the system, so the resilient run cannot
//! win by trading violations for silent drops. The `resilience_surge`
//! binary asserts the improvement direction.

use serde::{Deserialize, Serialize};

use ramsis_profiles::WorkerProfile;
use ramsis_sim::{
    FastestFixed, FaultPlan, ResiliencePolicy, Routing, Simulation, SimulationConfig,
    SimulationReport,
};
use ramsis_workload::{LoadMonitor, Trace};

/// Parameters of one resilience-surge comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceSurgeConfig {
    /// Response-latency SLO, seconds.
    pub slo_s: f64,
    /// Cluster size (needs ≥ 2 so hedges and retries have somewhere to
    /// go).
    pub workers: usize,
    /// Base offered load, QPS.
    pub load_qps: f64,
    /// Trace length, seconds.
    pub duration_s: f64,
    /// Simulation seed (both runs share it).
    pub seed: u64,
    /// Latency multiplier applied to the straggling worker 0.
    pub slowdown_factor: f64,
    /// Arrival-rate multiplier during the surge window.
    pub surge_factor: f64,
}

impl Default for ResilienceSurgeConfig {
    fn default() -> Self {
        Self {
            slo_s: 0.15,
            workers: 4,
            load_qps: 80.0,
            duration_s: 40.0,
            seed: 0x5AFE,
            slowdown_factor: 12.0,
            surge_factor: 2.5,
        }
    }
}

impl ResilienceSurgeConfig {
    /// The surge-plus-straggler fault plan: worker 0 runs
    /// `slowdown_factor`× slower over [5 s, 30 s) and offered load
    /// multiplies by `surge_factor` over [10 s, 25 s).
    pub fn plan(&self) -> FaultPlan {
        FaultPlan::none()
            .slowdown(0, 5.0, 30.0, self.slowdown_factor)
            .surge(10.0, 25.0, self.surge_factor)
    }
}

/// Baseline and resilient reports for the same seeded run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceSurgeOutcome {
    /// Variant name (`"baseline"` / `"resilient"`).
    pub method: String,
    /// Violations + drops over total arrivals.
    pub miss_or_loss_rate: f64,
    /// Violations over completions.
    pub violation_rate: f64,
    /// The full simulation report (resilience counters included).
    pub report: SimulationReport,
}

fn run_one(
    profile: &WorkerProfile,
    cfg: &ResilienceSurgeConfig,
    policy: ResiliencePolicy,
) -> SimulationReport {
    let trace = Trace::constant(cfg.load_qps, cfg.duration_s);
    let sim = Simulation::new(
        profile,
        SimulationConfig::new(cfg.workers, cfg.slo_s)
            .seeded(cfg.seed)
            .stochastic()
            .with_resilience(policy),
    )
    .expect("valid resilience-surge config");
    let mut scheme = FastestFixed::new(profile.fastest_model(), Routing::PerWorkerRoundRobin);
    let mut monitor = LoadMonitor::new();
    sim.run_faulted(&trace, &cfg.plan(), &mut scheme, &mut monitor)
        .expect("surge plan validates")
}

/// Runs the baseline (resilience disabled) and the fully-enabled
/// resilient variant on the same seed. Outcomes are ordered baseline
/// first.
pub fn run_resilience_surge(
    profile: &WorkerProfile,
    cfg: &ResilienceSurgeConfig,
) -> Vec<ResilienceSurgeOutcome> {
    [
        ("baseline", ResiliencePolicy::default()),
        ("resilient", ResiliencePolicy::all_on()),
    ]
    .into_iter()
    .map(|(method, policy)| {
        let report = run_one(profile, cfg, policy);
        ResilienceSurgeOutcome {
            method: method.to_owned(),
            miss_or_loss_rate: report.miss_or_loss_rate(),
            violation_rate: report.violation_rate,
            report,
        }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::build_profile;
    use ramsis_profiles::Task;

    #[test]
    fn resilience_reduces_miss_or_loss_under_surge() {
        // The PR's acceptance criterion: with a hard straggler and a
        // surge, the full resilience layer strictly reduces the
        // miss-or-loss rate versus the same seed with everything off.
        let profile = build_profile(Task::ImageClassification, 0.15);
        let cfg = ResilienceSurgeConfig::default();
        let outcomes = run_resilience_surge(&profile, &cfg);
        assert_eq!(outcomes.len(), 2);
        let baseline = &outcomes[0];
        let resilient = &outcomes[1];
        assert!(
            resilient.miss_or_loss_rate < baseline.miss_or_loss_rate,
            "resilient {} must beat baseline {}",
            resilient.miss_or_loss_rate,
            baseline.miss_or_loss_rate
        );
        // The mechanisms actually engaged (not a trivial win).
        let rs = &resilient.report.resilience;
        assert!(rs.timeouts > 0, "straggler dispatches must time out");
        assert!(rs.retries > 0, "timed-out queries must be retried");
        // And the baseline ran untouched.
        assert_eq!(
            baseline.report.resilience,
            ramsis_sim::ResilienceStats::default()
        );
    }
}
