//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each evaluation artifact has a dedicated binary (see DESIGN.md §3 for
//! the full index):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig3_image_profiles` | Fig. 3 — image model profiles |
//! | `fig9_text_profiles` | Fig. 9 — text model profiles |
//! | `table1_features` | Table 1 — ISS feature comparison |
//! | `table2_policy_gen_runtime` | Table 2 — policy-generation runtimes |
//! | `fig5_production_trace` | Fig. 5 + Table 3 — production trace |
//! | `fig6_constant_load` | Fig. 6 + Table 4 — constant load sweep |
//! | `fig7_fidelity` | Fig. 7 — expectation vs simulation vs implementation |
//! | `fig8_many_models` | Fig. 8 — model-count sensitivity |
//! | `fig10_discretization` | Fig. 10 (§C) — FLD D sweep vs MD |
//! | `fig11_batching` | Fig. 11 (§D) — maximal vs variable batching |
//! | `fig12_fewer_models` | Fig. 12 (§E) — 3-model ablation |
//! | `appendix_h_infaas` | §H — INFaaS-style comparison |
//! | `appendix_i_sqf` | §I — shortest-queue-first balancing |
//! | `robustness_faults` | fault injection + graceful degradation (EXPERIMENTS.md) |
//! | `drift_adaptation` | arrival drift + policy hot-swap + shedding (EXPERIMENTS.md) |
//!
//! Binaries default to *quick* parameter grids sized for a small
//! machine; pass `--full` for the paper's grids. All output lands under
//! `results/` as JSON + CSV, alongside the rendered terminal tables and
//! ASCII plots.

pub mod args;
pub mod drift;
pub mod elastic;
pub mod harness;
pub mod output;
pub mod perf;
pub mod report;
pub mod resilience;
pub mod robustness;
pub mod telemetry_scale;

pub use args::ExperimentArgs;
pub use drift::{run_drift, DriftConfig, DriftOutcome};
pub use elastic::{
    frontier_claim, run_elastic_frontier, ElasticFrontierConfig, ElasticFrontierOutcome,
};
pub use harness::{
    build_profile, ms_scheme, ramsis_policy_set, run_scheme, MonitorKind, RunOutcome,
};
pub use output::{ascii_plot, render_table, write_csv, write_json};
pub use perf::{
    run_perf_baseline, run_scenario, BenchPerf, PerfBaselineConfig, ScenarioPerf,
    BENCH_PERF_SCHEMA_VERSION, SCENARIOS,
};
pub use resilience::{run_resilience_surge, ResilienceSurgeConfig, ResilienceSurgeOutcome};
pub use robustness::{run_robustness, RobustnessConfig, RobustnessOutcome};
pub use telemetry_scale::{
    run_telemetry_scale, BenchTelemetry, TelemetryScaleConfig, BIN_SPEEDUP_GATE, SAMPLED_NS_GATE,
    SAMPLED_OVERHEAD_GATE,
};
