//! Shared report emitters used by more than one experiment binary.

use ramsis_profiles::{pareto_front, WorkerProfile};

use crate::args::ExperimentArgs;
use crate::output::{ascii_plot, render_table, write_csv, write_json};

/// Emits a Fig. 3 / Fig. 9-style profile report: per-model accuracy and
/// p95 latency with Pareto-front membership, as a table, an ASCII
/// scatter, and CSV/JSON files.
pub fn emit_profile_figure(args: &ExperimentArgs, profile: &WorkerProfile, name: &str) {
    let points: Vec<(f64, f64)> = profile
        .models
        .iter()
        .map(|m| (m.batches[0].p95_s, m.accuracy))
        .collect();
    let front = pareto_front(&points);

    let mut rows = Vec::new();
    for (i, m) in profile.models.iter().enumerate() {
        rows.push(vec![
            m.name.clone(),
            format!("{:.2}", m.accuracy),
            format!("{:.1}", m.batches[0].p95_s * 1e3),
            format!("{:.1}", m.batches[0].mean_s * 1e3),
            if front.contains(&i) { "yes" } else { "" }.to_string(),
        ]);
    }
    rows.sort_by(|a, b| {
        a[2].parse::<f64>()
            .unwrap()
            .partial_cmp(&b[2].parse::<f64>().unwrap())
            .unwrap()
    });
    let header = ["model", "accuracy_%", "p95_ms", "mean_ms", "pareto"];
    println!(
        "{} — {} models, {} on the Pareto front",
        name,
        profile.n_models(),
        front.len()
    );
    println!("{}", render_table(&header, &rows));

    let series = vec![
        (
            "dominated".to_string(),
            points
                .iter()
                .enumerate()
                .filter(|(i, _)| !front.contains(i))
                .map(|(_, &(l, a))| (l * 1e3, a))
                .collect::<Vec<_>>(),
        ),
        (
            "pareto".to_string(),
            front
                .iter()
                .map(|&i| (points[i].0 * 1e3, points[i].1))
                .collect(),
        ),
    ];
    println!("accuracy (%) vs p95 latency (ms):");
    println!("{}", ascii_plot(&series, 64, 14));

    write_csv(&args.out_dir, name, &header, &rows);
    write_json(&args.out_dir, name, profile);
}
