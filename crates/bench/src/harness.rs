//! Shared experiment machinery: profile construction, policy-set and
//! ModelSwitching-table caching, and single-run execution.

use std::path::Path;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use ramsis_baselines::{profile_response_latency, ModelSwitching, ResponseLatencyTable};
use ramsis_core::{Discretization, PolicyConfig, PolicySet};
use ramsis_profiles::{ModelCatalog, ProfilerConfig, Task, WorkerProfile};
use ramsis_sim::{LatencyMode, ServingScheme, Simulation, SimulationConfig, SimulationReport};
use ramsis_workload::{LoadEstimator, LoadMonitor, OracleMonitor, Trace};

/// Which load estimator the run uses (§6 vs §7.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorKind {
    /// The 500 ms moving-average monitor (production-trace runs).
    MovingAverage,
    /// Perfect load knowledge (constant-load runs, §7.2).
    Oracle,
}

/// One labelled run result row used across experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Task short name.
    pub task: String,
    /// Method name.
    pub method: String,
    /// SLO in milliseconds.
    pub slo_ms: u64,
    /// Worker count.
    pub workers: usize,
    /// Constant load (QPS) or mean trace load.
    pub load_qps: f64,
    /// The full simulation report.
    pub report: SimulationReport,
}

/// Builds the worker profile for a task and SLO with the default
/// profiler settings (100 invocations, p95).
pub fn build_profile(task: Task, slo_s: f64) -> WorkerProfile {
    let catalog = match task {
        Task::ImageClassification => ModelCatalog::torchvision_image(),
        Task::TextClassification => ModelCatalog::bert_text(),
    };
    WorkerProfile::build(
        &catalog,
        Duration::from_secs_f64(slo_s),
        ProfilerConfig::default(),
    )
}

/// The paper's evaluation worker count for Fig. 6-style constant-load
/// experiments: 60 for image, 20 for text (§7.2).
pub fn constant_load_workers(task: Task) -> usize {
    match task {
        Task::ImageClassification => 60,
        Task::TextClassification => 20,
    }
}

/// Standard RAMSIS generation config: FLD with the given `D`.
pub fn ramsis_config(slo_s: f64, workers: usize, d: u32) -> PolicyConfig {
    PolicyConfig::builder(Duration::from_secs_f64(slo_s))
        .workers(workers)
        .discretization(Discretization::fixed_length(d))
        .build()
}

/// Generates (or loads from the on-disk cache) a RAMSIS Poisson policy
/// set for the given loads. Cached under
/// `out_dir/policy_gen/RAMSIS_<task>_<workers>_<slo>/...` mirroring the
/// artifact layout.
pub fn ramsis_policy_set(
    out_dir: &Path,
    profile: &WorkerProfile,
    loads: &[f64],
    config: &PolicyConfig,
) -> PolicySet {
    let d = match config.discretization {
        Discretization::FixedLength { d } => format!("fld{d}"),
        Discretization::ModelBased => "md".to_string(),
    };
    // The fingerprint keys the cache on the exact model set AND the full
    // generation config: identical (task, workers, SLO) runs over
    // different catalogs (Fig. 8's dense set) or different config knobs
    // (Fig. 11's batching strategies) must not share policies.
    let mut fingerprint = profile
        .models
        .iter()
        .fold(profile.n_models() as u64, |acc, m| {
            m.name
                .bytes()
                .fold(acc, |a, b| a.wrapping_mul(131).wrapping_add(b as u64))
        });
    let config_json = serde_json::to_string(config).expect("config serializes");
    fingerprint = config_json.bytes().fold(fingerprint, |a, b| {
        a.wrapping_mul(131).wrapping_add(b as u64)
    });
    let key = format!(
        "RAMSIS_{}_{}w_{}ms_{}_{}loads_{:x}_{fingerprint:x}",
        profile.task.name(),
        config.workers,
        (config.slo_s * 1e3).round() as u64,
        d,
        loads.len(),
        loads
            .iter()
            .fold(0u64, |acc, &l| acc.wrapping_mul(31).wrapping_add(l as u64))
    );
    let cache = out_dir.join("policy_gen").join(format!("{key}.json"));
    if let Ok(text) = std::fs::read_to_string(&cache) {
        if let Ok(set) = serde_json::from_str::<PolicySet>(&text) {
            return set;
        }
    }
    let set = PolicySet::generate_poisson(profile, loads, config)
        .expect("policy generation over valid loads");
    if let Some(parent) = cache.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    if let Ok(json) = serde_json::to_string(&set) {
        std::fs::write(&cache, json).ok();
    }
    set
}

/// Builds (or loads from the on-disk cache) a ModelSwitching selector
/// with its offline p99-response-latency sweep (the artifact's
/// `MS_gen.py`).
pub fn ms_scheme(
    out_dir: &Path,
    profile: &WorkerProfile,
    workers: usize,
    loads: &[f64],
    duration_s: f64,
) -> ModelSwitching {
    let fingerprint = profile
        .models
        .iter()
        .fold(profile.n_models() as u64, |acc, m| {
            m.name
                .bytes()
                .fold(acc, |a, b| a.wrapping_mul(131).wrapping_add(b as u64))
        });
    let key = format!(
        "MS_{}_{}w_{}ms_{}loads_{fingerprint:x}",
        profile.task.name(),
        workers,
        (profile.slo() * 1e3).round() as u64,
        loads.len()
    );
    let cache = out_dir.join("ms_profiles").join(format!("{key}.json"));
    if let Ok(text) = std::fs::read_to_string(&cache) {
        if let Ok(table) = serde_json::from_str::<ResponseLatencyTable>(&text) {
            if table.loads == loads {
                return ModelSwitching::new(profile, table);
            }
        }
    }
    let table = profile_response_latency(profile, workers, loads, duration_s, 0xB45E);
    if let Some(parent) = cache.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    if let Ok(json) = serde_json::to_string(&table) {
        std::fs::write(&cache, json).ok();
    }
    ModelSwitching::new(profile, table)
}

/// Runs one scheme over one trace and returns the report.
pub fn run_scheme(
    profile: &WorkerProfile,
    workers: usize,
    trace: &Trace,
    scheme: &mut dyn ServingScheme,
    monitor: MonitorKind,
    latency: LatencyMode,
    seed: u64,
) -> SimulationReport {
    let mut config = SimulationConfig::new(workers, profile.slo()).seeded(seed);
    config.latency = latency;
    let sim = Simulation::new(profile, config).expect("valid simulation config");
    let mut estimator: Box<dyn LoadEstimator> = match monitor {
        MonitorKind::MovingAverage => Box::new(LoadMonitor::new()),
        MonitorKind::Oracle => Box::new(OracleMonitor::new(trace.clone())),
    };
    sim.run(trace, scheme, estimator.as_mut())
}

/// The ModelSwitching offline profiling load grid: the paper sweeps 400
/// to 4,000 QPS in increments of 100 (quick mode: increments of 400).
pub fn ms_profiling_loads(full: bool) -> Vec<f64> {
    let step = if full { 100 } else { 400 };
    (1..)
        .map(|i| (400 + (i - 1) * step) as f64)
        .take_while(|&l| l <= 4_000.0)
        .collect()
}

/// The RAMSIS policy-set load grid covering a trace's load range plus
/// headroom (a policy must exist at or above the anticipated load).
pub fn ramsis_loads_for_range(min_qps: f64, max_qps: f64, count: usize) -> Vec<f64> {
    assert!(count >= 2, "need at least two grid points");
    assert!(max_qps > min_qps, "range must be non-empty");
    let hi = max_qps * 1.1;
    (0..count)
        .map(|i| min_qps + (hi - min_qps) * i as f64 / (count - 1) as f64)
        .map(|l| l.round())
        .collect()
}

/// Formats a fraction as a percent string with four decimals, matching
/// the paper's Tables 3/4.
pub fn pct(x: f64) -> String {
    format!("{:.4}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramsis_baselines::JellyfishPlus;

    #[test]
    fn profiles_build_for_all_paper_points() {
        for task in [Task::ImageClassification, Task::TextClassification] {
            for slo in task.paper_slos() {
                let p = build_profile(task, slo);
                assert!(p.max_batch() >= 1);
                assert!(!p.pareto_models().is_empty());
            }
        }
    }

    #[test]
    fn ms_loads_grids() {
        let quick = ms_profiling_loads(false);
        assert_eq!(quick.first(), Some(&400.0));
        assert_eq!(quick.last(), Some(&4_000.0));
        assert_eq!(quick.len(), 10);
        let full = ms_profiling_loads(true);
        assert_eq!(full.len(), 37);
    }

    #[test]
    fn ramsis_load_grid_covers_range() {
        let loads = ramsis_loads_for_range(1_617.0, 3_905.0, 6);
        assert_eq!(loads.len(), 6);
        assert!(loads[0] <= 1_617.0);
        assert!(*loads.last().unwrap() >= 3_905.0);
        for w in loads.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn caches_round_trip() {
        let dir = std::env::temp_dir().join("ramsis_bench_cache_test");
        std::fs::remove_dir_all(&dir).ok();
        let profile = build_profile(Task::TextClassification, 0.1);
        let config = ramsis_config(0.1, 4, 8);
        let a = ramsis_policy_set(&dir, &profile, &[100.0, 300.0], &config);
        let b = ramsis_policy_set(&dir, &profile, &[100.0, 300.0], &config);
        assert_eq!(a, b);
        let m1 = ms_scheme(&dir, &profile, 4, &[400.0, 800.0], 2.0);
        let m2 = ms_scheme(&dir, &profile, 4, &[400.0, 800.0], 2.0);
        assert_eq!(m1.table(), m2.table());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_scheme_produces_report() {
        let profile = build_profile(Task::TextClassification, 0.1);
        let trace = Trace::constant(200.0, 3.0);
        let mut jf = JellyfishPlus::new(&profile, 4);
        let r = run_scheme(
            &profile,
            4,
            &trace,
            &mut jf,
            MonitorKind::Oracle,
            LatencyMode::DeterministicP95,
            1,
        );
        assert!(r.served > 0);
        assert_eq!(r.served, r.total_arrivals);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.001234), "0.1234%");
        assert_eq!(pct(0.0), "0.0000%");
    }
}
