//! The `robustness_faults` experiment: graceful degradation under the
//! canonical fault schedule.
//!
//! Four systems serve the same 60-second constant-load trace while
//! [`FaultPlan::canonical`] plays out (1-of-4 workers crashes for 30 s,
//! another runs 2× slower for 20 s, offered load surges 3× for 10 s):
//!
//! - **RAMSIS-degrading** — [`DegradingRamsis`]: policy sets pre-solved
//!   per live-worker count plus the fastest-model fallback.
//! - **RAMSIS-stale** — plain [`RamsisScheme`] whose policies assume the
//!   nominal worker count forever (what RAMSIS would do with no fault
//!   awareness).
//! - **Fixed-fastest** — the fastest model at all times (robust but
//!   inaccurate).
//! - **INFaaS-style** — load-indexed cheapest-model selection with an
//!   accuracy floor.
//!
//! The headline metric is the *miss-or-loss rate* (violations + drops
//! over arrivals): degradation must strictly reduce it versus the stale
//! policy set, without giving up the accuracy advantage over the fixed
//! baseline outside fault windows.

use serde::{Deserialize, Serialize};

use ramsis_baselines::{FixedModel, InfaasStyle};
use ramsis_core::{DegradablePolicySet, FallbackPolicy, PolicySet};
use ramsis_profiles::WorkerProfile;
use ramsis_sim::{
    CrashPolicy, DegradingRamsis, FaultPlan, RamsisScheme, ServingScheme, Simulation,
    SimulationConfig, SimulationReport,
};
use ramsis_workload::{LoadMonitor, Trace};

use crate::harness::ramsis_config;

/// Parameters of one robustness run.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessConfig {
    /// Response-latency SLO, seconds.
    pub slo_s: f64,
    /// Nominal cluster size.
    pub workers: usize,
    /// Smallest live-worker count with a pre-solved policy set.
    pub min_workers: usize,
    /// Base offered load, QPS (surges scale it).
    pub load_qps: f64,
    /// Trace length, seconds (must cover the canonical schedule's 40 s).
    pub duration_s: f64,
    /// FLD discretization steps for policy generation.
    pub d: u32,
    /// Simulation seed.
    pub seed: u64,
    /// What happens to a crashed worker's displaced queries.
    pub crash_policy: CrashPolicy,
}

impl Default for RobustnessConfig {
    fn default() -> Self {
        Self {
            slo_s: 0.15,
            workers: 4,
            min_workers: 2,
            load_qps: 100.0,
            duration_s: 60.0,
            d: 10,
            seed: 0xFA17,
            crash_policy: CrashPolicy::RequeueToSurvivors,
        }
    }
}

impl RobustnessConfig {
    /// The canonical fault schedule for this configuration.
    pub fn plan(&self) -> FaultPlan {
        FaultPlan::canonical(self.workers).with_crash_policy(self.crash_policy)
    }

    /// The policy-set load grid: cluster-level design loads spanning the
    /// base load up to the surged peak with headroom.
    pub fn policy_loads(&self) -> Vec<f64> {
        let surge_peak = self.load_qps * 3.0;
        vec![
            (self.load_qps * 0.5).round(),
            self.load_qps.round(),
            (self.load_qps * 1.5).round(),
            (surge_peak * 1.1).round(),
        ]
    }
}

/// One system's result under the fault schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessOutcome {
    /// System name.
    pub method: String,
    /// Violations + drops over total arrivals.
    pub miss_or_loss_rate: f64,
    /// SLO violation rate among completions inside fault windows.
    pub violation_rate_in_fault: f64,
    /// ... and outside them.
    pub violation_rate_outside_fault: f64,
    /// Decisions answered by the fallback policy (degrading RAMSIS
    /// only).
    pub fallback_decisions: Option<u64>,
    /// The full simulation report.
    pub report: SimulationReport,
}

fn outcome(
    method: &str,
    report: SimulationReport,
    fallback_decisions: Option<u64>,
) -> RobustnessOutcome {
    RobustnessOutcome {
        method: method.to_owned(),
        miss_or_loss_rate: report.miss_or_loss_rate(),
        violation_rate_in_fault: report.faults.violation_rate_in_fault(),
        violation_rate_outside_fault: report.faults.violation_rate_outside_fault(),
        fallback_decisions,
        report,
    }
}

fn run_one(
    profile: &WorkerProfile,
    cfg: &RobustnessConfig,
    scheme: &mut dyn ServingScheme,
) -> SimulationReport {
    let trace = Trace::constant(cfg.load_qps, cfg.duration_s);
    let sim = Simulation::new(
        profile,
        SimulationConfig::new(cfg.workers, cfg.slo_s).seeded(cfg.seed),
    )
    .expect("valid robustness config");
    let mut monitor = LoadMonitor::new();
    sim.run_faulted(&trace, &cfg.plan(), scheme, &mut monitor)
        .expect("canonical plan validates")
}

/// Runs all four systems under the canonical fault schedule. The
/// returned outcomes are ordered: degrading RAMSIS, stale RAMSIS,
/// fixed-fastest, INFaaS-style.
pub fn run_robustness(profile: &WorkerProfile, cfg: &RobustnessConfig) -> Vec<RobustnessOutcome> {
    let loads = cfg.policy_loads();
    let gen_config = ramsis_config(cfg.slo_s, cfg.workers, cfg.d);

    let degradable =
        DegradablePolicySet::generate_poisson(profile, &loads, &gen_config, cfg.min_workers)
            .expect("degradable generation over valid loads");
    let fallback = FallbackPolicy::fastest(profile).expect("profile has models");
    // The stale scheme reuses the nominal-count set from the same
    // generation pass, so the only difference is degradation awareness.
    let full_set: PolicySet = degradable.full().clone();

    let mut outcomes = Vec::with_capacity(4);
    {
        let mut scheme = DegradingRamsis::new(degradable, fallback);
        let report = run_one(profile, cfg, &mut scheme);
        outcomes.push(outcome(
            "RAMSIS-degrading",
            report,
            Some(scheme.fallback_decisions()),
        ));
    }
    {
        let mut scheme = RamsisScheme::new(full_set);
        outcomes.push(outcome(
            "RAMSIS-stale",
            run_one(profile, cfg, &mut scheme),
            None,
        ));
    }
    {
        let mut scheme = FixedModel::new(profile, profile.fastest_model());
        outcomes.push(outcome(
            "Fixed-fastest",
            run_one(profile, cfg, &mut scheme),
            None,
        ));
    }
    {
        // An accuracy floor in the middle of the catalog's range: INFaaS
        // picks the cheapest model at least this accurate for the load.
        let floor = 0.5
            * (profile.accuracy(profile.fastest_model())
                + profile
                    .pareto_models()
                    .iter()
                    .map(|&m| profile.accuracy(m))
                    .fold(f64::NEG_INFINITY, f64::max));
        let mut scheme = InfaasStyle::new(profile, cfg.workers, floor);
        outcomes.push(outcome(
            "INFaaS-style",
            run_one(profile, cfg, &mut scheme),
            None,
        ));
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::build_profile;
    use ramsis_profiles::Task;

    #[test]
    fn degradation_beats_stale_policies_under_canonical_faults() {
        // The PR's acceptance criterion: under the canonical schedule
        // the degrading scheme has a strictly lower miss-or-loss rate
        // than RAMSIS running its stale nominal-worker policy set.
        let profile = build_profile(Task::ImageClassification, 0.15);
        let cfg = RobustnessConfig::default();
        let outcomes = run_robustness(&profile, &cfg);
        assert_eq!(outcomes.len(), 4);
        let degrading = &outcomes[0];
        let stale = &outcomes[1];
        assert_eq!(degrading.method, "RAMSIS-degrading");
        assert_eq!(stale.method, "RAMSIS-stale");
        assert!(
            degrading.miss_or_loss_rate < stale.miss_or_loss_rate,
            "degrading {} must beat stale {}",
            degrading.miss_or_loss_rate,
            stale.miss_or_loss_rate
        );
        // Faults actually happened and were accounted.
        assert!(degrading.report.faults.downtime_s > 25.0);
        assert!(degrading.report.faults.served_in_fault > 0);
    }
}
