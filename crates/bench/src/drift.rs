//! The `drift_adaptation` experiment: arrival-drift detection, policy
//! hot-swap, and deadline-aware shedding versus stale policies.
//!
//! Three systems serve the same 60-second drifting arrival stream:
//!
//! - **RAMSIS-adaptive** — [`AdaptiveRamsis`]: a regime-keyed
//!   [`PolicyLibrary`] hot-swapped by the online drift detector, with
//!   hopeless-query shedding and a bounded lazy-solve budget.
//! - **RAMSIS-stale** — plain [`RamsisScheme`] frozen on the policy set
//!   of the *initial* regime (what RAMSIS does when the offline traffic
//!   assumptions silently stop holding).
//! - **Fixed-fastest** — the fastest model at all times (drift-immune
//!   but inaccurate).
//!
//! The stream drifts twice: a rate ramp (base → peak over the middle
//! phase, crossing two regime-grid edges) and then a dispersion shift
//! (Poisson → bursty gamma-renewal arrivals at the peak rate). The
//! headline metric is the miss-or-loss rate (violations + sheds over
//! arrivals): adaptation must strictly reduce it versus the stale
//! policy set.

use serde::{Deserialize, Serialize};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use ramsis_baselines::FixedModel;
use ramsis_core::{PolicyLibrary, ShedPolicy};
use ramsis_profiles::WorkerProfile;
use ramsis_sim::{
    AdaptiveRamsis, RamsisScheme, ServingScheme, Simulation, SimulationConfig, SimulationReport,
};
use ramsis_workload::{
    sample_gamma_renewal_arrivals, sample_poisson_arrivals, DispersionClass, DriftDetector,
    DriftDetectorConfig, LoadMonitor, RegimeGrid, RegimeKey, Trace, TraceKind,
};

use crate::harness::ramsis_config;

/// Parameters of one drift-adaptation run.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftConfig {
    /// Response-latency SLO, seconds.
    pub slo_s: f64,
    /// Cluster size.
    pub workers: usize,
    /// Load of the opening phase, QPS.
    pub base_qps: f64,
    /// Load of the closing phases, QPS.
    pub peak_qps: f64,
    /// Length of each of the three phases (steady, ramp, bursty), s.
    pub phase_s: f64,
    /// Piecewise-constant steps in the ramp phase.
    pub ramp_steps: usize,
    /// Gamma-renewal shape of the bursty phase (< 1 is over-dispersed;
    /// 0.25 approaches count dispersion 4).
    pub burst_shape: f64,
    /// Count dispersion bursty regimes are solved against.
    pub bursty_dispersion: f64,
    /// FLD discretization steps for policy generation.
    pub d: u32,
    /// Simulation + arrival-sampling seed.
    pub seed: u64,
    /// The adaptive scheme's shed policy.
    pub shed: ShedPolicy,
    /// Online solves the adaptive scheme may pay for.
    pub lazy_solve_budget: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            slo_s: 0.15,
            workers: 4,
            base_qps: 100.0,
            peak_qps: 250.0,
            phase_s: 20.0,
            ramp_steps: 10,
            burst_shape: 0.25,
            bursty_dispersion: PolicyLibrary::DEFAULT_BURSTY_DISPERSION,
            d: 10,
            seed: 0xD21F,
            shed: ShedPolicy::Hopeless,
            lazy_solve_budget: 2,
        }
    }
}

impl DriftConfig {
    /// Total stream length, seconds.
    pub fn duration_s(&self) -> f64 {
        3.0 * self.phase_s
    }

    /// The regime grid: an edge just above the base load, one mid-ramp,
    /// and one above the peak, so the ramp crosses two bin boundaries
    /// and the peak stays in-grid.
    pub fn grid(&self) -> RegimeGrid {
        RegimeGrid::new(vec![
            (self.base_qps * 1.2).round(),
            (self.base_qps * 1.8).round(),
            (self.peak_qps * 1.12).round(),
        ])
    }

    /// The initial traffic regime (base rate, Poisson).
    pub fn initial_regime(&self) -> RegimeKey {
        RegimeKey::new(
            self.grid().rate_bin(self.base_qps),
            DispersionClass::Poisson,
        )
    }

    /// Samples the drifting arrival stream: `phase_s` seconds of Poisson
    /// arrivals at the base rate, a `ramp_steps`-step Poisson ramp to
    /// the peak, then `phase_s` seconds of gamma-renewal (bursty)
    /// arrivals at the peak. Deterministic in the seed.
    pub fn arrivals(&self) -> Vec<f64> {
        let step_s = self.phase_s / self.ramp_steps as f64;
        let span = self.peak_qps - self.base_qps;
        // Steady phase as ramp-step-sized intervals, then the ramp.
        let mut samples = vec![self.base_qps; self.ramp_steps];
        for i in 0..self.ramp_steps {
            samples.push(self.base_qps + span * (i + 1) as f64 / self.ramp_steps as f64);
        }
        let poisson_phases = Trace::from_interval_qps(&samples, step_s, TraceKind::Custom);
        let bursty_phase = Trace::constant(self.peak_qps, self.phase_s);

        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut arrivals = sample_poisson_arrivals(&poisson_phases, &mut rng);
        let offset = 2.0 * self.phase_s;
        arrivals.extend(
            sample_gamma_renewal_arrivals(&bursty_phase, self.burst_shape, &mut rng)
                .into_iter()
                .map(|t| t + offset),
        );
        arrivals
    }
}

/// One system's result under the drifting stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftOutcome {
    /// System name.
    pub method: String,
    /// Violations + sheds over total arrivals.
    pub miss_or_loss_rate: f64,
    /// The full simulation report (adaptive stats populated for the
    /// adaptive scheme).
    pub report: SimulationReport,
}

fn outcome(method: &str, report: SimulationReport) -> DriftOutcome {
    DriftOutcome {
        method: method.to_owned(),
        miss_or_loss_rate: report.miss_or_loss_rate(),
        report,
    }
}

fn run_one(
    profile: &WorkerProfile,
    cfg: &DriftConfig,
    arrivals: &[f64],
    scheme: &mut dyn ServingScheme,
) -> SimulationReport {
    let sim = Simulation::new(
        profile,
        SimulationConfig::new(cfg.workers, cfg.slo_s).seeded(cfg.seed),
    )
    .expect("valid drift config");
    let mut monitor = LoadMonitor::new();
    sim.run_arrivals(arrivals, scheme, &mut monitor)
}

/// Runs all three systems over the same drifting stream. The returned
/// outcomes are ordered: adaptive RAMSIS, stale RAMSIS, fixed-fastest.
pub fn run_drift(profile: &WorkerProfile, cfg: &DriftConfig) -> Vec<DriftOutcome> {
    let gen_config = ramsis_config(cfg.slo_s, cfg.workers, cfg.d);
    let grid = cfg.grid();
    // Poisson bins are pre-solved offline; the bursty peak regime is
    // left to the adaptive scheme's online lazy-solve budget.
    let library = PolicyLibrary::generate_poisson_bins(
        profile,
        grid.clone(),
        cfg.bursty_dispersion,
        &gen_config,
    )
    .expect("poisson bins generate");
    let initial = cfg.initial_regime();
    let stale_set = library
        .get(initial)
        .expect("initial regime is a pre-solved poisson bin")
        .clone();
    let arrivals = cfg.arrivals();

    let mut outcomes = Vec::with_capacity(3);
    {
        let detector = DriftDetector::new(grid, DriftDetectorConfig::default(), initial);
        let mut scheme = AdaptiveRamsis::new(profile, gen_config, library, detector)
            .expect("initial regime is solved")
            .with_shed_policy(cfg.shed)
            .with_lazy_solve_budget(cfg.lazy_solve_budget);
        outcomes.push(outcome(
            "RAMSIS-adaptive",
            run_one(profile, cfg, &arrivals, &mut scheme),
        ));
    }
    {
        let mut scheme = RamsisScheme::new(stale_set);
        outcomes.push(outcome(
            "RAMSIS-stale",
            run_one(profile, cfg, &arrivals, &mut scheme),
        ));
    }
    {
        let mut scheme = FixedModel::new(profile, profile.fastest_model());
        outcomes.push(outcome(
            "Fixed-fastest",
            run_one(profile, cfg, &arrivals, &mut scheme),
        ));
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::build_profile;
    use ramsis_profiles::Task;

    #[test]
    fn arrival_stream_is_deterministic_and_ordered() {
        let cfg = DriftConfig::default();
        let a = cfg.arrivals();
        let b = cfg.arrivals();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "arrivals sorted");
        // Roughly (base + mean(ramp) + peak) * phase queries.
        let expected =
            (cfg.base_qps + (cfg.base_qps + cfg.peak_qps) / 2.0 + cfg.peak_qps) * cfg.phase_s;
        assert!(
            (a.len() as f64) > expected * 0.8 && (a.len() as f64) < expected * 1.2,
            "got {} arrivals, expected about {expected}",
            a.len()
        );
    }

    #[test]
    fn adaptation_beats_stale_policies_under_drift() {
        // The PR's acceptance criterion: under the rate ramp +
        // dispersion shift, adaptive RAMSIS has a strictly lower
        // miss-or-shed rate than RAMSIS frozen on the initial regime's
        // policy set.
        let profile = build_profile(Task::ImageClassification, 0.15);
        let cfg = DriftConfig::default();
        let outcomes = run_drift(&profile, &cfg);
        assert_eq!(outcomes.len(), 3);
        let adaptive = &outcomes[0];
        let stale = &outcomes[1];
        assert_eq!(adaptive.method, "RAMSIS-adaptive");
        assert_eq!(stale.method, "RAMSIS-stale");
        assert!(
            adaptive.miss_or_loss_rate < stale.miss_or_loss_rate,
            "adaptive {} must beat stale {}",
            adaptive.miss_or_loss_rate,
            stale.miss_or_loss_rate
        );
        // The drift was actually detected and acted on.
        let stats = adaptive.report.adaptive.as_ref().expect("adaptive stats");
        assert!(stats.swaps >= 2, "ramp + burst should commit >= 2 swaps");
        assert!(!stats.regime_events.is_empty());
        assert!(stats.mean_detection_delay_s > 0.0);
        assert!(
            !stats.per_regime.is_empty(),
            "completions attributed to regimes"
        );
        // The stale run carries no adaptive accounting.
        assert!(stale.report.adaptive.is_none());
    }
}
