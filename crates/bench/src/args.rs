//! Minimal command-line handling shared by the experiment binaries.
//!
//! Flags mirror the paper artifact's scripts (`--task`, `--SLO`,
//! `--worker`, `--load`) plus `--full` to switch from the quick default
//! grids to the paper's grids, and `--out` to redirect the results
//! directory.

use std::path::PathBuf;

use ramsis_profiles::Task;

/// Parsed experiment flags.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentArgs {
    /// Use the paper's full parameter grids instead of the quick ones.
    pub full: bool,
    /// Restrict to one task (default: experiment-specific).
    pub task: Option<Task>,
    /// Override the latency SLO in milliseconds.
    pub slo_ms: Option<u64>,
    /// Override the worker count.
    pub workers: Option<usize>,
    /// Override the query load (QPS) for single-load experiments.
    pub load: Option<f64>,
    /// Output directory for JSON/CSV results.
    pub out_dir: PathBuf,
}

impl Default for ExperimentArgs {
    fn default() -> Self {
        Self {
            full: false,
            task: None,
            slo_ms: None,
            workers: None,
            load: None,
            out_dir: PathBuf::from("results"),
        }
    }
}

impl ExperimentArgs {
    /// Parses `std::env::args`, exiting with a usage message on error.
    pub fn parse() -> Self {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!(
                    "usage: [--full] [--task image|text] [--slo MS] [--workers N] \
                     [--load QPS] [--out DIR]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument list (testable core of [`Self::parse`]).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut value =
                |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
            match arg.as_str() {
                "--full" => out.full = true,
                "--task" => {
                    out.task = Some(match value("--task")?.as_str() {
                        "image" => Task::ImageClassification,
                        "text" => Task::TextClassification,
                        other => return Err(format!("unknown task {other:?}")),
                    })
                }
                "--slo" | "--SLO" => {
                    out.slo_ms = Some(
                        value("--slo")?
                            .parse()
                            .map_err(|e| format!("bad --slo: {e}"))?,
                    )
                }
                "--workers" | "--worker" => {
                    out.workers = Some(
                        value("--workers")?
                            .parse()
                            .map_err(|e| format!("bad --workers: {e}"))?,
                    )
                }
                "--load" => {
                    out.load = Some(
                        value("--load")?
                            .parse()
                            .map_err(|e| format!("bad --load: {e}"))?,
                    )
                }
                "--out" => out.out_dir = PathBuf::from(value("--out")?),
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(out)
    }

    /// The tasks this run covers: the `--task` restriction or both.
    pub fn tasks(&self) -> Vec<Task> {
        match self.task {
            Some(t) => vec![t],
            None => vec![Task::ImageClassification, Task::TextClassification],
        }
    }

    /// The SLOs (seconds) to evaluate for `task`: the `--slo` override,
    /// else all three paper SLOs in full mode, else just the tightest.
    pub fn slos_for(&self, task: Task) -> Vec<f64> {
        if let Some(ms) = self.slo_ms {
            return vec![ms as f64 / 1e3];
        }
        let all = task.paper_slos();
        if self.full {
            all.to_vec()
        } else {
            vec![all[0]]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<ExperimentArgs, String> {
        ExperimentArgs::parse_from(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert!(!a.full);
        assert_eq!(a.tasks().len(), 2);
        assert_eq!(a.out_dir, PathBuf::from("results"));
    }

    #[test]
    fn full_flags() {
        let a = parse(&[
            "--full",
            "--task",
            "image",
            "--slo",
            "300",
            "--workers",
            "60",
            "--load",
            "2400",
            "--out",
            "/tmp/r",
        ])
        .unwrap();
        assert!(a.full);
        assert_eq!(a.task, Some(Task::ImageClassification));
        assert_eq!(a.slo_ms, Some(300));
        assert_eq!(a.workers, Some(60));
        assert_eq!(a.load, Some(2400.0));
        assert_eq!(a.out_dir, PathBuf::from("/tmp/r"));
        assert_eq!(a.slos_for(Task::ImageClassification), vec![0.3]);
    }

    #[test]
    fn artifact_style_aliases() {
        let a = parse(&["--SLO", "200", "--worker", "20"]).unwrap();
        assert_eq!(a.slo_ms, Some(200));
        assert_eq!(a.workers, Some(20));
    }

    #[test]
    fn slo_defaults_by_mode() {
        let quick = parse(&[]).unwrap();
        assert_eq!(quick.slos_for(Task::ImageClassification), vec![0.15]);
        let full = parse(&["--full"]).unwrap();
        assert_eq!(full.slos_for(Task::TextClassification), vec![0.1, 0.2, 0.3]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse(&["--task", "audio"]).is_err());
        assert!(parse(&["--slo"]).is_err());
        assert!(parse(&["--wat"]).is_err());
        assert!(parse(&["--workers", "x"]).is_err());
    }
}
