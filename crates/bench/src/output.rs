//! Terminal tables, ASCII plots, and result-file writers.
//!
//! Every experiment binary prints the paper-shaped rows to the terminal
//! and persists them under `results/` as JSON (exact values) and CSV
//! (spreadsheet-friendly).

use std::fs;
use std::path::Path;

use serde::Serialize;

/// Renders a fixed-width table: a header row and data rows.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    for (i, r) in rows.iter().enumerate() {
        assert_eq!(r.len(), header.len(), "row {i} width mismatch");
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (cell, w) in cells.iter().zip(widths) {
            line.push_str(&format!("{cell:>w$}  "));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    out.push_str(&"-".repeat(total.saturating_sub(2)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders an ASCII scatter/line plot of several series.
///
/// Each series is `(label, points)`; points are `(x, y)`. Series are
/// drawn with distinct markers (the first letter of the label, or a
/// fallback symbol). Returns an empty string when no finite point
/// exists.
pub fn ascii_plot(series: &[(String, Vec<(f64, f64)>)], width: usize, height: usize) -> String {
    const MARKERS: &[char] = &['R', 'J', 'M', 'I', 'S', 'x', 'o', '+', '*', '#'];
    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, p)| p.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if pts.is_empty() || width < 16 || height < 4 {
        return String::new();
    }
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &pts {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    if (x1 - x0).abs() < 1e-12 {
        x1 = x0 + 1.0;
    }
    if (y1 - y0).abs() < 1e-12 {
        y1 = y0 + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, points)) in series.iter().enumerate() {
        let marker = MARKERS[si % MARKERS.len()];
        for &(x, y) in points {
            if !(x.is_finite() && y.is_finite()) {
                continue;
            }
            let cx = (((x - x0) / (x1 - x0)) * (width as f64 - 1.0)).round() as usize;
            let cy = (((y - y0) / (y1 - y0)) * (height as f64 - 1.0)).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            let col = cx.min(width - 1);
            grid[row][col] = marker;
        }
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let y_label = if i == 0 {
            format!("{y1:>9.2}")
        } else if i == height - 1 {
            format!("{y0:>9.2}")
        } else {
            " ".repeat(9)
        };
        out.push_str(&y_label);
        out.push_str(" |");
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(9));
    out.push_str(" +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "{:>11}{:<w$}{:>8}\n",
        format!("{x0:.0}"),
        "",
        format!("{x1:.0}"),
        w = width.saturating_sub(8)
    ));
    for (si, (label, _)) in series.iter().enumerate() {
        out.push_str(&format!("  {} = {label}\n", MARKERS[si % MARKERS.len()]));
    }
    out
}

/// Writes a serializable value as pretty JSON under `dir/name.json`.
///
/// # Panics
///
/// Panics if the directory cannot be created or the file written —
/// experiment binaries have nothing useful to do on IO failure.
pub fn write_json<T: Serialize>(dir: &Path, name: &str, value: &T) {
    fs::create_dir_all(dir).expect("create results directory");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize results");
    fs::write(&path, json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("wrote {}", path.display());
}

/// Writes rows as CSV under `dir/name.csv`.
///
/// # Panics
///
/// See [`write_json`]; also panics on a row-width mismatch.
pub fn write_csv(dir: &Path, name: &str, header: &[&str], rows: &[Vec<String>]) {
    fs::create_dir_all(dir).expect("create results directory");
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row.len(), header.len(), "row {i} width mismatch");
        let escaped: Vec<String> = row
            .iter()
            .map(|c| {
                if c.contains(',') || c.contains('"') {
                    format!("\"{}\"", c.replace('"', "\"\""))
                } else {
                    c.clone()
                }
            })
            .collect();
        out.push_str(&escaped.join(","));
        out.push('\n');
    }
    let path = dir.join(format!("{name}.csv"));
    fs::write(&path, out).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["load", "accuracy"],
            &[
                vec!["400".into(), "84.23".into()],
                vec!["4000".into(), "60.55".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("load"));
        assert!(lines[2].ends_with("84.23"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn table_rejects_ragged_rows() {
        let _ = render_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn plot_contains_markers_and_legend() {
        let series = vec![
            ("RAMSIS".to_string(), vec![(0.0, 1.0), (1.0, 2.0)]),
            ("Jellyfish".to_string(), vec![(0.0, 0.5), (1.0, 1.0)]),
        ];
        let p = ascii_plot(&series, 40, 10);
        assert!(p.contains('R'));
        assert!(p.contains('J'));
        assert!(p.contains("= RAMSIS"));
    }

    #[test]
    fn plot_handles_degenerate_input() {
        assert_eq!(ascii_plot(&[], 40, 10), "");
        let flat = vec![("x".to_string(), vec![(1.0, 5.0), (1.0, 5.0)])];
        let p = ascii_plot(&flat, 40, 10);
        assert!(p.contains('x'));
    }

    #[test]
    fn csv_escapes_commas() {
        let dir = std::env::temp_dir().join("ramsis_bench_test_csv");
        write_csv(
            &dir,
            "t",
            &["a", "b"],
            &[vec!["x,y".into(), "plain".into()]],
        );
        let content = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert!(content.contains("\"x,y\",plain"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_round_trips() {
        let dir = std::env::temp_dir().join("ramsis_bench_test_json");
        write_json(&dir, "t", &vec![1, 2, 3]);
        let content = std::fs::read_to_string(dir.join("t.json")).unwrap();
        let back: Vec<i32> = serde_json::from_str(&content).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
