//! Exact MDP solution methods.
//!
//! The paper generates model-selection policies with value iteration
//! (§4.1), noting that "other exact solution methods, like policy
//! iteration, may be used". All three classic exact methods are provided:
//!
//! - [`value_iteration`]: discounted, with span-seminorm stopping, which
//!   terminates within `ε` of the optimal policy's value rather than of
//!   the value estimate (Puterman §6.6).
//! - [`policy_iteration`]: modified policy iteration with an iterative
//!   inner evaluation — for sparse million-transition MDPs this often
//!   converges in a handful of policy improvements.
//! - [`relative_value_iteration`]: the average-reward criterion, natural
//!   for the non-terminating serving loop; exposed for ablations.

use std::time::Instant;

use ramsis_telemetry::{Phase, Profiler, SolverProfile};
use serde::{Deserialize, Serialize};

use crate::model::SparseMdp;

/// One sweep of an iterative solver, as recorded by the traced
/// variants ([`value_iteration_traced`],
/// [`value_iteration_gauss_seidel_traced`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepRecord {
    /// 1-based sweep number.
    pub sweep: u32,
    /// Sup-norm of the value update after the sweep.
    pub residual: f64,
    /// States backed up in the sweep.
    pub states: u64,
    /// Wall-clock time of the sweep, seconds.
    pub elapsed_s: f64,
}

/// Per-sweep convergence record of one solve — makes offline solve
/// cost visible (sweeps to convergence, residual decay, time per
/// sweep). Wall-clock timing is fine here: solves run offline, never
/// on the simulated clock, so traces don't perturb simulation
/// determinism.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ConvergenceTrace {
    /// Solver name (e.g. `"value-iteration"`).
    pub method: String,
    /// Whether the residual crossed the stopping threshold (false when
    /// the sweep cap was hit first).
    pub converged: bool,
    /// Total wall-clock solve time, seconds.
    pub total_s: f64,
    /// Every sweep, in order.
    pub sweeps: Vec<SweepRecord>,
}

impl ConvergenceTrace {
    fn new(method: &str) -> Self {
        Self {
            method: method.to_owned(),
            ..Self::default()
        }
    }

    /// Residual after the last sweep (`INFINITY` when no sweep ran).
    pub fn final_residual(&self) -> f64 {
        self.sweeps.last().map_or(f64::INFINITY, |s| s.residual)
    }

    /// Total states backed up across all sweeps.
    pub fn states_touched(&self) -> u64 {
        self.sweeps.iter().map(|s| s.states).sum()
    }

    /// Summarizes the trace as a [`SolverProfile`] for
    /// [`Profiler::record_solver`] — the bridge between the solver's
    /// per-sweep record and the profiling layer's flat report.
    pub fn profile(&self) -> SolverProfile {
        let sweeps = self.sweeps.len() as u64;
        SolverProfile {
            method: self.method.clone(),
            converged: self.converged,
            sweeps,
            states_touched: self.states_touched(),
            total_s: self.total_s,
            mean_sweep_s: if sweeps == 0 {
                0.0
            } else {
                self.sweeps.iter().map(|s| s.elapsed_s).sum::<f64>() / sweeps as f64
            },
            max_sweep_s: self.sweeps.iter().map(|s| s.elapsed_s).fold(0.0, f64::max),
            final_residual: self.final_residual(),
        }
    }
}

/// Options shared by the solvers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveOptions {
    /// Discount factor `γ ∈ (0, 1)` for the discounted criterion.
    pub discount: f64,
    /// Convergence threshold on the span seminorm of the value update.
    pub tolerance: f64,
    /// Hard cap on sweeps, guarding against configuration mistakes.
    pub max_iterations: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        Self {
            discount: 0.99,
            tolerance: 1e-9,
            max_iterations: 100_000,
        }
    }
}

/// The result of solving an MDP.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Optimal value per state (differential values for the
    /// average-reward criterion).
    pub values: Vec<f64>,
    /// Chosen global action index per state.
    pub policy: Vec<usize>,
    /// Number of sweeps performed.
    pub iterations: usize,
    /// Final span seminorm of the last update.
    pub residual: f64,
    /// Average reward per epoch (only set by relative value iteration).
    pub gain: Option<f64>,
}

fn span(delta_min: f64, delta_max: f64) -> f64 {
    delta_max - delta_min
}

/// Solves the discounted MDP by value iteration.
///
/// Iterates `v ← max_a [r(s, a) + γ Σ P v]` until the sup norm of the
/// update falls below `tolerance · (1 − γ) / (2γ)`, the classic bound
/// guaranteeing `‖v − v*‖∞ ≤ tolerance / 2` and an `ε`-optimal greedy
/// policy (Puterman, Thm. 6.3.1), then extracts the greedy policy.
///
/// # Panics
///
/// Panics if `discount` is outside `(0, 1)` or `tolerance` is not
/// positive.
pub fn value_iteration(mdp: &SparseMdp, options: &SolveOptions) -> Solution {
    value_iteration_impl(mdp, options, None)
}

/// [`value_iteration`] with a per-sweep [`ConvergenceTrace`]. The
/// returned solution is bit-identical to the untraced one (tracing
/// only observes, never steers).
pub fn value_iteration_traced(
    mdp: &SparseMdp,
    options: &SolveOptions,
) -> (Solution, ConvergenceTrace) {
    let mut trace = ConvergenceTrace::new("value-iteration");
    let solution = value_iteration_impl(mdp, options, Some(&mut trace));
    (solution, trace)
}

/// [`value_iteration`] timed under the profiler's `solve` phase, with
/// the per-sweep trace folded into the profile
/// ([`ConvergenceTrace::profile`]). With the profiler disabled this is
/// exactly [`value_iteration`]: no trace is collected and the returned
/// solution is bit-identical.
pub fn value_iteration_profiled(
    mdp: &SparseMdp,
    options: &SolveOptions,
    prof: &mut Profiler,
) -> Solution {
    if !prof.is_on() {
        return value_iteration(mdp, options);
    }
    prof.enter(Phase::Solve);
    let (solution, trace) = value_iteration_traced(mdp, options);
    prof.record_solver(trace.profile());
    prof.exit(Phase::Solve);
    solution
}

fn value_iteration_impl(
    mdp: &SparseMdp,
    options: &SolveOptions,
    mut trace: Option<&mut ConvergenceTrace>,
) -> Solution {
    assert!(
        options.discount > 0.0 && options.discount < 1.0,
        "discount must lie in (0, 1), got {}",
        options.discount
    );
    assert!(
        options.tolerance > 0.0,
        "tolerance must be positive, got {}",
        options.tolerance
    );
    let n = mdp.n_states();
    let mut values = vec![0.0; n];
    let mut next = vec![0.0; n];
    let stop = options.tolerance * (1.0 - options.discount) / (2.0 * options.discount);
    let mut residual = f64::INFINITY;
    let mut iterations = 0;
    let solve_start = trace.is_some().then(Instant::now);
    while iterations < options.max_iterations {
        let sweep_start = trace.is_some().then(Instant::now);
        let mut max_delta = 0.0f64;
        for s in 0..n {
            let (v, _) = mdp.bellman_backup(s, &values, options.discount);
            max_delta = max_delta.max((v - values[s]).abs());
            next[s] = v;
        }
        std::mem::swap(&mut values, &mut next);
        iterations += 1;
        residual = max_delta;
        if let Some(t) = trace.as_deref_mut() {
            t.sweeps.push(SweepRecord {
                sweep: iterations as u32,
                residual,
                states: n as u64,
                elapsed_s: sweep_start
                    .expect("timed with trace")
                    .elapsed()
                    .as_secs_f64(),
            });
        }
        if residual < stop {
            break;
        }
    }
    if let Some(t) = trace {
        t.converged = residual < stop;
        t.total_s = solve_start
            .expect("timed with trace")
            .elapsed()
            .as_secs_f64();
    }
    let policy = greedy_policy(mdp, &values, options.discount);
    Solution {
        values,
        policy,
        iterations,
        residual,
        gain: None,
    }
}

/// Solves the discounted MDP by Gauss–Seidel value iteration: backups
/// within a sweep use the already-updated values of earlier states,
/// which typically cuts the sweep count roughly in half versus the
/// Jacobi variant ([`value_iteration`]) while converging to the same
/// fixed point.
///
/// # Panics
///
/// Panics on the same invalid options as [`value_iteration`].
pub fn value_iteration_gauss_seidel(mdp: &SparseMdp, options: &SolveOptions) -> Solution {
    value_iteration_gauss_seidel_impl(mdp, options, None)
}

/// [`value_iteration_gauss_seidel`] with a per-sweep
/// [`ConvergenceTrace`]. The returned solution is bit-identical to the
/// untraced one.
pub fn value_iteration_gauss_seidel_traced(
    mdp: &SparseMdp,
    options: &SolveOptions,
) -> (Solution, ConvergenceTrace) {
    let mut trace = ConvergenceTrace::new("gauss-seidel");
    let solution = value_iteration_gauss_seidel_impl(mdp, options, Some(&mut trace));
    (solution, trace)
}

/// [`value_iteration_gauss_seidel`] timed under the profiler's `solve`
/// phase (see [`value_iteration_profiled`]).
pub fn value_iteration_gauss_seidel_profiled(
    mdp: &SparseMdp,
    options: &SolveOptions,
    prof: &mut Profiler,
) -> Solution {
    if !prof.is_on() {
        return value_iteration_gauss_seidel(mdp, options);
    }
    prof.enter(Phase::Solve);
    let (solution, trace) = value_iteration_gauss_seidel_traced(mdp, options);
    prof.record_solver(trace.profile());
    prof.exit(Phase::Solve);
    solution
}

fn value_iteration_gauss_seidel_impl(
    mdp: &SparseMdp,
    options: &SolveOptions,
    mut trace: Option<&mut ConvergenceTrace>,
) -> Solution {
    assert!(
        options.discount > 0.0 && options.discount < 1.0,
        "discount must lie in (0, 1), got {}",
        options.discount
    );
    assert!(
        options.tolerance > 0.0,
        "tolerance must be positive, got {}",
        options.tolerance
    );
    let n = mdp.n_states();
    let mut values = vec![0.0; n];
    let stop = options.tolerance * (1.0 - options.discount) / (2.0 * options.discount);
    let mut residual = f64::INFINITY;
    let mut iterations = 0;
    let solve_start = trace.is_some().then(Instant::now);
    while iterations < options.max_iterations {
        let sweep_start = trace.is_some().then(Instant::now);
        let mut max_delta = 0.0f64;
        for s in 0..n {
            let (v, _) = mdp.bellman_backup(s, &values, options.discount);
            max_delta = max_delta.max((v - values[s]).abs());
            values[s] = v;
        }
        iterations += 1;
        residual = max_delta;
        if let Some(t) = trace.as_deref_mut() {
            t.sweeps.push(SweepRecord {
                sweep: iterations as u32,
                residual,
                states: n as u64,
                elapsed_s: sweep_start
                    .expect("timed with trace")
                    .elapsed()
                    .as_secs_f64(),
            });
        }
        if residual < stop {
            break;
        }
    }
    if let Some(t) = trace {
        t.converged = residual < stop;
        t.total_s = solve_start
            .expect("timed with trace")
            .elapsed()
            .as_secs_f64();
    }
    let policy = greedy_policy(mdp, &values, options.discount);
    Solution {
        values,
        policy,
        iterations,
        residual,
        gain: None,
    }
}

/// Extracts the greedy policy with respect to `values`.
pub fn greedy_policy(mdp: &SparseMdp, values: &[f64], discount: f64) -> Vec<usize> {
    (0..mdp.n_states())
        .map(|s| mdp.bellman_backup(s, values, discount).1)
        .collect()
}

/// Solves the discounted MDP by policy iteration with iterative
/// evaluation.
///
/// Alternates full policy evaluation (iterative sweeps to within
/// `options.tolerance`, capped at `eval_sweeps` sweeps per round) with
/// greedy improvement, terminating when the policy is stable. Converges
/// to the same optimal policy as [`value_iteration`], typically in a
/// handful of (more expensive) outer iterations. On return, `values` is
/// the evaluation of the final policy.
pub fn policy_iteration(mdp: &SparseMdp, options: &SolveOptions, eval_sweeps: usize) -> Solution {
    assert!(
        options.discount > 0.0 && options.discount < 1.0,
        "discount must lie in (0, 1), got {}",
        options.discount
    );
    let n = mdp.n_states();
    let mut values = vec![0.0; n];
    let mut policy = greedy_policy(mdp, &values, options.discount);
    let mut iterations = 0;
    let mut residual = f64::INFINITY;
    let eval_stop = options.tolerance * (1.0 - options.discount) / (2.0 * options.discount);
    while iterations < options.max_iterations {
        // Policy evaluation (Gauss–Seidel sweeps, in place).
        for _ in 0..eval_sweeps.max(1) {
            let mut max_delta = 0.0f64;
            for s in 0..n {
                let v = mdp.q_value(policy[s], &values, options.discount);
                max_delta = max_delta.max((v - values[s]).abs());
                values[s] = v;
            }
            residual = max_delta;
            if max_delta < eval_stop {
                break;
            }
        }
        // Greedy improvement.
        let improved = greedy_policy(mdp, &values, options.discount);
        iterations += 1;
        if improved == policy {
            break;
        }
        policy = improved;
    }
    Solution {
        values,
        policy,
        iterations,
        residual,
        gain: None,
    }
}

/// Solves the average-reward MDP by relative value iteration.
///
/// Iterates `h ← B h − (B h)(s₀)` where `B` is the undiscounted Bellman
/// operator and `s₀` is a reference state. On convergence, `(B h)(s₀)` is
/// the optimal gain (average reward per epoch). A small damping mix keeps
/// periodic chains from oscillating.
///
/// `options.discount` is ignored.
pub fn relative_value_iteration(mdp: &SparseMdp, options: &SolveOptions) -> Solution {
    let n = mdp.n_states();
    let mut h = vec![0.0; n];
    let mut next = vec![0.0; n];
    let mut gain = 0.0;
    let mut iterations = 0;
    let mut residual = f64::INFINITY;
    // Damping for periodic chains: h ← (1−τ) h + τ (B h − gain).
    const TAU: f64 = 0.9;
    while iterations < options.max_iterations {
        let mut delta_min = f64::INFINITY;
        let mut delta_max = f64::NEG_INFINITY;
        for (s, slot) in next.iter_mut().enumerate() {
            let (v, _) = mdp.bellman_backup(s, &h, 1.0);
            *slot = v;
        }
        gain = next[0];
        for s in 0..n {
            let updated = (1.0 - TAU) * h[s] + TAU * (next[s] - gain);
            let d = updated - h[s];
            delta_min = delta_min.min(d);
            delta_max = delta_max.max(d);
            h[s] = updated;
        }
        iterations += 1;
        residual = span(delta_min, delta_max);
        if residual < options.tolerance {
            break;
        }
    }
    let policy = greedy_policy(mdp, &h, 1.0);
    Solution {
        values: h,
        policy,
        iterations,
        residual,
        gain: Some(gain),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MdpBuilder;

    /// A two-state chain with a known closed-form optimum.
    ///
    /// State 0: action A (reward 0, go to 1) or action B (reward 0.3,
    /// stay). State 1: single action (reward 1, stay). With γ close to 1
    /// the optimal play in state 0 is A (invest to reach the absorbing
    /// reward-1 state); with γ close to 0 it is B (take the immediate
    /// 0.3).
    fn invest_mdp() -> SparseMdp {
        let mut b = MdpBuilder::new(2);
        b.start_state();
        b.add_action(0, &[(1, 1.0, 0.0)]); // invest
        b.add_action(1, &[(0, 1.0, 0.3)]); // consume
        b.start_state();
        b.add_action(2, &[(1, 1.0, 1.0)]);
        b.build().unwrap()
    }

    #[test]
    fn value_iteration_closed_form() {
        let mdp = invest_mdp();
        let gamma = 0.9;
        let sol = value_iteration(
            &mdp,
            &SolveOptions {
                discount: gamma,
                tolerance: 1e-10,
                max_iterations: 100_000,
            },
        );
        // v(1) = 1 / (1 − γ) = 10; v(0) = γ · v(1) = 9 (investing beats
        // consuming: 0.3 + γ v(0) = 0.3/(1−γ) = 3).
        assert!((sol.values[1] - 10.0).abs() < 1e-6, "v1={}", sol.values[1]);
        assert!((sol.values[0] - 9.0).abs() < 1e-6, "v0={}", sol.values[0]);
        assert_eq!(mdp.action_label(sol.policy[0]), 0);
    }

    #[test]
    fn value_iteration_prefers_immediate_reward_when_myopic() {
        let mdp = invest_mdp();
        let sol = value_iteration(
            &mdp,
            &SolveOptions {
                discount: 0.2,
                tolerance: 1e-10,
                max_iterations: 100_000,
            },
        );
        // 0.3 / (1 − 0.2) = 0.375 beats γ/(1−γ)·... investing: γ·v1 = 0.2·1.25 = 0.25.
        assert_eq!(mdp.action_label(sol.policy[0]), 1);
    }

    #[test]
    fn gauss_seidel_matches_jacobi_with_fewer_sweeps() {
        let mdp = invest_mdp();
        let opts = SolveOptions {
            discount: 0.95,
            tolerance: 1e-10,
            max_iterations: 100_000,
        };
        let jacobi = value_iteration(&mdp, &opts);
        let gs = value_iteration_gauss_seidel(&mdp, &opts);
        assert_eq!(jacobi.policy, gs.policy);
        for (a, b) in jacobi.values.iter().zip(&gs.values) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
        assert!(
            gs.iterations <= jacobi.iterations,
            "GS {} vs Jacobi {}",
            gs.iterations,
            jacobi.iterations
        );
    }

    #[test]
    fn policy_iteration_matches_value_iteration() {
        let mdp = invest_mdp();
        let opts = SolveOptions {
            discount: 0.95,
            tolerance: 1e-10,
            max_iterations: 100_000,
        };
        let vi = value_iteration(&mdp, &opts);
        let pi = policy_iteration(&mdp, &opts, 5_000);
        assert_eq!(vi.policy, pi.policy);
        for (a, b) in vi.values.iter().zip(&pi.values) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
        assert!(pi.iterations <= vi.iterations);
    }

    #[test]
    fn relative_value_iteration_gain() {
        // Deterministic cycle 0 → 1 → 0 with rewards 0 and 1: gain 0.5.
        let mut b = MdpBuilder::new(2);
        b.start_state();
        b.add_action(0, &[(1, 1.0, 0.0)]);
        b.start_state();
        b.add_action(1, &[(0, 1.0, 1.0)]);
        let mdp = b.build().unwrap();
        let sol = relative_value_iteration(
            &mdp,
            &SolveOptions {
                discount: 0.99,
                tolerance: 1e-12,
                max_iterations: 200_000,
            },
        );
        let gain = sol.gain.expect("RVI reports gain");
        assert!((gain - 0.5).abs() < 1e-6, "gain={gain}");
    }

    #[test]
    fn relative_vi_agrees_with_high_discount_vi_on_policy() {
        let mdp = invest_mdp();
        let rvi = relative_value_iteration(&mdp, &SolveOptions::default());
        let vi = value_iteration(
            &mdp,
            &SolveOptions {
                discount: 0.999,
                ..SolveOptions::default()
            },
        );
        let rvi_labels: Vec<_> = rvi.policy.iter().map(|&a| mdp.action_label(a)).collect();
        let vi_labels: Vec<_> = vi.policy.iter().map(|&a| mdp.action_label(a)).collect();
        assert_eq!(rvi_labels, vi_labels);
    }

    #[test]
    fn value_iteration_handles_stochastic_transitions() {
        // Gambler-style state: win/lose with p = 0.5.
        let mut b = MdpBuilder::new(3);
        b.start_state();
        b.add_action(0, &[(1, 0.5, 0.0), (2, 0.5, 0.0)]);
        b.start_state();
        b.add_action(1, &[(1, 1.0, 1.0)]);
        b.start_state();
        b.add_action(2, &[(2, 1.0, 0.0)]);
        let mdp = b.build().unwrap();
        let sol = value_iteration(
            &mdp,
            &SolveOptions {
                discount: 0.5,
                tolerance: 1e-12,
                max_iterations: 100_000,
            },
        );
        // v1 = 1/(1 − 0.5) = 2, v2 = 0, v0 = 0.5(0.5·2 + 0.5·0) = 0.5.
        assert!((sol.values[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "discount must lie in (0, 1)")]
    fn value_iteration_rejects_bad_discount() {
        let mdp = invest_mdp();
        let _ = value_iteration(
            &mdp,
            &SolveOptions {
                discount: 1.0,
                ..SolveOptions::default()
            },
        );
    }

    #[test]
    fn traced_solution_is_identical_to_untraced() {
        let mdp = invest_mdp();
        let opts = SolveOptions {
            discount: 0.95,
            tolerance: 1e-10,
            max_iterations: 100_000,
        };
        let plain = value_iteration(&mdp, &opts);
        let (traced, trace) = value_iteration_traced(&mdp, &opts);
        assert_eq!(plain, traced, "tracing must not perturb the solve");
        assert_eq!(trace.method, "value-iteration");
        assert!(trace.converged);
        assert_eq!(trace.sweeps.len(), traced.iterations);
        assert_eq!(trace.final_residual(), traced.residual);
        assert_eq!(
            trace.states_touched(),
            (traced.iterations * mdp.n_states()) as u64
        );
        // Sweep numbers are 1-based and contiguous.
        for (i, s) in trace.sweeps.iter().enumerate() {
            assert_eq!(s.sweep as usize, i + 1);
            assert_eq!(s.states, mdp.n_states() as u64);
            assert!(s.elapsed_s >= 0.0);
        }
        // Geometric convergence: the residual must shrink overall.
        assert!(trace.final_residual() < trace.sweeps[0].residual);

        let plain_gs = value_iteration_gauss_seidel(&mdp, &opts);
        let (traced_gs, trace_gs) = value_iteration_gauss_seidel_traced(&mdp, &opts);
        assert_eq!(plain_gs, traced_gs);
        assert_eq!(trace_gs.method, "gauss-seidel");
        assert!(trace_gs.converged);
        assert_eq!(trace_gs.sweeps.len(), traced_gs.iterations);
    }

    #[test]
    fn trace_reports_nonconvergence_at_sweep_cap() {
        let mdp = invest_mdp();
        let (sol, trace) = value_iteration_traced(
            &mdp,
            &SolveOptions {
                discount: 0.999_9,
                tolerance: 1e-15,
                max_iterations: 7,
            },
        );
        assert_eq!(sol.iterations, 7);
        assert!(!trace.converged, "cap hit before tolerance");
        assert_eq!(trace.sweeps.len(), 7);
    }

    #[test]
    fn empty_trace_final_residual_is_infinite() {
        let t = ConvergenceTrace::new("value-iteration");
        assert_eq!(t.final_residual(), f64::INFINITY);
        assert_eq!(t.states_touched(), 0);
    }

    #[test]
    fn convergence_trace_serde_round_trip() {
        let mdp = invest_mdp();
        let (_, trace) = value_iteration_traced(&mdp, &SolveOptions::default());
        let json = serde_json::to_string(&trace).unwrap();
        let back: ConvergenceTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn iteration_cap_is_respected() {
        let mdp = invest_mdp();
        let sol = value_iteration(
            &mdp,
            &SolveOptions {
                discount: 0.999_9,
                tolerance: 1e-15,
                max_iterations: 7,
            },
        );
        assert_eq!(sol.iterations, 7);
    }
}
