//! Generic finite Markov decision processes and exact solution methods.
//!
//! RAMSIS formulates per-worker model selection as a discrete-time MDP
//! (paper §4) and solves it with an exact method — value iteration — to
//! obtain an optimal model-selection policy (§4.1). This crate provides
//! that machinery in domain-agnostic form:
//!
//! - [`model::SparseMdp`]: a validated, CSR-packed `(S, A, P_a, R_a)`
//!   tuple. RAMSIS transition rows are sparse (arrival counts concentrate
//!   around the mean), so sparse storage keeps million-transition MDPs in
//!   tens of megabytes.
//! - [`solve`]: discounted value iteration with sup-norm stopping,
//!   modified policy iteration, and relative value iteration for the
//!   average-reward criterion (the paper cites both Puterman \[36\] and the
//!   semi-MDP literature \[8\]).
//! - [`analysis`]: policy evaluation and the stationary distribution of
//!   the induced Markov chain via power iteration — the ingredient of the
//!   paper's §5.1 accuracy/latency guarantees.
//!
//! The crate has no RAMSIS-specific knowledge; `ramsis-core` builds the
//! worker MDP on top of it, and the unit tests here use classic textbook
//! chains.

pub mod analysis;
pub mod model;
pub mod solve;

pub use analysis::{evaluate_policy, stationary_distribution, StationaryOptions};
pub use model::{MdpBuilder, MdpError, SparseMdp};
pub use solve::{
    policy_iteration, relative_value_iteration, value_iteration, value_iteration_gauss_seidel,
    value_iteration_gauss_seidel_profiled, value_iteration_gauss_seidel_traced,
    value_iteration_profiled, value_iteration_traced, ConvergenceTrace, Solution, SolveOptions,
    SweepRecord,
};
