//! Sparse MDP representation and validating builder.
//!
//! An MDP is the tuple `(S, A, P_a, R_a)` of paper §4. States and actions
//! are dense indices assigned by the caller; each action carries an opaque
//! `u64` label so the caller can recover its domain meaning (RAMSIS packs
//! `(model, batch)` pairs into it). Rewards are reduced at build time to
//! the expected immediate reward `r(s, a) = Σ_{s'} P_a(s, s') R_a(s, s')`,
//! which is equivalent for every exact solution method used here.
//!
//! Storage is CSR-like: one flat transition array indexed by per-action
//! ranges, one flat action array indexed by per-state ranges.

use serde::{Deserialize, Serialize};

/// Tolerance for "transition row sums to one" validation.
const ROW_SUM_TOLERANCE: f64 = 1e-6;

/// Errors produced while assembling or validating an MDP.
#[derive(Debug, Clone, PartialEq)]
pub enum MdpError {
    /// A state was declared with no available action.
    StateWithoutActions {
        /// Index of the offending state.
        state: usize,
    },
    /// A transition referenced a state index out of range.
    BadTargetState {
        /// Index of the source state.
        state: usize,
        /// Target index that was out of range.
        target: usize,
        /// Number of states in the MDP.
        n_states: usize,
    },
    /// A transition had a negative, NaN, or infinite probability.
    BadProbability {
        /// Index of the source state.
        state: usize,
        /// The offending probability.
        prob: f64,
    },
    /// A transition row's probabilities did not sum to one.
    RowSumMismatch {
        /// Index of the source state.
        state: usize,
        /// Label of the offending action.
        action_label: u64,
        /// The actual row sum.
        sum: f64,
    },
    /// The MDP has no states.
    Empty,
}

impl std::fmt::Display for MdpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MdpError::StateWithoutActions { state } => {
                write!(f, "state {state} has no actions")
            }
            MdpError::BadTargetState {
                state,
                target,
                n_states,
            } => write!(
                f,
                "state {state} has a transition to {target}, but there are only {n_states} states"
            ),
            MdpError::BadProbability { state, prob } => {
                write!(f, "state {state} has a transition with invalid probability {prob}")
            }
            MdpError::RowSumMismatch {
                state,
                action_label,
                sum,
            } => write!(
                f,
                "state {state}, action {action_label}: transition probabilities sum to {sum}, expected 1"
            ),
            MdpError::Empty => write!(f, "MDP has no states"),
        }
    }
}

impl std::error::Error for MdpError {}

/// Incrementally assembles a [`SparseMdp`], validating on `build`.
///
/// # Examples
///
/// ```
/// use ramsis_mdp::MdpBuilder;
///
/// // Two states; action 0 flips, action 1 stays (reward 1 in state 1).
/// let mut b = MdpBuilder::new(2);
/// b.start_state();
/// b.add_action(0, &[(1, 1.0, 0.0)]);
/// b.start_state();
/// b.add_action(1, &[(1, 1.0, 1.0)]);
/// let mdp = b.build().unwrap();
/// assert_eq!(mdp.n_states(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct MdpBuilder {
    n_states: usize,
    state_action_start: Vec<usize>,
    action_labels: Vec<u64>,
    action_trans_start: Vec<usize>,
    action_reward: Vec<f64>,
    trans_to: Vec<u32>,
    trans_prob: Vec<f64>,
    /// Whether to rescale near-miss rows instead of rejecting them.
    normalize_rows: bool,
}

impl MdpBuilder {
    /// Creates a builder for an MDP with `n_states` states.
    ///
    /// States must then be emitted in index order via [`Self::start_state`]
    /// followed by one or more [`Self::add_action`] calls each.
    pub fn new(n_states: usize) -> Self {
        Self {
            n_states,
            state_action_start: Vec::with_capacity(n_states + 1),
            action_labels: Vec::new(),
            action_trans_start: vec![0],
            action_reward: Vec::new(),
            trans_to: Vec::new(),
            trans_prob: Vec::new(),
            normalize_rows: false,
        }
    }

    /// Rescale rows whose sum deviates from one by more than the strict
    /// tolerance but less than `slack`, instead of rejecting.
    ///
    /// RAMSIS uses this with the truncation slack of its Poisson tables:
    /// tail mass below 1e-9 per row is renormalized away rather than
    /// rejected.
    pub fn normalize_rows(&mut self, enable: bool) -> &mut Self {
        self.normalize_rows = enable;
        self
    }

    /// Begins the next state (states are implicitly indexed 0, 1, ...).
    ///
    /// # Panics
    ///
    /// Panics if more than `n_states` states are started.
    pub fn start_state(&mut self) -> usize {
        assert!(
            self.state_action_start.len() < self.n_states,
            "started more states than declared ({})",
            self.n_states
        );
        self.state_action_start.push(self.action_labels.len());
        self.state_action_start.len() - 1
    }

    /// Adds an action to the current state.
    ///
    /// `transitions` is a slice of `(target_state, probability, reward)`
    /// triples. Zero-probability entries are dropped.
    ///
    /// # Panics
    ///
    /// Panics if called before any [`Self::start_state`].
    pub fn add_action(&mut self, label: u64, transitions: &[(usize, f64, f64)]) {
        assert!(
            !self.state_action_start.is_empty(),
            "add_action called before start_state"
        );
        self.action_labels.push(label);
        let mut expected_reward = 0.0;
        for &(to, prob, reward) in transitions {
            if prob == 0.0 {
                continue;
            }
            self.trans_to.push(to as u32);
            self.trans_prob.push(prob);
            expected_reward += prob * reward;
        }
        self.action_reward.push(expected_reward);
        self.action_trans_start.push(self.trans_to.len());
    }

    /// Validates and freezes the MDP.
    ///
    /// # Errors
    ///
    /// Returns an [`MdpError`] if any state lacks actions, a transition
    /// targets an out-of-range state, probabilities are invalid, or a row
    /// does not sum to one (beyond the normalization slack when enabled).
    pub fn build(mut self) -> Result<SparseMdp, MdpError> {
        if self.n_states == 0 {
            return Err(MdpError::Empty);
        }
        assert_eq!(
            self.state_action_start.len(),
            self.n_states,
            "declared {} states but started {}",
            self.n_states,
            self.state_action_start.len()
        );
        self.state_action_start.push(self.action_labels.len());

        // Per-state action presence.
        for s in 0..self.n_states {
            if self.state_action_start[s] == self.state_action_start[s + 1] {
                return Err(MdpError::StateWithoutActions { state: s });
            }
        }
        // Per-transition validity.
        for (i, (&to, &prob)) in self.trans_to.iter().zip(&self.trans_prob).enumerate() {
            let state = self.state_of_transition(i);
            if (to as usize) >= self.n_states {
                return Err(MdpError::BadTargetState {
                    state,
                    target: to as usize,
                    n_states: self.n_states,
                });
            }
            if !prob.is_finite() || prob < 0.0 {
                return Err(MdpError::BadProbability { state, prob });
            }
        }
        // Row sums (with optional renormalization of truncation slack).
        for a in 0..self.action_labels.len() {
            let range = self.action_trans_start[a]..self.action_trans_start[a + 1];
            let sum: f64 = self.trans_prob[range.clone()].iter().sum();
            if (sum - 1.0).abs() > ROW_SUM_TOLERANCE {
                let state = self.state_of_action(a);
                // Allow generous slack when normalizing: rows come from
                // truncated tables so can only fall short, never exceed.
                if self.normalize_rows && sum > 0.5 && sum < 1.0 + ROW_SUM_TOLERANCE {
                    let scale = 1.0 / sum;
                    for p in &mut self.trans_prob[range.clone()] {
                        *p *= scale;
                    }
                    self.action_reward[a] *= scale;
                } else {
                    return Err(MdpError::RowSumMismatch {
                        state,
                        action_label: self.action_labels[a],
                        sum,
                    });
                }
            } else if sum != 1.0 && self.normalize_rows {
                let scale = 1.0 / sum;
                for p in &mut self.trans_prob[range.clone()] {
                    *p *= scale;
                }
                self.action_reward[a] *= scale;
            }
        }

        Ok(SparseMdp {
            n_states: self.n_states,
            state_action_start: self.state_action_start,
            action_labels: self.action_labels,
            action_trans_start: self.action_trans_start,
            action_reward: self.action_reward,
            trans_to: self.trans_to,
            trans_prob: self.trans_prob,
        })
    }

    fn state_of_action(&self, action: usize) -> usize {
        // `state_action_start` may not yet have the sentinel; search the
        // prefix that exists.
        match self.state_action_start.binary_search(&action) {
            Ok(mut s) => {
                // Several empty states could share the offset; take the
                // first whose range contains `action`.
                while s + 1 < self.state_action_start.len()
                    && self.state_action_start[s + 1] == action
                {
                    s += 1;
                }
                s
            }
            Err(s) => s - 1,
        }
    }

    fn state_of_transition(&self, trans: usize) -> usize {
        let action = match self.action_trans_start.binary_search(&trans) {
            Ok(a) => a,
            Err(a) => a - 1,
        };
        self.state_of_action(action)
    }
}

/// A validated, immutable, sparsely stored finite MDP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseMdp {
    n_states: usize,
    state_action_start: Vec<usize>,
    action_labels: Vec<u64>,
    action_trans_start: Vec<usize>,
    action_reward: Vec<f64>,
    trans_to: Vec<u32>,
    trans_prob: Vec<f64>,
}

impl SparseMdp {
    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Total number of `(state, action)` pairs.
    pub fn n_actions(&self) -> usize {
        self.action_labels.len()
    }

    /// Total number of stored transitions.
    pub fn n_transitions(&self) -> usize {
        self.trans_to.len()
    }

    /// Global action indices available in `state`.
    pub fn actions_of(&self, state: usize) -> std::ops::Range<usize> {
        self.state_action_start[state]..self.state_action_start[state + 1]
    }

    /// Caller-defined label of a global action index.
    pub fn action_label(&self, action: usize) -> u64 {
        self.action_labels[action]
    }

    /// Expected immediate reward `r(s, a)` of a global action index.
    pub fn action_reward(&self, action: usize) -> f64 {
        self.action_reward[action]
    }

    /// `(target, probability)` pairs of a global action index.
    pub fn transitions_of(&self, action: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.action_trans_start[action]..self.action_trans_start[action + 1];
        self.trans_to[range.clone()]
            .iter()
            .zip(&self.trans_prob[range])
            .map(|(&to, &p)| (to as usize, p))
    }

    /// One backup of the Bellman optimality operator at `state` given the
    /// value estimates `values`, returning `(best_value, best_action)`.
    ///
    /// Ties break toward the action added first, making solver output
    /// deterministic.
    pub fn bellman_backup(&self, state: usize, values: &[f64], discount: f64) -> (f64, usize) {
        let mut best = f64::NEG_INFINITY;
        let mut best_action = self.state_action_start[state];
        for a in self.actions_of(state) {
            let mut q = self.action_reward[a];
            let range = self.action_trans_start[a]..self.action_trans_start[a + 1];
            let mut future = 0.0;
            for (i, &to) in self.trans_to[range.clone()].iter().enumerate() {
                future += self.trans_prob[range.start + i] * values[to as usize];
            }
            q += discount * future;
            if q > best {
                best = q;
                best_action = a;
            }
        }
        (best, best_action)
    }

    /// Q-value of one specific global action index.
    pub fn q_value(&self, action: usize, values: &[f64], discount: f64) -> f64 {
        let mut future = 0.0;
        for (to, p) in self.transitions_of(action) {
            future += p * values[to];
        }
        self.action_reward[action] + discount * future
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state() -> SparseMdp {
        let mut b = MdpBuilder::new(2);
        b.start_state();
        b.add_action(10, &[(0, 0.5, 0.0), (1, 0.5, 2.0)]);
        b.add_action(11, &[(0, 1.0, 0.1)]);
        b.start_state();
        b.add_action(20, &[(1, 1.0, 1.0)]);
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_expected_shape() {
        let m = two_state();
        assert_eq!(m.n_states(), 2);
        assert_eq!(m.n_actions(), 3);
        assert_eq!(m.n_transitions(), 4);
        assert_eq!(m.actions_of(0), 0..2);
        assert_eq!(m.actions_of(1), 2..3);
        assert_eq!(m.action_label(2), 20);
        // Expected reward of action 0: 0.5·0 + 0.5·2 = 1.
        assert!((m.action_reward(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transitions_iterate_in_order() {
        let m = two_state();
        let t: Vec<_> = m.transitions_of(0).collect();
        assert_eq!(t, vec![(0, 0.5), (1, 0.5)]);
    }

    #[test]
    fn zero_probability_entries_are_dropped() {
        let mut b = MdpBuilder::new(1);
        b.start_state();
        b.add_action(0, &[(0, 1.0, 1.0), (0, 0.0, 99.0)]);
        let m = b.build().unwrap();
        assert_eq!(m.n_transitions(), 1);
        assert!((m.action_reward(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_state_without_actions() {
        let mut b = MdpBuilder::new(2);
        b.start_state();
        b.add_action(0, &[(0, 1.0, 0.0)]);
        b.start_state();
        assert_eq!(
            b.build().unwrap_err(),
            MdpError::StateWithoutActions { state: 1 }
        );
    }

    #[test]
    fn rejects_bad_target() {
        let mut b = MdpBuilder::new(1);
        b.start_state();
        b.add_action(0, &[(3, 1.0, 0.0)]);
        assert!(matches!(
            b.build().unwrap_err(),
            MdpError::BadTargetState { target: 3, .. }
        ));
    }

    #[test]
    fn rejects_negative_probability() {
        let mut b = MdpBuilder::new(1);
        b.start_state();
        b.add_action(0, &[(0, -0.5, 0.0), (0, 1.5, 0.0)]);
        assert!(matches!(
            b.build().unwrap_err(),
            MdpError::BadProbability { .. }
        ));
    }

    #[test]
    fn rejects_row_sum_mismatch() {
        let mut b = MdpBuilder::new(1);
        b.start_state();
        b.add_action(7, &[(0, 0.7, 0.0)]);
        assert!(matches!(
            b.build().unwrap_err(),
            MdpError::RowSumMismatch {
                action_label: 7,
                ..
            }
        ));
    }

    #[test]
    fn normalization_rescues_truncated_rows() {
        let mut b = MdpBuilder::new(1);
        b.normalize_rows(true);
        b.start_state();
        b.add_action(0, &[(0, 0.999_999, 2.0)]);
        let m = b.build().unwrap();
        let sum: f64 = m.transitions_of(0).map(|(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Reward rescales with the row so r(s, a) stays the conditional mean.
        assert!((m.action_reward(0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn normalization_still_rejects_garbage() {
        let mut b = MdpBuilder::new(1);
        b.normalize_rows(true);
        b.start_state();
        b.add_action(0, &[(0, 0.2, 0.0)]);
        assert!(b.build().is_err());
    }

    #[test]
    fn rejects_empty_mdp() {
        assert_eq!(MdpBuilder::new(0).build().unwrap_err(), MdpError::Empty);
    }

    #[test]
    fn bellman_backup_picks_best_action() {
        let m = two_state();
        let values = vec![0.0, 10.0];
        // Action 0: 1 + γ(0.5·0 + 0.5·10) = 1 + 5γ; action 1: 0.1 + γ·0.
        let (v, a) = m.bellman_backup(0, &values, 0.9);
        assert_eq!(a, 0);
        assert!((v - 5.5).abs() < 1e-12);
        // With γ = 0 the comparison is on immediate rewards only.
        let (v0, a0) = m.bellman_backup(0, &values, 0.0);
        assert_eq!(a0, 0);
        assert!((v0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn q_value_matches_backup() {
        let m = two_state();
        let values = vec![3.0, -1.0];
        let best = m.bellman_backup(0, &values, 0.95);
        let q0 = m.q_value(0, &values, 0.95);
        let q1 = m.q_value(1, &values, 0.95);
        assert!((best.0 - q0.max(q1)).abs() < 1e-12);
    }
}
