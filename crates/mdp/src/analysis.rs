//! Policy evaluation and stationary analysis of the induced Markov chain.
//!
//! Given a fixed policy `π`, the MDP collapses to a Markov chain
//! `P_π(s, s') = P_{π[s]}(s, s')`. The paper's §5.1 guarantees — expected
//! inference accuracy and expected latency-SLO violation rate — are
//! expectations under the stationary distribution of that chain,
//! "calculated via power iteration \[40\] from the transition
//! probabilities". This module implements both the evaluation of `v_π`
//! and the stationary distribution.

use crate::model::SparseMdp;

/// Options for the stationary-distribution power iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StationaryOptions {
    /// Convergence threshold on the L1 change between sweeps.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
    /// Damping factor `τ`: each sweep computes `τ·xP + (1−τ)·x`, which
    /// preserves fixed points while suppressing oscillation on periodic
    /// chains.
    pub damping: f64,
}

impl Default for StationaryOptions {
    fn default() -> Self {
        Self {
            tolerance: 1e-12,
            max_iterations: 200_000,
            damping: 0.9,
        }
    }
}

/// Evaluates a fixed policy under the discounted criterion by iterative
/// sweeps, returning `v_π`.
///
/// # Panics
///
/// Panics if `policy.len() != mdp.n_states()`, an entry is not an action
/// of its state, or `discount` is outside `(0, 1)`.
pub fn evaluate_policy(
    mdp: &SparseMdp,
    policy: &[usize],
    discount: f64,
    tolerance: f64,
) -> Vec<f64> {
    assert_eq!(policy.len(), mdp.n_states(), "policy length mismatch");
    assert!(
        discount > 0.0 && discount < 1.0,
        "discount must lie in (0, 1), got {discount}"
    );
    for (s, &a) in policy.iter().enumerate() {
        assert!(
            mdp.actions_of(s).contains(&a),
            "policy assigns action {a} which does not belong to state {s}"
        );
    }
    let n = mdp.n_states();
    let mut values = vec![0.0; n];
    let stop = tolerance * (1.0 - discount) / discount;
    for _ in 0..1_000_000 {
        let mut max_delta = 0.0f64;
        for s in 0..n {
            let v = mdp.q_value(policy[s], &values, discount);
            max_delta = max_delta.max((v - values[s]).abs());
            values[s] = v;
        }
        if max_delta < stop {
            break;
        }
    }
    values
}

/// Computes the stationary distribution of the chain induced by `policy`
/// via damped power iteration, starting from the uniform distribution.
///
/// For uni-chain policies (every RAMSIS worker MDP is uni-chain: the
/// empty-queue state is reachable from everywhere under a positive-rate
/// arrival process) the result is the unique stationary distribution.
/// The returned vector is non-negative and sums to 1.
///
/// # Panics
///
/// Panics if the policy is malformed (see [`evaluate_policy`]) or the
/// damping factor is outside `(0, 1]`.
pub fn stationary_distribution(
    mdp: &SparseMdp,
    policy: &[usize],
    options: &StationaryOptions,
) -> Vec<f64> {
    assert_eq!(policy.len(), mdp.n_states(), "policy length mismatch");
    assert!(
        options.damping > 0.0 && options.damping <= 1.0,
        "damping must lie in (0, 1], got {}",
        options.damping
    );
    for (s, &a) in policy.iter().enumerate() {
        assert!(
            mdp.actions_of(s).contains(&a),
            "policy assigns action {a} which does not belong to state {s}"
        );
    }
    let n = mdp.n_states();
    let mut x = vec![1.0 / n as f64; n];
    let mut next = vec![0.0; n];
    for _ in 0..options.max_iterations {
        next.iter_mut().for_each(|v| *v = 0.0);
        for s in 0..n {
            let mass = x[s];
            if mass == 0.0 {
                continue;
            }
            for (to, p) in mdp.transitions_of(policy[s]) {
                next[to] += mass * p;
            }
        }
        // Damp and renormalize (transition rows are normalized, but the
        // damping mix plus rounding can drift the total by ulps).
        let mut l1 = 0.0;
        let mut total = 0.0;
        for s in 0..n {
            let mixed = options.damping * next[s] + (1.0 - options.damping) * x[s];
            l1 += (mixed - x[s]).abs();
            x[s] = mixed;
            total += mixed;
        }
        if total > 0.0 {
            let inv = 1.0 / total;
            x.iter_mut().for_each(|v| *v *= inv);
        }
        if l1 < options.tolerance {
            break;
        }
    }
    x
}

/// Expected per-epoch reward of `policy` under its stationary
/// distribution: `Σ_s P_π(s) · r(s, π[s])`.
pub fn stationary_reward(mdp: &SparseMdp, policy: &[usize], stationary: &[f64]) -> f64 {
    policy
        .iter()
        .zip(stationary)
        .map(|(&a, &p)| p * mdp.action_reward(a))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MdpBuilder;
    use crate::solve::{value_iteration, SolveOptions};

    fn chain_with_choice() -> SparseMdp {
        // 0 --(a: stay 0.3 / go 0.7)--> 1; 1 --(b)--> 0. All reward in 1.
        let mut b = MdpBuilder::new(2);
        b.start_state();
        b.add_action(0, &[(0, 0.3, 0.0), (1, 0.7, 0.0)]);
        b.start_state();
        b.add_action(1, &[(0, 1.0, 1.0)]);
        b.build().unwrap()
    }

    #[test]
    fn evaluate_policy_matches_closed_form() {
        let mdp = chain_with_choice();
        let policy = vec![0usize, 1usize];
        let gamma = 0.9;
        let v = evaluate_policy(&mdp, &policy, gamma, 1e-12);
        // Solve: v0 = γ(0.3 v0 + 0.7 v1); v1 = 1 + γ v0.
        // => v0 = γ·0.7·(1)/(1 − 0.3γ − 0.7γ²) ... compute numerically.
        let denom = 1.0 - 0.3 * gamma - 0.7 * gamma * gamma;
        let v0 = 0.7 * gamma / denom;
        let v1 = 1.0 + gamma * v0;
        assert!((v[0] - v0).abs() < 1e-8, "{} vs {v0}", v[0]);
        assert!((v[1] - v1).abs() < 1e-8, "{} vs {v1}", v[1]);
    }

    #[test]
    fn evaluation_of_optimal_policy_equals_optimal_values() {
        let mdp = chain_with_choice();
        let opts = SolveOptions {
            discount: 0.8,
            tolerance: 1e-12,
            max_iterations: 100_000,
        };
        let sol = value_iteration(&mdp, &opts);
        let v = evaluate_policy(&mdp, &sol.policy, opts.discount, 1e-12);
        for (a, b) in v.iter().zip(&sol.values) {
            assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn stationary_distribution_two_state() {
        let mdp = chain_with_choice();
        let pi = stationary_distribution(&mdp, &[0, 1], &StationaryOptions::default());
        // Chain: P(0→1) = 0.7, P(0→0) = 0.3, P(1→0) = 1.
        // Balance: π1 = 0.7 π0; π0 + π1 = 1 → π0 = 1/1.7.
        assert!((pi[0] - 1.0 / 1.7).abs() < 1e-9, "pi0={}", pi[0]);
        assert!((pi[1] - 0.7 / 1.7).abs() < 1e-9, "pi1={}", pi[1]);
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stationary_distribution_periodic_chain() {
        // Pure 2-cycle: undamped power iteration would oscillate forever.
        let mut b = MdpBuilder::new(2);
        b.start_state();
        b.add_action(0, &[(1, 1.0, 0.0)]);
        b.start_state();
        b.add_action(1, &[(0, 1.0, 0.0)]);
        let mdp = b.build().unwrap();
        let pi = stationary_distribution(&mdp, &[0, 1], &StationaryOptions::default());
        assert!((pi[0] - 0.5).abs() < 1e-9);
        assert!((pi[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn stationary_distribution_absorbing() {
        // 0 → 1 (absorbing): all mass ends in 1.
        let mut b = MdpBuilder::new(2);
        b.start_state();
        b.add_action(0, &[(1, 1.0, 0.0)]);
        b.start_state();
        b.add_action(1, &[(1, 1.0, 0.0)]);
        let mdp = b.build().unwrap();
        let pi = stationary_distribution(&mdp, &[0, 1], &StationaryOptions::default());
        assert!(pi[0] < 1e-9);
        assert!((pi[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stationary_reward_weights_by_distribution() {
        let mdp = chain_with_choice();
        let policy = vec![0usize, 1usize];
        let pi = stationary_distribution(&mdp, &policy, &StationaryOptions::default());
        let r = stationary_reward(&mdp, &policy, &pi);
        // Reward 1 collected every visit to state 1.
        assert!((r - 0.7 / 1.7).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "does not belong to state")]
    fn rejects_foreign_action() {
        let mdp = chain_with_choice();
        // Action 1 belongs to state 1, not state 0.
        let _ = evaluate_policy(&mdp, &[1, 1], 0.9, 1e-9);
    }

    #[test]
    #[should_panic(expected = "policy length mismatch")]
    fn rejects_short_policy() {
        let mdp = chain_with_choice();
        let _ = stationary_distribution(&mdp, &[0], &StationaryOptions::default());
    }
}
