//! Property tests for the exact solvers on randomized MDPs: optimality
//! dominance, solver agreement, and stationary-distribution fixed
//! points.

#![allow(clippy::type_complexity)] // proptest strategies are naturally tuple-heavy

use proptest::prelude::*;

use ramsis_mdp::{
    evaluate_policy, policy_iteration, stationary_distribution, value_iteration,
    value_iteration_gauss_seidel, MdpBuilder, SolveOptions, SparseMdp, StationaryOptions,
};

/// A random MDP: `n` states, 1-3 actions each, 1-3 transitions per
/// action with normalized probabilities, rewards in [0, 1].
fn random_mdp(n: usize, shape: &[(Vec<(usize, f64, f64)>, u64)]) -> SparseMdp {
    let mut b = MdpBuilder::new(n);
    let mut idx = 0;
    for s in 0..n {
        b.start_state();
        // At least one action per state; consume entries round-robin.
        let actions = 1 + (shape[s % shape.len()].1 % 3) as usize;
        for _ in 0..actions {
            let (entries, _) = &shape[idx % shape.len()];
            idx += 1;
            // Normalize targets into range and probabilities to 1.
            let total: f64 = entries.iter().map(|&(_, p, _)| p).sum();
            let row: Vec<(usize, f64, f64)> = entries
                .iter()
                .map(|&(t, p, r)| (t % n, p / total, r))
                .collect();
            b.add_action(idx as u64, &row);
        }
    }
    b.build().expect("random MDP is well-formed")
}

fn shape_strategy() -> impl Strategy<Value = Vec<(Vec<(usize, f64, f64)>, u64)>> {
    proptest::collection::vec(
        (
            proptest::collection::vec((0usize..64, 0.05f64..1.0, 0.0f64..1.0), 1..4),
            proptest::num::u64::ANY,
        ),
        4..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The optimal value dominates the value of every deterministic
    /// policy (here: the first-action policy).
    #[test]
    fn optimal_values_dominate_any_policy(
        n in 2usize..10,
        shape in shape_strategy(),
        gamma in 0.5f64..0.95,
    ) {
        let mdp = random_mdp(n, &shape);
        let opts = SolveOptions { discount: gamma, tolerance: 1e-9, max_iterations: 100_000 };
        let sol = value_iteration(&mdp, &opts);
        let first_action: Vec<usize> = (0..n).map(|s| mdp.actions_of(s).start).collect();
        let v_first = evaluate_policy(&mdp, &first_action, gamma, 1e-9);
        #[allow(clippy::needless_range_loop)]
        for s in 0..n {
            prop_assert!(
                sol.values[s] >= v_first[s] - 1e-5,
                "state {s}: optimal {} < first-action {}",
                sol.values[s],
                v_first[s]
            );
        }
        // Values are bounded by the geometric series of max reward.
        let bound = 1.0 / (1.0 - gamma) + 1e-6;
        for &v in &sol.values {
            prop_assert!((0.0..=bound).contains(&v), "value {v} out of [0, {bound}]");
        }
    }

    /// Value iteration and policy iteration agree on values (policies
    /// may differ only on ties).
    #[test]
    fn solvers_agree(
        n in 2usize..8,
        shape in shape_strategy(),
        gamma in 0.5f64..0.9,
    ) {
        let mdp = random_mdp(n, &shape);
        let opts = SolveOptions { discount: gamma, tolerance: 1e-10, max_iterations: 200_000 };
        let vi = value_iteration(&mdp, &opts);
        let pi = policy_iteration(&mdp, &opts, 10_000);
        let gs = value_iteration_gauss_seidel(&mdp, &opts);
        for s in 0..n {
            prop_assert!(
                (vi.values[s] - pi.values[s]).abs() < 1e-4,
                "state {s}: VI {} vs PI {}",
                vi.values[s],
                pi.values[s]
            );
            prop_assert!(
                (vi.values[s] - gs.values[s]).abs() < 1e-4,
                "state {s}: VI {} vs GS {}",
                vi.values[s],
                gs.values[s]
            );
        }
    }

    /// The stationary distribution is a probability vector and a fixed
    /// point of the induced chain.
    #[test]
    fn stationary_is_fixed_point(
        n in 2usize..10,
        shape in shape_strategy(),
    ) {
        let mdp = random_mdp(n, &shape);
        let policy: Vec<usize> = (0..n).map(|s| mdp.actions_of(s).start).collect();
        let pi = stationary_distribution(&mdp, &policy, &StationaryOptions::default());
        let sum: f64 = pi.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "sums to {sum}");
        for &p in &pi {
            prop_assert!(p >= -1e-12);
        }
        // One application of P leaves it (nearly) unchanged.
        let mut next = vec![0.0; n];
        for s in 0..n {
            for (to, p) in mdp.transitions_of(policy[s]) {
                next[to] += pi[s] * p;
            }
        }
        let l1: f64 = pi.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        prop_assert!(l1 < 1e-6, "not a fixed point: L1 drift {l1}");
    }
}
