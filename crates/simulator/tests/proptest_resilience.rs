//! Property tests for the resilience primitives: the retry token
//! bucket never exceeds its configured rate, and CoDel admission never
//! lets a queue past its cap — over randomized arrival patterns.

use proptest::prelude::*;

use ramsis_sim::resilience::{
    backoff_delay_s, AdmissionPolicy, AdmissionVerdict, CoDelAdmission, RetryBudget, RetryPolicy,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Over any monotone sequence of take attempts, grants never exceed
    /// `burst + rate · elapsed` (the bucket can't mint tokens), and the
    /// token count stays within [0, burst].
    #[test]
    fn retry_budget_never_exceeds_its_rate(
        rate in 0.1f64..50.0,
        burst in 1.0f64..20.0,
        gaps in proptest::collection::vec(0.0f64..0.5, 1..200),
    ) {
        let mut budget = RetryBudget::new(rate, burst);
        let mut now = 0.0f64;
        let mut granted = 0u64;
        for gap in &gaps {
            now += gap;
            if budget.try_take(now) {
                granted += 1;
            }
            prop_assert!(budget.tokens() >= 0.0);
            prop_assert!(budget.tokens() <= burst + 1e-9);
        }
        // Initial burst plus everything refilled over the horizon, with
        // float slack for the accumulated refill arithmetic.
        let ceiling = burst + rate * now + 1e-6;
        prop_assert!(
            (granted as f64) <= ceiling.ceil(),
            "granted {} retries but the bucket only held {:.3}",
            granted,
            ceiling
        );
    }

    /// The budget is a pure function of the attempt sequence: replaying
    /// the same times yields the same grants.
    #[test]
    fn retry_budget_is_deterministic(
        rate in 0.1f64..50.0,
        burst in 1.0f64..20.0,
        gaps in proptest::collection::vec(0.0f64..0.5, 1..100),
    ) {
        let run = || {
            let mut budget = RetryBudget::new(rate, burst);
            let mut now = 0.0f64;
            gaps.iter()
                .map(|gap| {
                    now += gap;
                    budget.try_take(now)
                })
                .collect::<Vec<bool>>()
        };
        prop_assert_eq!(run(), run());
    }

    /// Simulating a queue that drains slower than it fills: admission
    /// never lets the depth past the cap, and an emptied queue resets
    /// the sojourn clock (the next arrival is always admitted).
    #[test]
    fn codel_admission_bounds_the_queue(
        cap in 1usize..32,
        arrivals in proptest::collection::vec(0u64..50_000_000, 1..300),
        drain_every in 2usize..8,
    ) {
        let policy = AdmissionPolicy {
            enabled: true,
            queue_cap: cap,
            target_sojourn_s: 0.01,
            interval_s: 0.05,
        };
        let mut adm = CoDelAdmission::default();
        // The queue holds enqueue timestamps; the head is the oldest.
        let mut queue: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
        let mut now = 0u64;
        for (i, gap) in arrivals.iter().enumerate() {
            now += gap;
            if i % drain_every == 0 {
                queue.pop_front();
            }
            let verdict = adm.offer(&policy, now, queue.len(), queue.front().copied());
            if queue.is_empty() {
                prop_assert_eq!(verdict, None, "empty queue must always admit");
            }
            if verdict.is_none() {
                queue.push_back(now);
            }
            prop_assert!(
                queue.len() <= cap,
                "admission let the queue reach {} past cap {}",
                queue.len(),
                cap
            );
        }
        // A full drain resets the control loop.
        queue.clear();
        prop_assert_eq!(adm.offer(&policy, now + 1, 0, None), None);
    }

    /// At the hard cap the verdict is `QueueFull` regardless of
    /// sojourn history.
    #[test]
    fn codel_full_queue_is_always_refused(
        cap in 1usize..64,
        now in 0u64..1_000_000_000,
    ) {
        let policy = AdmissionPolicy {
            enabled: true,
            queue_cap: cap,
            ..AdmissionPolicy::default()
        };
        let mut adm = CoDelAdmission::default();
        prop_assert_eq!(
            adm.offer(&policy, now, cap, Some(now.saturating_sub(1))),
            Some(AdmissionVerdict::QueueFull)
        );
    }

    /// Backoff delays are deterministic per (query, attempt), bounded
    /// by the cap, and never negative.
    #[test]
    fn backoff_is_deterministic_and_bounded(
        query in 0u64..u64::MAX,
        attempt in 1u32..12,
        base in 0.001f64..0.1,
        cap in 0.1f64..2.0,
    ) {
        let policy = RetryPolicy {
            max_retries: 3,
            backoff_base_s: base,
            backoff_cap_s: cap,
            ..RetryPolicy::default()
        };
        let d1 = backoff_delay_s(&policy, attempt, query);
        let d2 = backoff_delay_s(&policy, attempt, query);
        prop_assert_eq!(d1, d2, "same (query, attempt) must give the same delay");
        prop_assert!(d1 >= 0.0);
        prop_assert!(d1 <= cap + 1e-12, "delay {} exceeds cap {}", d1, cap);
    }
}
