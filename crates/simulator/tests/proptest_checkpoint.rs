//! Property tests for the checkpoint subsystem: over randomized
//! scenarios (cluster shape, load, faults, routing, checkpoint
//! cadence), every snapshot taken mid-run — including ones landing
//! mid-fault, mid-drain, or with hedges in flight — must JSON
//! round-trip byte-identically, and resuming from an arbitrary kill
//! point must reproduce the uninterrupted run's report and telemetry
//! suffix byte for byte.

use std::time::Duration;

use proptest::prelude::*;

use ramsis_profiles::{ModelCatalog, ProfilerConfig, WorkerProfile};
use ramsis_sim::{
    AutoscalePolicy, CheckpointPolicy, EngineSnapshot, FastestFixed, FaultPlan, MemoryRecorder,
    ResiliencePolicy, Routing, Simulation, SimulationConfig,
};
use ramsis_telemetry::VecSink;
use ramsis_workload::{LoadMonitor, Trace};

fn profile() -> WorkerProfile {
    WorkerProfile::build(
        &ModelCatalog::torchvision_image(),
        Duration::from_secs_f64(0.15),
        ProfilerConfig::default(),
    )
}

fn routing_of(ix: u8) -> Routing {
    match ix % 3 {
        0 => Routing::Central,
        1 => Routing::PerWorkerRoundRobin,
        _ => Routing::PerWorkerShortestQueue,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary kill points: run a randomized faulted scenario with a
    /// randomized checkpoint cadence, then (a) every snapshot taken —
    /// wherever it landed in the run — serializes and re-parses to the
    /// exact same bytes, and (b) resuming from a randomly chosen one
    /// continues to a byte-identical report and telemetry suffix.
    #[test]
    fn snapshots_round_trip_and_resume_byte_identically(
        seed in 0u64..1_000_000,
        workers in 1usize..4,
        load in 30.0f64..120.0,
        duration in 0.6f64..1.2,
        every in 8u64..80,
        routing_ix in 0u8..3,
        crash in proptest::bool::ANY,
        slowdown in proptest::bool::ANY,
        surge in proptest::bool::ANY,
        kill_ix in 0usize..64,
    ) {
        let profile = profile();
        let fastest = profile.fastest_model();
        let routing = routing_of(routing_ix);
        let mut plan = FaultPlan::none();
        if crash {
            plan = plan.crash(0, duration * 0.3);
            if workers > 1 {
                plan = plan.recover(0, duration * 0.7);
            }
        }
        if slowdown {
            plan = plan.slowdown(workers - 1, duration * 0.2, duration * 0.8, 3.0);
        }
        if surge {
            plan = plan.surge(duration * 0.4, duration * 0.9, 2.0);
        }
        let trace = Trace::constant(load, duration);
        let config = SimulationConfig::new(workers, 0.15)
            .seeded(seed)
            .with_resilience(ResiliencePolicy::all_on())
            .with_checkpoints(CheckpointPolicy::every_events(every));
        let sim = Simulation::new(&profile, config).unwrap();

        let mut rec = MemoryRecorder::new();
        let mut full_sink = VecSink::new();
        let full = sim
            .run_durable(
                &trace,
                &plan,
                &mut FastestFixed::new(fastest, routing),
                &mut LoadMonitor::new(),
                &mut full_sink,
                &mut rec,
            )
            .unwrap()
            .expect("no stop requested");
        let full_json = serde_json::to_string(&full).unwrap();
        let full_events = full_sink.into_events();

        for snap in &rec.snapshots {
            let json = snap.to_json();
            let back = EngineSnapshot::from_json(&json).unwrap();
            prop_assert_eq!(
                back.to_json(),
                json,
                "snapshot at event {} does not round-trip",
                snap.meta.events_done
            );
        }

        if !rec.snapshots.is_empty() {
            let snap = &rec.snapshots[kill_ix % rec.snapshots.len()];
            let mut sink = VecSink::new();
            let resumed = sim
                .resume(
                    &trace,
                    &plan,
                    &mut FastestFixed::new(fastest, routing),
                    &mut LoadMonitor::new(),
                    &mut sink,
                    snap,
                )
                .unwrap();
            prop_assert_eq!(&serde_json::to_string(&resumed).unwrap(), &full_json);
            let suffix = &full_events[snap.meta.events_emitted as usize..];
            prop_assert_eq!(sink.into_events().as_slice(), suffix);
        }
    }
}

/// The pinned acceptance run: one fixed faulted + elastic scenario,
/// resumed from *every* checkpoint it produced, each resumption
/// reproducing the same final report and exact telemetry suffix.
#[test]
fn pinned_run_resumes_identically_from_every_checkpoint() {
    let profile = profile();
    let fastest = profile.fastest_model();
    let trace = Trace::constant(140.0, 2.0);
    let plan = FaultPlan::none()
        .crash(0, 0.5)
        .recover(0, 1.2)
        .slowdown(1, 0.8, 1.6, 2.5)
        .surge(1.0, 1.8, 1.8);
    let mut policy = AutoscalePolicy::elastic(1, 5, 40.0);
    policy.warmup_s = 0.2;
    let config = SimulationConfig::new(3, 0.15)
        .seeded(4242)
        .with_resilience(ResiliencePolicy::all_on())
        .with_autoscale(policy)
        .with_checkpoints(CheckpointPolicy::every_events(150));
    let sim = Simulation::new(&profile, config).unwrap();

    let mut rec = MemoryRecorder::new();
    let mut full_sink = VecSink::new();
    let full = sim
        .run_durable(
            &trace,
            &plan,
            &mut FastestFixed::new(fastest, Routing::PerWorkerShortestQueue),
            &mut LoadMonitor::new(),
            &mut full_sink,
            &mut rec,
        )
        .unwrap()
        .expect("no stop requested");
    let full_json = serde_json::to_string(&full).unwrap();
    let full_events = full_sink.into_events();
    assert!(
        rec.snapshots.len() >= 4,
        "pinned run took only {} checkpoints",
        rec.snapshots.len()
    );

    for snap in &rec.snapshots {
        let mut sink = VecSink::new();
        let resumed = sim
            .resume(
                &trace,
                &plan,
                &mut FastestFixed::new(fastest, Routing::PerWorkerShortestQueue),
                &mut LoadMonitor::new(),
                &mut sink,
                snap,
            )
            .unwrap();
        assert_eq!(
            serde_json::to_string(&resumed).unwrap(),
            full_json,
            "divergent report resuming from event {}",
            snap.meta.events_done
        );
        assert_eq!(
            sink.into_events().as_slice(),
            &full_events[snap.meta.events_emitted as usize..],
            "divergent telemetry suffix resuming from event {}",
            snap.meta.events_done
        );
    }
}
