//! On-demand policy generation (§3.2.2): when the anticipated load
//! exceeds every pre-computed policy's design load, a new policy is
//! generated online.

use std::time::Duration;

use ramsis_core::{Discretization, PolicyConfig, PolicySet};
use ramsis_profiles::{ModelCatalog, ProfilerConfig, WorkerProfile};
use ramsis_sim::{OnDemandRamsis, Simulation, SimulationConfig};
use ramsis_workload::{OracleMonitor, Trace, TraceKind};

fn profile() -> WorkerProfile {
    WorkerProfile::build(
        &ModelCatalog::torchvision_image(),
        Duration::from_millis(150),
        ProfilerConfig::default(),
    )
}

fn config(workers: usize) -> PolicyConfig {
    PolicyConfig::builder(Duration::from_millis(150))
        .workers(workers)
        .discretization(Discretization::fixed_length(12))
        .build()
}

#[test]
fn unexpected_load_triggers_generation() {
    let p = profile();
    let workers = 8;
    // Only a 100-QPS policy is pre-computed; the trace ramps to 400.
    let initial = PolicySet::generate_poisson(&p, &[100.0], &config(workers)).unwrap();
    let mut scheme = OnDemandRamsis::new(&p, config(workers), initial);
    assert_eq!(scheme.generated_on_demand(), 0);

    let trace = Trace::from_interval_qps(&[80.0, 250.0, 400.0], 10.0, TraceKind::Custom);
    let sim = Simulation::new(&p, SimulationConfig::new(workers, 0.15).seeded(71))
        .expect("valid simulation config");
    let mut monitor = OracleMonitor::new(trace.clone());
    let report = sim.run(&trace, &mut scheme, &mut monitor);

    assert!(
        scheme.generated_on_demand() >= 1,
        "the 250/400-QPS phases must trigger generation"
    );
    assert!(
        scheme.generated_on_demand() <= 4,
        "the 20% headroom must prevent per-decision regeneration, got {}",
        scheme.generated_on_demand()
    );
    // Coverage now extends past the peak load.
    assert!(scheme.policies().covers(400.0));
    assert_eq!(report.served, report.total_arrivals);
    assert!(
        report.violation_rate < 0.05,
        "violations {}",
        report.violation_rate
    );
}

#[test]
fn covered_loads_never_generate() {
    let p = profile();
    let workers = 8;
    let initial =
        PolicySet::generate_poisson(&p, &[100.0, 300.0, 500.0], &config(workers)).unwrap();
    let mut scheme = OnDemandRamsis::new(&p, config(workers), initial);
    let trace = Trace::constant(250.0, 10.0);
    let sim = Simulation::new(&p, SimulationConfig::new(workers, 0.15).seeded(72))
        .expect("valid simulation config");
    let mut monitor = OracleMonitor::new(trace.clone());
    let _ = sim.run(&trace, &mut scheme, &mut monitor);
    assert_eq!(scheme.generated_on_demand(), 0);
}
