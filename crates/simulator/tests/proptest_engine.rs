//! Property tests for the discrete-event engine: conservation and
//! ordering invariants over randomized workloads, worker counts, and
//! schemes.

use proptest::prelude::*;
use std::time::Duration;

use ramsis_profiles::{ModelCatalog, ProfilerConfig, WorkerProfile};
use ramsis_sim::scheme::{Routing, Selection, SelectionContext, ServingScheme};
use ramsis_sim::{Simulation, SimulationConfig};
use ramsis_workload::{LoadMonitor, Trace};

fn profile() -> &'static WorkerProfile {
    use std::sync::OnceLock;
    static P: OnceLock<WorkerProfile> = OnceLock::new();
    P.get_or_init(|| {
        WorkerProfile::build(
            &ModelCatalog::torchvision_image(),
            Duration::from_millis(150),
            ProfilerConfig::default(),
        )
    })
}

/// A randomized-but-valid scheme: model cycles through the Pareto
/// front, batch bounded by a cap, routing chosen by the case.
struct CyclingScheme {
    routing: Routing,
    batch_cap: u32,
    tick: usize,
}

impl ServingScheme for CyclingScheme {
    fn name(&self) -> &str {
        "cycling"
    }
    fn routing(&self) -> Routing {
        self.routing
    }
    fn select(&mut self, ctx: &SelectionContext) -> Selection {
        let pareto = profile().pareto_models();
        self.tick += 1;
        // Only models that can serve the batch within the profile range.
        let batch = (ctx.queued as u32).min(self.batch_cap).max(1);
        let model = pareto[self.tick % 4]; // fastest few: always profiled
        Selection::Serve { model, batch }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every arrival is served exactly once, response >= wait, and the
    /// per-model counts add up — regardless of routing, worker count,
    /// batch cap, or load.
    #[test]
    fn conservation_under_randomization(
        qps in 10.0f64..600.0,
        duration in 1.0f64..6.0,
        workers in 1usize..12,
        batch_cap in 1u32..8,
        routing_pick in 0u8..3,
        seed in 0u64..1_000,
    ) {
        let routing = match routing_pick {
            0 => Routing::Central,
            1 => Routing::PerWorkerRoundRobin,
            _ => Routing::PerWorkerShortestQueue,
        };
        let trace = Trace::constant(qps, duration);
        let sim = Simulation::new(profile(), SimulationConfig::new(workers, 0.15).seeded(seed)).expect("valid simulation config");
        let mut scheme = CyclingScheme { routing, batch_cap, tick: 0 };
        let mut monitor = LoadMonitor::new();
        let report = sim.run(&trace, &mut scheme, &mut monitor);

        prop_assert_eq!(report.served, report.total_arrivals, "lost or duplicated queries");
        let per_model_total: u64 = report.per_model.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(per_model_total, report.served);
        prop_assert!(report.violations <= report.served);
        prop_assert!(report.mean_response_s >= report.mean_queue_wait_s);
        prop_assert!(report.max_batch <= batch_cap.max(1));
        if report.served > 0 {
            prop_assert!(report.mean_batch >= 1.0);
            // Response time can never beat the fastest batch-1 service.
            let min_service = profile()
                .pareto_models()
                .iter()
                .filter_map(|&m| profile().latency(m, 1))
                .fold(f64::INFINITY, f64::min);
            prop_assert!(report.p50_response_s >= min_service * 0.5);
        }
    }

    /// Timeline buckets, when enabled, partition the run: their sums
    /// equal the totals.
    #[test]
    fn timeline_partitions_the_run(
        qps in 50.0f64..400.0,
        workers in 1usize..8,
        window in 0.25f64..2.0,
        seed in 0u64..1_000,
    ) {
        let trace = Trace::constant(qps, 5.0);
        let sim = Simulation::new(
            profile(),
            SimulationConfig::new(workers, 0.15).seeded(seed).with_timeline(window),
        )
        .expect("valid simulation config");
        let mut scheme = CyclingScheme {
            routing: Routing::Central,
            batch_cap: 4,
            tick: 0,
        };
        let mut monitor = LoadMonitor::new();
        let report = sim.run(&trace, &mut scheme, &mut monitor);
        let tl_served: u64 = report.timeline.iter().map(|b| b.served).sum();
        let tl_violations: u64 = report.timeline.iter().map(|b| b.violations).sum();
        prop_assert_eq!(tl_served, report.served);
        prop_assert_eq!(tl_violations, report.violations);
        // Buckets are consecutive windows from zero.
        for (i, b) in report.timeline.iter().enumerate() {
            prop_assert!((b.start_s - i as f64 * window).abs() < 1e-9);
        }
    }
}
