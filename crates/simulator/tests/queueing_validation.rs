//! Cross-validation of the discrete-event engine against closed-form
//! queueing theory: with one worker, batch-1 service, a pinned model,
//! and deterministic service times, the system is exactly M/D/1 and the
//! mean queueing delay must match the Pollaczek–Khinchine formula
//!
//! ```text
//! W_q = ρ · s / (2 · (1 − ρ)),   ρ = λ · s
//! ```
//!
//! This is the strongest external check available on the engine: it
//! does not compare the simulator against itself or against the MDP,
//! but against textbook mathematics.

use std::time::Duration;

use ramsis_profiles::{ModelCatalog, ProfilerConfig, WorkerProfile};
use ramsis_sim::scheme::{Routing, Selection, SelectionContext, ServingScheme};
use ramsis_sim::{Simulation, SimulationConfig};
use ramsis_workload::{LoadMonitor, Trace};

/// Pins one model and always serves exactly one query (so the system
/// stays a textbook single-server queue, never a batch server).
struct SingleService {
    model: usize,
}

impl ServingScheme for SingleService {
    fn name(&self) -> &str {
        "single-service"
    }
    fn routing(&self) -> Routing {
        Routing::Central
    }
    fn select(&mut self, _ctx: &SelectionContext) -> Selection {
        Selection::Serve {
            model: self.model,
            batch: 1,
        }
    }
}

fn profile() -> WorkerProfile {
    WorkerProfile::build(
        &ModelCatalog::torchvision_image(),
        // A loose SLO so nothing in the metrics path saturates.
        Duration::from_millis(500),
        ProfilerConfig::default(),
    )
}

fn run_md1(profile: &WorkerProfile, model: usize, rho: f64, seed: u64) -> (f64, f64) {
    let s = profile.latency(model, 1).expect("batch 1 profiled");
    let lambda = rho / s;
    // Long enough for tight confidence: ~50k arrivals at moderate rho.
    let horizon = 50_000.0 / lambda;
    let trace = Trace::constant(lambda, horizon);
    let sim = Simulation::new(profile, SimulationConfig::new(1, 0.5).seeded(seed))
        .expect("valid simulation config");
    let mut scheme = SingleService { model };
    let mut monitor = LoadMonitor::new();
    let report = sim.run(&trace, &mut scheme, &mut monitor);
    assert_eq!(report.served, report.total_arrivals);
    let expected_wq = rho * s / (2.0 * (1.0 - rho));
    (report.mean_queue_wait_s, expected_wq)
}

#[test]
fn md1_mean_wait_matches_pollaczek_khinchine() {
    let p = profile();
    let model = p.fastest_model();
    for (rho, tolerance) in [(0.3, 0.05), (0.5, 0.05), (0.7, 0.08), (0.85, 0.15)] {
        let (observed, expected) = run_md1(&p, model, rho, 0xD1);
        let rel = (observed - expected).abs() / expected;
        assert!(
            rel < tolerance,
            "rho={rho}: observed W_q {observed:.6}s vs PK {expected:.6}s (rel {rel:.3})"
        );
    }
}

#[test]
fn md1_utilization_equals_rho() {
    // The strongest utilization check: busy-time fraction must equal
    // the offered load rho = lambda * s exactly (up to Poisson noise).
    let p = profile();
    let model = p.fastest_model();
    let s = p.latency(model, 1).expect("batch 1 profiled");
    for rho in [0.3, 0.6, 0.9] {
        let lambda = rho / s;
        let trace = Trace::constant(lambda, 30_000.0 / lambda);
        let sim = Simulation::new(&p, SimulationConfig::new(1, 0.5).seeded(0xD5))
            .expect("valid simulation config");
        let mut scheme = SingleService { model };
        let mut monitor = LoadMonitor::new();
        let report = sim.run(&trace, &mut scheme, &mut monitor);
        let rel = (report.mean_utilization - rho).abs() / rho;
        assert!(
            rel < 0.03,
            "rho={rho}: observed utilization {} (rel {rel:.3})",
            report.mean_utilization
        );
    }
}

#[test]
fn md1_wait_grows_superlinearly_with_utilization() {
    let p = profile();
    let model = p.fastest_model();
    let (w3, _) = run_md1(&p, model, 0.3, 0xD2);
    let (w6, _) = run_md1(&p, model, 0.6, 0xD2);
    let (w9, _) = run_md1(&p, model, 0.9, 0xD2);
    // Doubling utilization should far more than double the wait.
    assert!(w6 > 2.0 * w3, "w3={w3} w6={w6}");
    assert!(w9 > 3.0 * w6, "w6={w6} w9={w9}");
}

#[test]
fn response_time_is_wait_plus_service() {
    let p = profile();
    let model = p.fastest_model();
    let s = p.latency(model, 1).unwrap();
    let rho = 0.5;
    let lambda = rho / s;
    let trace = Trace::constant(lambda, 30_000.0 / lambda);
    let sim = Simulation::new(&p, SimulationConfig::new(1, 0.5).seeded(0xD3))
        .expect("valid simulation config");
    let mut scheme = SingleService { model };
    let mut monitor = LoadMonitor::new();
    let report = sim.run(&trace, &mut scheme, &mut monitor);
    let diff = report.mean_response_s - report.mean_queue_wait_s - s;
    assert!(
        diff.abs() < 1e-9,
        "response {} != wait {} + service {s}",
        report.mean_response_s,
        report.mean_queue_wait_s
    );
}

#[test]
fn multi_server_reduces_wait_at_fixed_total_load() {
    // M/D/c with the same per-server utilization waits *less* than c
    // independent M/D/1s — pooling efficiency. Our central-queue eager
    // dispatch is exactly the pooled system.
    let p = profile();
    let model = p.fastest_model();
    let s = p.latency(model, 1).unwrap();
    let rho = 0.7;
    let c = 8usize;
    let lambda = c as f64 * rho / s;
    let trace = Trace::constant(lambda, 80_000.0 / lambda);
    let sim = Simulation::new(&p, SimulationConfig::new(c, 0.5).seeded(0xD4))
        .expect("valid simulation config");
    let mut scheme = SingleService { model };
    let mut monitor = LoadMonitor::new();
    let report = sim.run(&trace, &mut scheme, &mut monitor);
    let md1_wait = rho * s / (2.0 * (1.0 - rho));
    assert!(
        report.mean_queue_wait_s < md1_wait / 2.0,
        "pooled wait {} should be well under the M/D/1 wait {md1_wait}",
        report.mean_queue_wait_s
    );
}
