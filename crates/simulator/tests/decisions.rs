//! Decision provenance and counterfactual replay invariants (ISSUE 8):
//! recording is off-by-default byte-identical, records carry coherent
//! provenance, forcing a decision's own chosen action reproduces the
//! factual run byte for byte, and invalid forcings fail loudly.

use std::time::Duration;

use ramsis_core::{Discretization, PolicyConfig, PolicySet};
use ramsis_profiles::{ModelCatalog, ProfilerConfig, WorkerProfile};
use ramsis_sim::{
    FaultPlan, ForcedDecision, ResiliencePolicy, RetryPolicy, Selection, Simulation,
    SimulationConfig, TimeoutPolicy,
};
use ramsis_telemetry::{
    ChosenAction, NullDecisionSink, NullSink, ReasonCode, VecDecisionSink, VecSink,
};
use ramsis_workload::{LoadMonitor, Trace};

fn profile() -> &'static WorkerProfile {
    use std::sync::OnceLock;
    static PROFILE: OnceLock<WorkerProfile> = OnceLock::new();
    PROFILE.get_or_init(|| {
        WorkerProfile::build(
            &ModelCatalog::torchvision_image(),
            Duration::from_millis(150),
            ProfilerConfig::default(),
        )
    })
}

fn scheme() -> ramsis_sim::RamsisScheme {
    let config = PolicyConfig::builder(Duration::from_millis(150))
        .workers(2)
        .discretization(Discretization::fixed_length(10))
        .build();
    ramsis_sim::RamsisScheme::new(
        PolicySet::generate_poisson(profile(), &[40.0, 80.0], &config).unwrap(),
    )
}

fn scenario() -> (Simulation<'static>, Trace, FaultPlan) {
    let config = SimulationConfig::new(2, 0.15).with_resilience(ResiliencePolicy {
        timeout: TimeoutPolicy {
            enabled: true,
            ..TimeoutPolicy::default()
        },
        retry: RetryPolicy {
            max_retries: 1,
            ..RetryPolicy::default()
        },
        ..ResiliencePolicy::default()
    });
    let sim = Simulation::new(profile(), config).unwrap();
    let trace = Trace::constant(80.0, 8.0);
    let plan = FaultPlan::none().crash(0, 2.0).recover(0, 5.0);
    (sim, trace, plan)
}

/// With a disabled decision sink, report and telemetry stream are
/// byte-identical to the plain traced run: recording off costs nothing
/// and perturbs nothing.
#[test]
fn disabled_recording_is_byte_identical() {
    let (sim, trace, plan) = scenario();

    let mut plain_sink = VecSink::new();
    let mut s = scheme();
    let mut est = LoadMonitor::new();
    let plain = sim
        .run_faulted_traced(&trace, &plan, &mut s, &mut est, &mut plain_sink)
        .unwrap();

    let mut null_dec = NullDecisionSink;
    let mut dec_sink = VecSink::new();
    let mut s2 = scheme();
    let mut est2 = LoadMonitor::new();
    let with_null = sim
        .run_faulted_traced_decisions(
            &trace,
            &plan,
            &mut s2,
            &mut est2,
            &mut dec_sink,
            &mut null_dec,
        )
        .unwrap();

    assert_eq!(
        serde_json::to_string(&plain).unwrap(),
        serde_json::to_string(&with_null).unwrap()
    );
    assert_eq!(plain_sink.events().len(), dec_sink.events().len());
    for (a, b) in plain_sink.events().iter().zip(dec_sink.events()) {
        assert_eq!(
            serde_json::to_string(a).unwrap(),
            serde_json::to_string(b).unwrap()
        );
    }
}

/// Recording on: the run's report is still identical, and the records
/// carry coherent provenance — strictly increasing `k`, monotone
/// timestamps per worker-independent stream, MDP state on every
/// selection site, and reason codes drawn from the expected set.
#[test]
fn recording_emits_coherent_records_without_perturbing_the_run() {
    let (sim, trace, plan) = scenario();

    let mut s = scheme();
    let mut est = LoadMonitor::new();
    let plain = sim.run_faulted(&trace, &plan, &mut s, &mut est).unwrap();

    let mut recorder = VecDecisionSink::new();
    let mut s2 = scheme();
    let mut est2 = LoadMonitor::new();
    let recorded = sim
        .run_faulted_traced_decisions(
            &trace,
            &plan,
            &mut s2,
            &mut est2,
            &mut NullSink,
            &mut recorder,
        )
        .unwrap();

    assert_eq!(
        serde_json::to_string(&plain).unwrap(),
        serde_json::to_string(&recorded).unwrap()
    );
    let records = recorder.records();
    assert!(!records.is_empty(), "run produced no decision records");
    for pair in records.windows(2) {
        assert!(pair[0].k < pair[1].k, "k not strictly increasing");
        assert!(pair[0].at <= pair[1].at, "timestamps went backwards");
        assert!(
            pair[0].event <= pair[1].event,
            "event cursor went backwards"
        );
    }
    for r in records {
        match r.reason {
            ReasonCode::PolicyLookup | ReasonCode::Fallback | ReasonCode::DegradedRung => {
                assert!(r.state.is_some(), "selection site without MDP state: {r:?}");
                assert!(
                    !r.candidates.is_empty(),
                    "selection site without candidates: {r:?}"
                );
                assert!(
                    matches!(r.chosen, ChosenAction::Serve { .. } | ChosenAction::Idle),
                    "unexpected chosen action for {:?}: {:?}",
                    r.reason,
                    r.chosen
                );
            }
            ReasonCode::Retry => {
                assert!(matches!(r.chosen, ChosenAction::Retry { .. }));
            }
            ReasonCode::Hedge => {
                assert!(matches!(r.chosen, ChosenAction::Hedge { .. }));
            }
            ReasonCode::Shed => {
                assert!(matches!(r.chosen, ChosenAction::Shed { .. }));
            }
        }
    }
}

/// Forcing a selection-site decision's own raw chosen action replays
/// the factual run byte for byte — report and telemetry stream.
#[test]
fn replaying_the_chosen_action_reproduces_the_run() {
    let (sim, trace, plan) = scenario();

    let mut recorder = VecDecisionSink::new();
    let mut factual_sink = VecSink::new();
    let mut s = scheme();
    let mut est = LoadMonitor::new();
    let factual = sim
        .run_faulted_traced_decisions(
            &trace,
            &plan,
            &mut s,
            &mut est,
            &mut factual_sink,
            &mut recorder,
        )
        .unwrap();

    // Exercise several selection sites across the run, including ones
    // inside the fault window.
    let sites: Vec<_> = recorder
        .records()
        .iter()
        .filter(|r| r.state.is_some())
        .cloned()
        .collect();
    assert!(sites.len() >= 3, "too few selection sites: {}", sites.len());
    for rec in [&sites[0], &sites[sites.len() / 2], &sites[sites.len() - 1]] {
        let action = match rec.chosen {
            ChosenAction::Serve { model, batch } => Selection::Serve {
                model: model as usize,
                batch,
            },
            ChosenAction::Shed { count } => Selection::Drop { count },
            ChosenAction::Idle => Selection::Idle,
            _ => unreachable!("selection sites only"),
        };
        let mut replay_sink = VecSink::new();
        let mut s2 = scheme();
        let mut est2 = LoadMonitor::new();
        let replayed = sim
            .replay_counterfactual(
                &trace,
                &plan,
                &mut s2,
                &mut est2,
                &mut replay_sink,
                ForcedDecision { k: rec.k, action },
            )
            .unwrap();
        assert_eq!(
            serde_json::to_string(&factual).unwrap(),
            serde_json::to_string(&replayed).unwrap(),
            "baseline replay diverged at k={}",
            rec.k
        );
        assert_eq!(factual_sink.events().len(), replay_sink.events().len());
    }
}

/// Forcing a genuinely different action produces a valid (usually
/// different) run: the replay machinery is a real branch, not a no-op.
#[test]
fn forcing_an_alternative_yields_a_valid_run() {
    let (sim, trace, plan) = scenario();

    let mut recorder = VecDecisionSink::new();
    let mut s = scheme();
    let mut est = LoadMonitor::new();
    let factual = sim
        .run_faulted_traced_decisions(
            &trace,
            &plan,
            &mut s,
            &mut est,
            &mut NullSink,
            &mut recorder,
        )
        .unwrap();

    let rec = recorder
        .records()
        .iter()
        .find(|r| matches!(r.chosen, ChosenAction::Serve { .. }))
        .expect("run served something")
        .clone();
    let ChosenAction::Serve { model, batch } = rec.chosen else {
        unreachable!()
    };
    let alt_model = if model == 0 { 1 } else { 0 };
    let mut s2 = scheme();
    let mut est2 = LoadMonitor::new();
    let cf = sim
        .replay_counterfactual(
            &trace,
            &plan,
            &mut s2,
            &mut est2,
            &mut NullSink,
            ForcedDecision {
                k: rec.k,
                action: Selection::Serve {
                    model: alt_model as usize,
                    batch,
                },
            },
        )
        .unwrap();
    assert_eq!(cf.total_arrivals, factual.total_arrivals);
    assert!(cf.served + cf.dropped <= cf.total_arrivals + cf.resilience.retries);
}

/// A forced decision the run never reaches is an error, not a silent
/// reproduction of the factual run.
#[test]
fn forcing_an_unreached_decision_errors() {
    let (sim, trace, plan) = scenario();
    let mut s = scheme();
    let mut est = LoadMonitor::new();
    let err = sim
        .replay_counterfactual(
            &trace,
            &plan,
            &mut s,
            &mut est,
            &mut NullSink,
            ForcedDecision {
                k: u64::MAX,
                action: Selection::Idle,
            },
        )
        .unwrap_err();
    assert!(
        format!("{err}").contains("never applied"),
        "unexpected error: {err}"
    );
}

/// A forced model no worker serves is rejected up front.
#[test]
fn forcing_an_unknown_model_errors() {
    let (sim, trace, plan) = scenario();
    let mut s = scheme();
    let mut est = LoadMonitor::new();
    let err = sim
        .replay_counterfactual(
            &trace,
            &plan,
            &mut s,
            &mut est,
            &mut NullSink,
            ForcedDecision {
                k: 0,
                action: Selection::Serve {
                    model: 10_000,
                    batch: 1,
                },
            },
        )
        .unwrap_err();
    assert!(
        format!("{err}").contains("out of range"),
        "unexpected error: {err}"
    );
}
