//! Heterogeneous clusters (§7: "Worker homogeneity is not a fundamental
//! requirement for RAMSIS since policies are generated per worker"):
//! workers with different model catalogs and latencies, each with its
//! own per-worker policy, behind one round-robin balancer.

use std::time::Duration;

use ramsis_core::{Discretization, PoissonArrivals, PolicyConfig, PolicySet};
use ramsis_profiles::{ModelCatalog, ModelSpec, ProfilerConfig, Task, WorkerProfile};
use ramsis_sim::{PerWorkerRamsis, ServingScheme, Simulation, SimulationConfig};
use ramsis_workload::{OracleMonitor, Trace};

const SLO_S: f64 = 0.15;

fn full_profile() -> WorkerProfile {
    WorkerProfile::build(
        &ModelCatalog::torchvision_image(),
        Duration::from_millis(150),
        ProfilerConfig::default(),
    )
}

fn reduced_profile() -> WorkerProfile {
    WorkerProfile::build(
        &ModelCatalog::reduced_image_3(),
        Duration::from_millis(150),
        ProfilerConfig::default(),
    )
}

/// A catalog whose "hardware" is 1.5x slower per item — a weaker worker
/// generation.
fn slow_hardware_profile() -> WorkerProfile {
    let base = ModelCatalog::torchvision_image();
    let models: Vec<ModelSpec> = base
        .models
        .iter()
        .map(|m| {
            let mut slow = m.clone();
            slow.per_item_s *= 1.5;
            slow
        })
        .collect();
    let catalog = ModelCatalog {
        task: Task::ImageClassification,
        models,
    };
    WorkerProfile::build(
        &catalog,
        Duration::from_millis(150),
        ProfilerConfig::default(),
    )
}

fn per_worker_sets(profiles: &[&WorkerProfile], workers: usize, load: f64) -> Vec<PolicySet> {
    let config = PolicyConfig::builder(Duration::from_millis(150))
        .workers(workers)
        .discretization(Discretization::fixed_length(15))
        .build();
    profiles
        .iter()
        .map(|p| {
            PolicySet::from_policies(vec![ramsis_core::generate_policy(
                p,
                &PoissonArrivals::per_second(load),
                &config,
            )
            .expect("per-worker policy generates")])
            .expect("non-empty")
        })
        .collect()
}

#[test]
fn mixed_catalogs_serve_cleanly() {
    // Half the workers have the full catalog, half only 3 models.
    let full = full_profile();
    let reduced = reduced_profile();
    let workers = 6;
    let load = 150.0;
    let profiles: Vec<&WorkerProfile> = (0..workers)
        .map(|w| if w % 2 == 0 { &full } else { &reduced })
        .collect();
    let sets = per_worker_sets(&profiles, workers, load);
    let mut scheme = PerWorkerRamsis::new(sets);
    assert_eq!(scheme.workers(), workers);
    assert_eq!(scheme.name(), "RAMSIS-hetero");

    let trace = Trace::constant(load, 15.0);
    let sim = Simulation::heterogeneous(profiles, SimulationConfig::new(workers, SLO_S).seeded(61))
        .expect("valid simulation config");
    let mut monitor = OracleMonitor::new(trace.clone());
    let report = sim.run(&trace, &mut scheme, &mut monitor);
    assert_eq!(report.served, report.total_arrivals);
    assert!(
        report.violation_rate < 0.05,
        "violations {}",
        report.violation_rate
    );
    // At 25 QPS per worker, both catalogs can do better than the
    // fastest model, so overall accuracy must beat it.
    assert!(
        report.accuracy_per_satisfied_query > 61.0,
        "accuracy {}",
        report.accuracy_per_satisfied_query
    );
}

#[test]
fn per_worker_policies_adapt_to_hardware_speed() {
    // A mixed fleet of fast and 1.5x-slower workers: the slower workers'
    // policies must pick faster (less accurate) models to hold the SLO.
    let fast = full_profile();
    let slow = slow_hardware_profile();
    let workers = 4;
    let load = 160.0;
    let profiles: Vec<&WorkerProfile> = vec![&fast, &slow, &fast, &slow];
    let sets = per_worker_sets(&profiles, workers, load);

    // Offline, the slow workers' expected accuracy is lower: their
    // policies are shaped by their own latency profiles.
    let fast_acc = sets[0].policies()[0].guarantees().expected_accuracy;
    let slow_acc = sets[1].policies()[0].guarantees().expected_accuracy;
    assert!(
        fast_acc > slow_acc,
        "fast worker E[acc] {fast_acc} should exceed slow worker's {slow_acc}"
    );

    let mut scheme = PerWorkerRamsis::new(sets);
    let trace = Trace::constant(load, 15.0);
    let sim = Simulation::heterogeneous(profiles, SimulationConfig::new(workers, SLO_S).seeded(62))
        .expect("valid simulation config");
    let mut monitor = OracleMonitor::new(trace.clone());
    let report = sim.run(&trace, &mut scheme, &mut monitor);
    assert_eq!(report.served, report.total_arrivals);
    assert!(
        report.violation_rate < 0.05,
        "violations {}",
        report.violation_rate
    );
}

#[test]
fn profile_count_must_match_workers() {
    let full = full_profile();
    let err = Simulation::heterogeneous(vec![&full], SimulationConfig::new(3, SLO_S))
        .err()
        .expect("mismatched profile count must be rejected");
    assert!(
        err.to_string().contains("one profile per worker"),
        "unexpected error: {err}"
    );
}

#[test]
fn slo_mismatch_rejected() {
    let full = full_profile();
    let wrong = WorkerProfile::build(
        &ModelCatalog::torchvision_image(),
        Duration::from_millis(300),
        ProfilerConfig::default(),
    );
    let err = Simulation::heterogeneous(vec![&full, &wrong], SimulationConfig::new(2, SLO_S))
        .err()
        .expect("SLO mismatch must be rejected");
    assert!(
        err.to_string().contains("profile was built for SLO"),
        "unexpected error: {err}"
    );
}
