//! Property tests for the elastic-capacity layer: the hysteresis
//! controller's decisions stay inside the pool bounds and the
//! per-action step limit, actions never come faster than the cooldown,
//! and whole autoscaled simulations are byte-identical under a shared
//! seed — over randomized policies and signal sequences.

use proptest::prelude::*;

use ramsis_profiles::{ModelCatalog, ProfilerConfig, WorkerProfile};
use ramsis_sim::{
    AutoscalePolicy, Autoscaler, FastestFixed, HysteresisController, Routing, ScaleSignal,
    Simulation, SimulationConfig,
};
use ramsis_telemetry::VecSink;
use ramsis_workload::{LoadMonitor, Trace};

use std::sync::OnceLock;

fn profile() -> &'static WorkerProfile {
    static PROFILE: OnceLock<WorkerProfile> = OnceLock::new();
    PROFILE.get_or_init(|| {
        WorkerProfile::build(
            &ModelCatalog::torchvision_image(),
            std::time::Duration::from_millis(150),
            ProfilerConfig::default(),
        )
    })
}

/// A random enabled policy with every knob inside its valid range.
struct ArbPolicy;

impl Strategy for ArbPolicy {
    type Value = AutoscalePolicy;

    fn generate(&self, rng: &mut proptest::ChaCha8Rng) -> AutoscalePolicy {
        let min = Strategy::generate(&(1usize..4), rng);
        let extra = Strategy::generate(&(0usize..5), rng);
        let target = Strategy::generate(&(10.0f64..150.0), rng);
        let mut p = AutoscalePolicy::elastic(min, min + extra, target);
        p.warmup_s = Strategy::generate(&(0.0f64..1.0), rng);
        p.up_confirm = Strategy::generate(&(1u32..4), rng);
        p.down_confirm = Strategy::generate(&(1u32..8), rng);
        p.cooldown_s = Strategy::generate(&(0.0f64..1.0), rng);
        p.max_step = Strategy::generate(&(1usize..4), rng);
        p
    }
}

/// A random signal sequence with strictly increasing time.
struct ArbSignals {
    max_pool: usize,
}

impl Strategy for ArbSignals {
    type Value = Vec<ScaleSignal>;

    fn generate(&self, rng: &mut proptest::ChaCha8Rng) -> Vec<ScaleSignal> {
        let n = Strategy::generate(&(1usize..120), rng);
        let mut now = 0.0;
        (0..n)
            .map(|_| {
                now += Strategy::generate(&(0.05f64..0.5), rng);
                ScaleSignal {
                    now_s: now,
                    load_qps: Strategy::generate(&(0.0f64..400.0), rng),
                    trend_qps_per_s: Strategy::generate(&(-200.0f64..200.0), rng),
                    live: Strategy::generate(&(0..self.max_pool + 1), rng),
                    warming: Strategy::generate(&(0usize..3), rng),
                    draining: Strategy::generate(&(0usize..3), rng),
                    queued: Strategy::generate(&(0usize..100), rng),
                }
            })
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every decision lands inside `[min_workers, max_workers]`, and —
    /// whenever the current pool is itself inside the bounds — moves at
    /// most `max_step` from it.
    #[test]
    fn decisions_are_bounded(
        policy in ArbPolicy,
        signals in ArbSignals { max_pool: 8 },
    ) {
        policy.validate().expect("generated policy is valid");
        let mut ctl = HysteresisController::new(policy);
        for sig in &signals {
            let desired = ctl.desired_workers(sig);
            prop_assert!(
                (policy.min_workers..=policy.max_workers).contains(&desired),
                "desired {} outside [{}, {}]",
                desired, policy.min_workers, policy.max_workers
            );
            let current = (sig.live + sig.warming).min(policy.max_workers);
            if current >= policy.min_workers {
                prop_assert!(
                    desired.abs_diff(current) <= policy.max_step,
                    "moved {} -> {} past max_step {}",
                    current, desired, policy.max_step
                );
            }
        }
    }

    /// Hysteresis is monotone in time: two committed actions (a return
    /// differing from the current pool) are never closer than the
    /// cooldown, so the controller cannot flap faster than configured.
    #[test]
    fn no_flapping_faster_than_cooldown(
        policy in ArbPolicy,
        signals in ArbSignals { max_pool: 8 },
    ) {
        let mut ctl = HysteresisController::new(policy);
        let mut last_action: Option<f64> = None;
        for sig in &signals {
            let current = (sig.live + sig.warming)
                .min(policy.max_workers)
                .clamp(policy.min_workers, policy.max_workers);
            let desired = ctl.desired_workers(sig);
            if desired != current {
                if let Some(t) = last_action {
                    prop_assert!(
                        sig.now_s - t >= policy.cooldown_s - 1e-9,
                        "actions at {:.3}s and {:.3}s inside cooldown {:.3}s",
                        t, sig.now_s, policy.cooldown_s
                    );
                }
                last_action = Some(sig.now_s);
            }
        }
    }

    /// The controller is a pure function of the signal sequence:
    /// replaying it yields identical decisions.
    #[test]
    fn controller_is_deterministic(
        policy in ArbPolicy,
        signals in ArbSignals { max_pool: 8 },
    ) {
        let run = || {
            let mut ctl = HysteresisController::new(policy);
            signals.iter().map(|s| ctl.desired_workers(s)).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}

proptest! {
    // Whole-engine cases are expensive; a handful of random policies is
    // plenty on top of the pinned integration tests.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Two executions of the same seeded elastic simulation are
    /// byte-identical: same serialized report, same event stream.
    #[test]
    fn seeded_elastic_runs_are_byte_identical(
        policy in ArbPolicy,
        seed in proptest::num::u64::ANY,
        load in 20.0f64..250.0,
    ) {
        let trace = Trace::constant(load, 2.0);
        let config = SimulationConfig::new(policy.min_workers, 0.15)
            .seeded(seed)
            .with_autoscale(policy);
        let sim = Simulation::new(profile(), config).expect("valid elastic config");
        let run = || {
            let mut scheme =
                FastestFixed::new(profile().fastest_model(), Routing::PerWorkerRoundRobin);
            let mut monitor = LoadMonitor::new();
            let mut sink = VecSink::new();
            let report = sim.run_traced(&trace, &mut scheme, &mut monitor, &mut sink);
            (report, sink.into_events())
        };
        let (r1, e1) = run();
        let (r2, e2) = run();
        prop_assert_eq!(&r1, &r2);
        prop_assert_eq!(
            serde_json::to_string(&r1).expect("reports serialize"),
            serde_json::to_string(&r2).expect("reports serialize")
        );
        prop_assert_eq!(e1, e2);
    }
}
