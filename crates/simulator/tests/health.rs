//! Integration tests for the perceived-health subsystem (DESIGN.md
//! §14): a disabled detector reproduces the oracle engine byte for
//! byte, a pinned crash is suspected within the policy's provable
//! bound, and fault recovery racing autoscale scale-in keeps drain
//! accounting and conservation intact.

use ramsis_profiles::{ModelCatalog, ProfilerConfig, WorkerProfile};
use ramsis_sim::{
    AutoscalePolicy, FastestFixed, FaultPlan, HealthPolicy, Routing, Simulation, SimulationConfig,
};
use ramsis_telemetry::{conservation, Event, VecSink};
use ramsis_workload::{LoadMonitor, Trace, TraceKind};

fn profile() -> WorkerProfile {
    WorkerProfile::build(
        &ModelCatalog::torchvision_image(),
        std::time::Duration::from_millis(150),
        ProfilerConfig::default(),
    )
}

/// The canonical gray-failure plan: a crash with a later recovery, a
/// heartbeat partition, and a batch-error window on distinct workers.
fn gray_plan() -> FaultPlan {
    FaultPlan::none()
        .crash(1, 3.0)
        .recover(1, 7.0)
        .partition(2, 4.0, 6.0)
        .error_rate(3, 5.0, 8.0, 0.6)
}

fn run_plan(
    config: SimulationConfig,
    plan: &FaultPlan,
    trace: &Trace,
) -> (ramsis_sim::SimulationReport, Vec<Event>) {
    let profile = profile();
    let sim = Simulation::new(&profile, config).expect("valid simulation config");
    let mut scheme = FastestFixed::new(profile.fastest_model(), Routing::PerWorkerRoundRobin);
    let mut monitor = LoadMonitor::new();
    let mut sink = VecSink::new();
    let report = sim
        .run_faulted_traced(trace, plan, &mut scheme, &mut monitor, &mut sink)
        .expect("plan validates");
    (report, sink.into_events())
}

/// A disabled `HealthPolicy` must not perturb the simulation: same
/// serialized report, same event stream as a config with no health
/// block at all.
#[test]
fn disabled_detector_is_byte_identical_to_oracle() {
    let trace = Trace::constant(120.0, 10.0);
    let plan = gray_plan();
    let base = SimulationConfig::new(5, 0.15).seeded(0xBEEF);
    let mut off = HealthPolicy::probing(0.02);
    off.enabled = false;

    let (r1, e1) = run_plan(base, &plan, &trace);
    let (r2, e2) = run_plan(base.with_health(off), &plan, &trace);
    assert_eq!(
        serde_json::to_string(&r1).expect("report serializes"),
        serde_json::to_string(&r2).expect("report serializes"),
    );
    assert_eq!(e1, e2);
    assert!(r1.health.is_none() && r2.health.is_none());
}

/// A pinned crash is suspected within `detection_bound_s` of the crash
/// instant, the suspicion is stamped genuine, and the dead worker's
/// stranded queue is displaced onto survivors.
#[test]
fn pinned_crash_is_suspected_within_bound() {
    let trace = Trace::constant(120.0, 10.0);
    let plan = FaultPlan::none().crash(1, 3.0);
    let policy = HealthPolicy::probing(0.02);
    let config = SimulationConfig::new(4, 0.15)
        .seeded(0xABCD)
        .with_health(policy);

    let (report, events) = run_plan(config, &plan, &trace);
    let stats = report.health.expect("health-enabled run reports stats");
    assert_eq!(stats.suspects_genuine, 1, "exactly one genuine suspicion");
    let bound_s = policy.detection_bound_s();
    assert!(
        stats.max_detection_lag_s <= bound_s + 1e-9,
        "detection lag {:.4}s exceeds the provable bound {bound_s:.4}s",
        stats.max_detection_lag_s
    );

    let suspect = events
        .iter()
        .find_map(|e| match *e {
            Event::Suspect {
                at,
                worker: 1,
                genuine,
                lag_ns,
            } => Some((at, genuine, lag_ns)),
            _ => None,
        })
        .expect("worker 1 is suspected");
    let (at, genuine, lag_ns) = suspect;
    assert!(genuine, "crash suspicion is stamped genuine");
    let crash_ns = 3_000_000_000u64;
    assert!(at >= crash_ns, "suspicion cannot precede the crash");
    assert!(
        at - crash_ns <= (bound_s * 1e9) as u64 + 1,
        "suspected {:.4}s after the crash, bound is {bound_s:.4}s",
        (at - crash_ns) as f64 / 1e9
    );
    assert_eq!(at - crash_ns, lag_ns, "emitted lag matches the event time");
    assert!(
        stats.requeued_on_suspect > 0,
        "the dead worker's stranded queue is displaced on suspicion"
    );
    // No recovery in the plan: the worker must still be ejected when
    // the run ends.
    assert_eq!(stats.suspected_at_end, 1);
}

/// Fault recovery racing autoscale scale-in (`WorkerRecover` while the
/// pool is Draining): a step-down trace forces drains around the
/// recovery instant; whatever the interleaving, drain accounting stays
/// paired, conservation holds, and the run is deterministic.
#[test]
fn recover_racing_scale_in_keeps_drain_accounting() {
    // 6 s of high load (pool scales out), then 6 s of trickle (pool
    // drains back down); the crash at 2 s recovers at 7 s, inside the
    // scale-in era.
    let samples = [
        220.0, 220.0, 220.0, 220.0, 220.0, 220.0, 8.0, 8.0, 8.0, 8.0, 8.0, 8.0,
    ];
    let trace = Trace::from_interval_qps(&samples, 1.0, TraceKind::Custom);
    let plan = FaultPlan::none().crash(1, 2.0).recover(1, 7.0);
    let policy = AutoscalePolicy::elastic(2, 6, 60.0);
    let config = SimulationConfig::new(2, 0.15)
        .seeded(0xD12A)
        .with_autoscale(policy);

    let (r1, e1) = run_plan(config, &plan, &trace);
    let (r2, e2) = run_plan(config, &plan, &trace);
    assert_eq!(
        serde_json::to_string(&r1).expect("report serializes"),
        serde_json::to_string(&r2).expect("report serializes"),
        "recover-during-drain run must be deterministic"
    );
    assert_eq!(e1, e2);

    let c = conservation(&e1);
    assert!(c.holds(), "conservation violated: {c:?}");

    let stats = r1.autoscale.as_ref().expect("elastic run reports stats");
    let scale_downs = e1
        .iter()
        .filter(|e| matches!(e, Event::ScaleDown { .. }))
        .count() as u64;
    let drains = e1
        .iter()
        .filter(|e| matches!(e, Event::DrainComplete { .. }))
        .count() as u64;
    assert!(
        scale_downs >= 1,
        "the step-down trace must trigger scale-in"
    );
    assert_eq!(scale_downs, stats.scale_downs);
    assert_eq!(drains, stats.drains_completed);
    assert!(
        drains <= scale_downs,
        "a drain completed without a matching scale-in"
    );

    // Per-worker pairing: every DrainComplete closes exactly one open
    // ScaleDown for that worker. Crashes emit no telemetry of their
    // own, but the plan's crash instant is known — a crash voids any
    // open drain on that worker (the slot goes Down without a
    // DrainComplete).
    let workers = 6;
    let crash_ns = 2_000_000_000u64;
    let mut crash_applied = false;
    let mut draining = vec![false; workers];
    for e in &e1 {
        if !crash_applied && e.at() >= crash_ns {
            draining[1] = false;
            crash_applied = true;
        }
        match *e {
            Event::ScaleDown { worker, .. } => {
                let w = worker as usize;
                assert!(!draining[w], "worker {w} sent draining twice");
                draining[w] = true;
            }
            Event::DrainComplete { worker, .. } => {
                let w = worker as usize;
                assert!(draining[w], "worker {w} drained without a scale-in");
                draining[w] = false;
            }
            _ => {}
        }
    }
}
