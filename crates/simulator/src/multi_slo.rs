//! Multiple latency SLOs (paper appendix §G).
//!
//! "RAMSIS handles multiple latency SLOs similar to existing systems
//! \[32\]: each worker is assigned a latency SLO, per-SLO central queues
//! are instantiated, and workers are associated with a central queue
//! whose SLO matches." The SLO classes therefore do not interact: this
//! module splits the application's arrival stream across classes (each
//! query carries one SLO, drawn with the class's traffic share) and
//! runs each class's queue-and-workers partition independently.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use ramsis_profiles::WorkerProfile;
use ramsis_workload::{sample_poisson_arrivals, LoadEstimator, Trace};

use crate::engine::{Simulation, SimulationConfig};
use crate::latency::LatencyMode;
use crate::metrics::SimulationReport;
use crate::scheme::ServingScheme;

/// One latency-SLO class: a worker partition serving one SLO.
pub struct SloClass<'a> {
    /// Label for the report (e.g. `"150ms"`).
    pub name: String,
    /// The class's profile — its SLO is the class SLO.
    pub profile: &'a WorkerProfile,
    /// Workers assigned to this class.
    pub workers: usize,
    /// This class's share of the application's arrivals (relative
    /// weight; the set is normalized).
    pub weight: f64,
}

/// Runs a multi-SLO cluster over one application arrival stream.
///
/// Arrivals are sampled from `trace` (Poisson) and each query is
/// assigned to a class with probability proportional to its weight;
/// each class then runs on its own central queue and workers with its
/// own scheme and load estimator. Returns one report per class, in
/// class order.
///
/// # Panics
///
/// Panics if the slice lengths disagree, any weight is non-positive, or
/// a class has no workers.
pub fn run_multi_slo(
    classes: &[SloClass<'_>],
    schemes: &mut [Box<dyn ServingScheme + '_>],
    estimators: &mut [Box<dyn LoadEstimator>],
    trace: &Trace,
    latency: LatencyMode,
    seed: u64,
) -> Vec<SimulationReport> {
    assert!(!classes.is_empty(), "need at least one SLO class");
    assert_eq!(classes.len(), schemes.len(), "one scheme per class");
    assert_eq!(classes.len(), estimators.len(), "one estimator per class");
    let total_weight: f64 = classes.iter().map(|c| c.weight).sum();
    for c in classes {
        assert!(
            c.weight > 0.0 && c.weight.is_finite(),
            "class {} weight must be positive",
            c.name
        );
        assert!(c.workers > 0, "class {} needs workers", c.name);
    }

    // Sample the application's arrival stream once, then split it.
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let arrivals = sample_poisson_arrivals(trace, &mut rng);
    let mut per_class: Vec<Vec<f64>> = vec![Vec::new(); classes.len()];
    for &t in &arrivals {
        let mut x: f64 = rng.gen::<f64>() * total_weight;
        let mut chosen = classes.len() - 1;
        for (i, c) in classes.iter().enumerate() {
            if x < c.weight {
                chosen = i;
                break;
            }
            x -= c.weight;
        }
        per_class[chosen].push(t);
    }

    classes
        .iter()
        .zip(schemes.iter_mut())
        .zip(estimators.iter_mut())
        .zip(per_class)
        .map(|(((class, scheme), estimator), class_arrivals)| {
            let mut config =
                SimulationConfig::new(class.workers, class.profile.slo()).seeded(seed ^ 0xC1A5);
            config.latency = latency;
            let sim = Simulation::new(class.profile, config)
                .expect("class configs are asserted valid above");
            let mut report = sim.run_arrivals(&class_arrivals, scheme.as_mut(), estimator.as_mut());
            report.scheme = format!("{} @ {}", report.scheme, class.name);
            report
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{Routing, Selection, SelectionContext};
    use ramsis_profiles::{ModelCatalog, ProfilerConfig};
    use ramsis_workload::LoadMonitor;
    use std::time::Duration;

    struct Fastest(usize);
    impl ServingScheme for Fastest {
        fn name(&self) -> &str {
            "fastest"
        }
        fn routing(&self) -> Routing {
            Routing::Central
        }
        fn select(&mut self, ctx: &SelectionContext) -> Selection {
            Selection::Serve {
                model: self.0,
                batch: (ctx.queued as u32).min(8),
            }
        }
    }

    fn profile(slo_ms: u64) -> WorkerProfile {
        WorkerProfile::build(
            &ModelCatalog::torchvision_image(),
            Duration::from_millis(slo_ms),
            ProfilerConfig::default(),
        )
    }

    #[test]
    fn arrivals_split_by_weight_and_all_served() {
        let tight = profile(150);
        let loose = profile(500);
        let classes = vec![
            SloClass {
                name: "150ms".into(),
                profile: &tight,
                workers: 6,
                weight: 3.0,
            },
            SloClass {
                name: "500ms".into(),
                profile: &loose,
                workers: 2,
                weight: 1.0,
            },
        ];
        let mut schemes: Vec<Box<dyn ServingScheme>> = vec![
            Box::new(Fastest(tight.fastest_model())),
            Box::new(Fastest(loose.fastest_model())),
        ];
        let mut estimators: Vec<Box<dyn LoadEstimator>> =
            vec![Box::new(LoadMonitor::new()), Box::new(LoadMonitor::new())];
        let trace = Trace::constant(400.0, 10.0);
        let reports = run_multi_slo(
            &classes,
            &mut schemes,
            &mut estimators,
            &trace,
            LatencyMode::DeterministicP95,
            3,
        );
        assert_eq!(reports.len(), 2);
        let total: u64 = reports.iter().map(|r| r.total_arrivals).sum();
        let served: u64 = reports.iter().map(|r| r.served).sum();
        assert_eq!(total, served);
        assert!(total > 3_000);
        // 3:1 split within binomial noise.
        let share = reports[0].total_arrivals as f64 / total as f64;
        assert!((share - 0.75).abs() < 0.03, "share = {share}");
        // Class labels propagate.
        assert!(reports[0].scheme.contains("150ms"));
        assert!(reports[1].scheme.contains("500ms"));
    }

    #[test]
    fn classes_are_isolated() {
        // Overloading one class must not hurt the other: give the tight
        // class one worker for 90% of a heavy load, and the loose class
        // plenty.
        let tight = profile(150);
        let loose = profile(500);
        let classes = vec![
            SloClass {
                name: "tight".into(),
                profile: &tight,
                workers: 1,
                weight: 9.0,
            },
            SloClass {
                name: "loose".into(),
                profile: &loose,
                workers: 8,
                weight: 1.0,
            },
        ];
        let mut schemes: Vec<Box<dyn ServingScheme>> = vec![
            Box::new(Fastest(tight.fastest_model())),
            Box::new(Fastest(loose.fastest_model())),
        ];
        let mut estimators: Vec<Box<dyn LoadEstimator>> =
            vec![Box::new(LoadMonitor::new()), Box::new(LoadMonitor::new())];
        let trace = Trace::constant(600.0, 10.0);
        let reports = run_multi_slo(
            &classes,
            &mut schemes,
            &mut estimators,
            &trace,
            LatencyMode::DeterministicP95,
            4,
        );
        assert!(reports[0].violation_rate > 0.3, "tight class should drown");
        assert!(
            reports[1].violation_rate < 0.01,
            "loose class must be unaffected, got {}",
            reports[1].violation_rate
        );
    }

    #[test]
    #[should_panic(expected = "one scheme per class")]
    fn rejects_mismatched_slices() {
        let p = profile(150);
        let classes = vec![SloClass {
            name: "x".into(),
            profile: &p,
            workers: 1,
            weight: 1.0,
        }];
        let mut schemes: Vec<Box<dyn ServingScheme>> = vec![];
        let mut estimators: Vec<Box<dyn LoadEstimator>> = vec![Box::new(LoadMonitor::new())];
        let _ = run_multi_slo(
            &classes,
            &mut schemes,
            &mut estimators,
            &Trace::constant(10.0, 1.0),
            LatencyMode::DeterministicP95,
            0,
        );
    }
}
