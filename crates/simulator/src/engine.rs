//! The discrete-event simulation engine.
//!
//! Events are processed in `(time, sequence)` order from a binary heap,
//! so runs are exactly reproducible. The event kinds are: a query
//! arrival at the central queue, a worker completing a batch, an
//! injected fault from a [`FaultPlan`] (crash, recovery, slowdown), and
//! — when the [`ResiliencePolicy`] enables them — a dispatch timeout, a
//! hedge trigger, and a retry re-entry. Workers never idle while their
//! visible queue is non-empty (unless the scheme explicitly declines to
//! serve), and routing skips dead workers.
//!
//! Every dispatch ends in exactly one of: completion (`WorkerDone`),
//! timeout, or crash displacement. The worker's epoch is bumped at each
//! such end, so any still-queued end event for the old dispatch (a
//! timeout racing a completion, a hedge racing a cancel) is recognized
//! as stale and discarded — the scheduled-event set never needs
//! surgical removal from the heap.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use ramsis_profiles::WorkerProfile;
use ramsis_stats::LogHistogram;
use ramsis_telemetry::{
    Action, CandidateAction, ChosenAction, DecisionRecord, DecisionSink, DecisionState, Event,
    GaugeId, HotCounter, NullSink, Phase, Profiler, QueueId, ReasonCode, ShedCause, TelemetrySink,
};
use ramsis_workload::{sample_poisson_arrivals, LoadEstimator, Trace};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::autoscale::{
    AutoscalePolicy, AutoscaleStats, Autoscaler, BrownoutLadder, BrownoutTransition,
    HysteresisController, ScaleSignal, WorkerState,
};
use crate::checkpoint::{
    arrivals_fingerprint, AutoscaleState, CheckpointPolicy, CheckpointRecorder, ClusterState,
    EngineSnapshot, HeapEntry, InFlightState, ResilienceState, SnapshotMeta, SNAPSHOT_VERSION,
};
use crate::faults::{CrashPolicy, FaultEvent, FaultPlan};
use crate::health::{HealthMonitor, HealthPolicy, ProbeStep};
use crate::latency::{LatencyMode, LatencySampler};
use crate::metrics::{MetricsCollector, SimulationReport};
use crate::query::{nanos_from_secs, secs_from_nanos, Nanos, Query};
use crate::resilience::{
    backoff_delay_s, splitmix64, AdmissionPolicy, CoDelAdmission, ResiliencePolicy, RetryBudget,
};
use crate::scheme::{Routing, Selection, SelectionContext, ServingScheme};
use crate::SimError;

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationConfig {
    /// Number of workers.
    pub workers: usize,
    /// Response-latency SLO in seconds (stamps query deadlines).
    pub slo_s: f64,
    /// Service-time realization mode.
    pub latency: LatencyMode,
    /// Seed for arrival-time sampling.
    pub arrival_seed: u64,
    /// Seed for stochastic service times.
    pub latency_seed: u64,
    /// Collect a per-window timeline in the report (window length in
    /// seconds); `None` disables it.
    pub timeline_window_s: Option<f64>,
    /// Request-level resilience knobs (timeouts, retry, hedging,
    /// admission control). The default disables every mechanism and
    /// reproduces pre-resilience behavior bit-for-bit.
    pub resilience: ResiliencePolicy,
    /// Elastic-capacity knobs (autoscaler, worker lifecycle, brownout
    /// ladder). The default disables the subsystem and reproduces the
    /// fixed-pool engine bit-for-bit.
    pub autoscale: AutoscalePolicy,
    /// Checkpoint cadence for durable runs (DESIGN.md §12). The default
    /// disables checkpointing and reproduces the pre-checkpoint engine
    /// bit-for-bit; snapshots are only taken when a
    /// [`CheckpointRecorder`] is attached via [`Simulation::run_durable`].
    pub checkpoint: CheckpointPolicy,
    /// Perceived-health knobs (DESIGN.md §14): heartbeat probes, the
    /// phi-accrual failure detector, per-worker circuit breakers, and
    /// EWMA outlier ejection. The default disables the subsystem and
    /// reproduces the oracle-membership engine bit-for-bit.
    pub health: HealthPolicy,
}

impl SimulationConfig {
    /// A config with the given worker count and SLO, deterministic
    /// latency, and fixed seeds.
    pub fn new(workers: usize, slo_s: f64) -> Self {
        Self {
            workers,
            slo_s,
            latency: LatencyMode::DeterministicP95,
            arrival_seed: 1,
            latency_seed: 2,
            timeline_window_s: None,
            resilience: ResiliencePolicy::default(),
            autoscale: AutoscalePolicy::default(),
            checkpoint: CheckpointPolicy::default(),
            health: HealthPolicy::default(),
        }
    }

    /// Enables per-window timeline collection.
    pub fn with_timeline(mut self, window_s: f64) -> Self {
        self.timeline_window_s = Some(window_s);
        self
    }

    /// Installs a request-level resilience policy.
    pub fn with_resilience(mut self, resilience: ResiliencePolicy) -> Self {
        self.resilience = resilience;
        self
    }

    /// Installs an elastic-capacity (autoscaler) policy.
    pub fn with_autoscale(mut self, autoscale: AutoscalePolicy) -> Self {
        self.autoscale = autoscale;
        self
    }

    /// Installs a checkpoint cadence for durable runs.
    pub fn with_checkpoints(mut self, checkpoint: CheckpointPolicy) -> Self {
        self.checkpoint = checkpoint;
        self
    }

    /// Installs a perceived-health policy (probes, failure detector,
    /// circuit breakers).
    pub fn with_health(mut self, health: HealthPolicy) -> Self {
        self.health = health;
        self
    }

    /// Switches to stochastic ("prototype implementation") latency.
    pub fn stochastic(mut self) -> Self {
        self.latency = LatencyMode::Stochastic;
        self
    }

    /// Sets both seeds from one value (different streams derived).
    pub fn seeded(mut self, seed: u64) -> Self {
        self.arrival_seed = seed;
        self.latency_seed = seed ^ 0x9E37_79B9_7F4A_7C15;
        self
    }

    /// Checks the config is runnable.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when there are no workers,
    /// the SLO is not strictly positive and finite, or the timeline
    /// window is degenerate.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.workers == 0 {
            return Err(SimError::InvalidConfig(
                "need at least one worker".to_string(),
            ));
        }
        if !self.slo_s.is_finite() || self.slo_s <= 0.0 {
            return Err(SimError::InvalidConfig(format!(
                "SLO must be positive, got {}",
                self.slo_s
            )));
        }
        if let Some(w) = self.timeline_window_s {
            if !w.is_finite() || w <= 0.0 {
                return Err(SimError::InvalidConfig(format!(
                    "timeline window must be positive, got {w}"
                )));
            }
        }
        self.resilience.validate()?;
        self.autoscale.validate()?;
        self.checkpoint.validate()?;
        self.health.validate()?;
        if self.autoscale.enabled && self.workers > self.autoscale.max_workers {
            return Err(SimError::InvalidConfig(format!(
                "autoscale: initial pool {} exceeds max_workers {}",
                self.workers, self.autoscale.max_workers
            )));
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// Index into the pre-sampled arrival array.
    Arrival(u64),
    /// Worker finished its in-flight batch; the epoch invalidates
    /// completions of dispatches already ended by a crash, timeout, or
    /// hedge cancellation.
    WorkerDone(usize, u64),
    /// Index into the expanded fault-action array.
    Fault(u32),
    /// The worker's in-flight dispatch exceeded its granted timeout
    /// (same epoch discipline as `WorkerDone`). Only scheduled when
    /// [`TimeoutPolicy::enabled`]; a dispatch gets *either* a
    /// `WorkerDone` or a `Timeout`, never both.
    ///
    /// [`TimeoutPolicy::enabled`]: crate::resilience::TimeoutPolicy
    Timeout(usize, u64),
    /// The worker's in-flight dispatch has been running past the hedge
    /// quantile; duplicate it to an idle worker if one exists.
    HedgeDue(usize, u64),
    /// A backed-off query re-enters routing; index into the engine's
    /// retry buffer.
    Retry(u32),
    /// Autoscaler controller tick: evaluate the pool size and the
    /// brownout ladder. Only ever scheduled when
    /// [`AutoscalePolicy::enabled`]; reschedules itself while arrivals
    /// remain.
    ScaleTick,
    /// A warming worker's warm-up latency elapsed (same epoch discipline
    /// as `WorkerDone`: a crash or a cancelling scale-in bumps the epoch
    /// and strands the event).
    WarmupDone(usize, u64),
    /// Health-probe tick: heartbeat every probed worker and feed the
    /// failure detector. Only ever scheduled when
    /// [`HealthPolicy::enabled`]; reschedules itself while arrivals
    /// remain (mirrors `ScaleTick`).
    ///
    /// [`HealthPolicy::enabled`]: crate::health::HealthPolicy
    HealthTick,
}

impl EventKind {
    /// Flattens the kind to `(tag, a, b)` for checkpoint heap entries
    /// (the vendored serde derive has no tuple-variant support, and an
    /// explicit encoding keeps the snapshot format stable anyway).
    fn encode(self) -> (u8, u64, u64) {
        match self {
            EventKind::Arrival(i) => (0, i, 0),
            EventKind::WorkerDone(w, e) => (1, w as u64, e),
            EventKind::Fault(i) => (2, u64::from(i), 0),
            EventKind::Timeout(w, e) => (3, w as u64, e),
            EventKind::HedgeDue(w, e) => (4, w as u64, e),
            EventKind::Retry(i) => (5, u64::from(i), 0),
            EventKind::ScaleTick => (6, 0, 0),
            EventKind::WarmupDone(w, e) => (7, w as u64, e),
            EventKind::HealthTick => (8, 0, 0),
        }
    }

    /// Inverse of [`Self::encode`].
    fn decode(tag: u8, a: u64, b: u64) -> Result<Self, SimError> {
        Ok(match tag {
            0 => EventKind::Arrival(a),
            1 => EventKind::WorkerDone(a as usize, b),
            2 => EventKind::Fault(a as u32),
            3 => EventKind::Timeout(a as usize, b),
            4 => EventKind::HedgeDue(a as usize, b),
            5 => EventKind::Retry(a as u32),
            6 => EventKind::ScaleTick,
            7 => EventKind::WarmupDone(a as usize, b),
            8 => EventKind::HealthTick,
            _ => {
                return Err(SimError::InvalidConfig(format!(
                    "snapshot heap entry has unknown event tag {tag}"
                )))
            }
        })
    }
}

/// The event heap: `(time, sequence, kind)` min-ordered. Sequence
/// numbers are unique, so the `EventKind` ordering never decides.
type EventHeap = BinaryHeap<Reverse<(Nanos, u64, EventKind)>>;

/// Checkpoint/resume context threaded into the core run loop: an
/// optional recorder receiving snapshots at the configured cadence, and
/// an optional snapshot to resume from. Plain runs pass neither and the
/// loop body reduces to one branch per event.
struct DurableCtx<'d> {
    recorder: Option<&'d mut dyn CheckpointRecorder>,
    resume: Option<&'d EngineSnapshot>,
}

impl DurableCtx<'_> {
    fn none() -> Self {
        DurableCtx {
            recorder: None,
            resume: None,
        }
    }
}

/// The alternative a counterfactual replay injects: at decision
/// `k` — the index every run counts across all decision sites whether
/// or not recording is on — the scheme's selection is replaced by
/// `action`. Everything before `k` replays the original run exactly;
/// everything after diverges only through that one change, so the
/// report delta is the *exact* per-decision regret.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForcedDecision {
    /// Decision index to intercept. Only selection-site decisions can
    /// be forced; hedge, retry, and retry-exhaustion records consume
    /// indices but are mechanisms, not choices.
    pub k: u64,
    /// The selection applied instead of the scheme's. A `Serve` batch
    /// or `Drop` count outside `1..=queue` is clamped at the site.
    pub action: Selection,
}

/// Decision-provenance context threaded into the core run loop: an
/// optional sink receiving one record per decision, an optional forced
/// alternative for counterfactual replay, and the decision-index
/// offset when branching from a checkpoint. Plain runs pass none of
/// these and every decision site reduces to one u64 increment.
struct DecisionCtx<'a> {
    sink: Option<&'a mut dyn DecisionSink>,
    forced: Option<ForcedDecision>,
    /// Decisions the snapshotted prefix already made (resume only).
    k_offset: u64,
}

impl DecisionCtx<'_> {
    fn none() -> Self {
        DecisionCtx {
            sink: None,
            forced: None,
            k_offset: 0,
        }
    }
}

/// The run loop's handle on decision provenance (mirror of [`Tracer`]).
/// The index `k` advances at every decision site unconditionally — one
/// u64 add per site, so disabled runs stay bit-identical — while
/// records are only built when an enabled sink is attached.
struct DecisionTracer<'a> {
    sink: Option<&'a mut dyn DecisionSink>,
    on: bool,
    /// Next decision index.
    k: u64,
    /// Heap events fully processed before the current one, stamped
    /// into records so they join against checkpoint `events_done`.
    event: u64,
    forced: Option<ForcedDecision>,
    forced_applied: bool,
}

impl<'a> DecisionTracer<'a> {
    fn new(ctx: DecisionCtx<'a>) -> Self {
        let on = ctx.sink.as_ref().is_some_and(|s| s.enabled());
        Self {
            sink: ctx.sink,
            on,
            k: ctx.k_offset,
            event: 0,
            forced: ctx.forced,
            forced_applied: false,
        }
    }

    /// Claims the next decision index. Called at every site whether or
    /// not recording is on, so a replay's indices always line up with
    /// the recorded run's.
    #[inline]
    fn next(&mut self) -> u64 {
        let k = self.k;
        self.k += 1;
        k
    }

    /// Records the decision `f` builds (handing it the stamped event
    /// count). Callers construct the record only under `self.on`.
    #[inline]
    fn emit(&mut self, f: impl FnOnce(u64) -> DecisionRecord) {
        if self.on {
            if let Some(sink) = self.sink.as_deref_mut() {
                sink.record(&f(self.event));
            }
        }
    }

    /// The forced alternative targeted at decision `k`, if any.
    #[inline]
    fn force(&mut self, k: u64) -> Option<Selection> {
        match self.forced {
            Some(f) if f.k == k => {
                self.forced_applied = true;
                Some(f.action)
            }
            _ => None,
        }
    }
}

/// MDP state coordinates at a selection site, as stamped into a
/// [`DecisionRecord`]. Slack mirrors the telemetry convention: signed
/// nanoseconds, negative once the queue head is past its deadline.
fn decision_state(ctx: &SelectionContext) -> DecisionState {
    DecisionState {
        load_qps: ctx.load_qps,
        queued: ctx.queued as u32,
        slack_ns: (ctx.earliest_slack_s * 1e9).round() as i64,
        live_workers: ctx.live_workers as u32,
    }
}

/// Per-model candidate scores at a selection site: expected head-of-line
/// slack after serving `cand_batch` on each model, and the model's
/// accuracy as its value. Only built when decision recording is on.
fn decision_candidates(
    profile: &WorkerProfile,
    ctx: &SelectionContext,
    cand_batch: u32,
) -> Vec<CandidateAction> {
    let slack_ns = (ctx.earliest_slack_s * 1e9).round() as i64;
    (0..profile.n_models())
        .map(|m| CandidateAction {
            model: m as u32,
            batch: cand_batch,
            expected_slack_ns: slack_ns
                - (profile.latency_extrapolated(m, cand_batch) * 1e9).round() as i64,
            value: profile.accuracy(m),
        })
        .collect()
}

/// A timed, engine-level fault action expanded from a [`FaultPlan`]
/// (slowdowns split into start/end edges; surges are applied to the
/// trace before sampling, not here).
#[derive(Debug, Clone, Copy)]
enum FaultAction {
    Crash(usize),
    Recover(usize),
    SlowStart(usize, f64),
    SlowEnd(usize),
}

fn expand_fault_actions(plan: &FaultPlan) -> Vec<(Nanos, FaultAction)> {
    let mut actions: Vec<(Nanos, FaultAction)> = Vec::new();
    for event in &plan.events {
        match *event {
            FaultEvent::WorkerCrash { worker, at_s } => {
                actions.push((nanos_from_secs(at_s), FaultAction::Crash(worker)));
            }
            FaultEvent::WorkerRecover { worker, at_s } => {
                actions.push((nanos_from_secs(at_s), FaultAction::Recover(worker)));
            }
            FaultEvent::WorkerSlowdown {
                worker,
                from_s,
                to_s,
                factor,
            } => {
                actions.push((
                    nanos_from_secs(from_s),
                    FaultAction::SlowStart(worker, factor),
                ));
                actions.push((nanos_from_secs(to_s), FaultAction::SlowEnd(worker)));
            }
            FaultEvent::ArrivalSurge { .. } => {}
            FaultEvent::WorkerFlap {
                worker,
                from_s,
                to_s,
                period_s,
            } => {
                // 50% duty-cycle square wave of micro-outages: down at
                // from + k·period, back up half a period later (clipped
                // to the window end so the flap always leaves the
                // worker live).
                let mut k = 0u32;
                loop {
                    let down_s = from_s + f64::from(k) * period_s;
                    if down_s >= to_s {
                        break;
                    }
                    let up_s = (down_s + period_s / 2.0).min(to_s);
                    actions.push((nanos_from_secs(down_s), FaultAction::Crash(worker)));
                    actions.push((nanos_from_secs(up_s), FaultAction::Recover(worker)));
                    k += 1;
                }
            }
            // Error rates are drawn per completed batch in the
            // WorkerDone handler; partitions only affect probe
            // delivery. Neither produces a timed membership action.
            FaultEvent::WorkerErrorRate { .. } | FaultEvent::HeartbeatPartition { .. } => {}
        }
    }
    // Stable sort: same-time actions keep their plan order, so runs are
    // deterministic for any plan.
    actions.sort_by_key(|&(t, _)| t);
    actions
}

/// The engine's handle on a run's telemetry sink. `enabled` is read
/// once at run start; with the default [`NullSink`] every emission site
/// reduces to one predictable branch and no event is ever constructed.
struct Tracer<'s> {
    sink: &'s mut dyn TelemetrySink,
    on: bool,
    /// Scratch for draining scheme-buffered audit events.
    buf: Vec<Event>,
    /// Events recorded into the sink so far. Checkpoints carry this
    /// count so a resume can truncate a JSONL log to the exact line the
    /// snapshot saw (healing any torn tail past it).
    emitted: u64,
}

impl<'s> Tracer<'s> {
    fn new(sink: &'s mut dyn TelemetrySink) -> Self {
        let on = sink.enabled();
        Self {
            sink,
            on,
            buf: Vec::new(),
            emitted: 0,
        }
    }

    /// Records the event `f` builds, constructing it only when tracing.
    #[inline]
    fn emit(&mut self, f: impl FnOnce() -> Event) {
        if self.on {
            self.sink.record(&f());
            self.emitted += 1;
        }
    }

    /// Moves the scheme's buffered audit events into the sink, keeping
    /// the stream in simulation-time order.
    fn drain_scheme(&mut self, scheme: &mut dyn ServingScheme) {
        if !self.on {
            return;
        }
        scheme.drain_audit(&mut self.buf);
        for e in self.buf.drain(..) {
            self.sink.record(&e);
            self.emitted += 1;
        }
    }
}

/// One in-flight dispatch: the batch a worker is currently serving.
#[derive(Debug, Clone)]
struct InFlight {
    /// Catalog index of the model being run.
    model: usize,
    /// The batch, in queue order.
    queries: Vec<Query>,
    /// Dispatch time of *this* side (a hedge's own issue time, not the
    /// primary's).
    started: Nanos,
    /// The other side of a hedged pair, while both are running.
    twin: Option<usize>,
    /// True for the duplicate side of a hedged pair (first-wins
    /// accounting credits a hedge win only when this side finishes
    /// first).
    is_hedge: bool,
}

/// Per-worker runtime state shared by the event handlers.
struct Cluster {
    busy: Vec<bool>,
    alive: Vec<bool>,
    /// Service-time multiplier applied at dispatch (1.0 = nominal).
    slow: Vec<f64>,
    /// Bumped whenever a dispatch ends (completion, timeout, crash,
    /// hedge cancel); end events carrying an older epoch are stale.
    epochs: Vec<u64>,
    /// In-flight dispatch per worker.
    in_flight: Vec<Option<InFlight>>,
    /// Crash time of each currently-dead worker.
    down_since: Vec<Option<Nanos>>,
    /// Live worker count (invariant: `alive.iter().filter(|a| **a).count()`).
    live: usize,
    /// Autoscale lifecycle per worker slot. Without autoscaling every
    /// slot stays `Live` forever and `alive` alone tells the story;
    /// with it, `alive[w]` is exactly `lifecycle[w] == Live`, except for
    /// crashed workers (lifecycle `Down` with `down_since` set).
    lifecycle: Vec<WorkerState>,
}

impl Cluster {
    fn new(workers: usize) -> Self {
        Self {
            busy: vec![false; workers],
            alive: vec![true; workers],
            slow: vec![1.0; workers],
            epochs: vec![0; workers],
            in_flight: vec![None; workers],
            down_since: vec![None; workers],
            live: workers,
            lifecycle: vec![WorkerState::Live; workers],
        }
    }

    /// A cluster with `capacity` slots of which the first `initial` are
    /// Live; the rest are Down, waiting on a scale-up.
    fn elastic(capacity: usize, initial: usize) -> Self {
        let mut c = Self::new(capacity);
        for w in initial..capacity {
            c.alive[w] = false;
            c.lifecycle[w] = WorkerState::Down;
        }
        c.live = initial.min(capacity);
        c
    }

    /// Workers currently warming up.
    fn warming(&self) -> usize {
        self.lifecycle
            .iter()
            .filter(|s| **s == WorkerState::Warming)
            .count()
    }

    /// Workers currently draining out.
    fn draining(&self) -> usize {
        self.lifecycle
            .iter()
            .filter(|s| **s == WorkerState::Draining)
            .count()
    }

    /// Externalizes the cluster for a checkpoint.
    fn snapshot(&self) -> ClusterState {
        ClusterState {
            busy: self.busy.clone(),
            alive: self.alive.clone(),
            slow: self.slow.clone(),
            epochs: self.epochs.clone(),
            in_flight: self
                .in_flight
                .iter()
                .map(|o| {
                    o.as_ref().map(|f| InFlightState {
                        model: f.model,
                        queries: f.queries.clone(),
                        started: f.started,
                        twin: f.twin,
                        is_hedge: f.is_hedge,
                    })
                })
                .collect(),
            down_since: self.down_since.clone(),
            live: self.live,
            lifecycle: self.lifecycle.clone(),
        }
    }

    /// Rebuilds the cluster from a checkpoint.
    fn restore(snap: &ClusterState) -> Self {
        Self {
            busy: snap.busy.clone(),
            alive: snap.alive.clone(),
            slow: snap.slow.clone(),
            epochs: snap.epochs.clone(),
            in_flight: snap
                .in_flight
                .iter()
                .map(|o| {
                    o.as_ref().map(|f| InFlight {
                        model: f.model,
                        queries: f.queries.clone(),
                        started: f.started,
                        twin: f.twin,
                        is_hedge: f.is_hedge,
                    })
                })
                .collect(),
            down_since: snap.down_since.clone(),
            live: snap.live,
            lifecycle: snap.lifecycle.clone(),
        }
    }
}

/// The perceived-membership runtime (DESIGN.md §14): the failure
/// detector plus the router's suspicion-filtered view of the pool. Only
/// constructed when [`HealthPolicy::enabled`]; with the policy off
/// nothing here exists and the oracle engine stays bit-identical.
struct HealthRuntime {
    monitor: HealthMonitor,
    /// Routable per the detector: not suspected, and either actually
    /// live or crash-down (the router cannot see a crash until the
    /// detector calls it). Commanded transitions (Warming, Draining,
    /// scaled-down slots) stay visible — the control plane ordered
    /// them, no detection needed.
    view: Vec<bool>,
    /// `view.iter().filter(|v| **v).count()`, kept in lockstep.
    perceived_live: usize,
    /// Probe cadence; ticks stop past `tick_end` (mirrors `ScaleTick`).
    tick_ns: Nanos,
    tick_end: Nanos,
}

impl HealthRuntime {
    /// Recomputes the routing view from ground truth + suspicion.
    fn rebuild_view(&mut self, cluster: &Cluster) {
        self.perceived_live = 0;
        for w in 0..self.view.len() {
            self.view[w] =
                !self.monitor.suspected(w) && (cluster.alive[w] || cluster.down_since[w].is_some());
            if self.view[w] {
                self.perceived_live += 1;
            }
        }
    }
}

/// A borrowed routing view: the perceived membership when health is
/// on; `None` falls back to the oracle view (`cluster.alive`).
#[derive(Clone, Copy)]
struct Perceived<'a> {
    view: &'a [bool],
    live: usize,
}

/// The `Perceived` borrow for the current health state, if any.
macro_rules! perceived {
    ($health:expr) => {
        $health.as_ref().map(|h| Perceived {
            view: &h.view,
            live: h.perceived_live,
        })
    };
}

/// The resilience layer's per-run state. Constructed from the config's
/// [`ResiliencePolicy`]; with the default (all-off) policy none of it
/// is ever consulted on the hot path beyond one branch per site.
struct ResilienceRuntime {
    policy: ResiliencePolicy,
    /// Token bucket shared by all retries in the run.
    budget: RetryBudget,
    /// CoDel admission state per queue: index `w` for worker `w`'s
    /// queue, index `n_workers` for the central queue.
    admission: Vec<CoDelAdmission>,
    /// Observed service times (hedged dispatches included) feeding the
    /// hedge-quantile estimate.
    service_hist: LogHistogram,
    /// Queries waiting out their backoff; `EventKind::Retry` carries an
    /// index into this append-only buffer.
    retry_buf: Vec<Query>,
}

impl ResilienceRuntime {
    fn new(policy: ResiliencePolicy, n_workers: usize) -> Self {
        Self {
            policy,
            budget: RetryBudget::new(policy.retry.budget_rate_per_s, policy.retry.budget_burst),
            admission: vec![CoDelAdmission::default(); n_workers + 1],
            service_hist: LogHistogram::new(),
            retry_buf: Vec::new(),
        }
    }

    /// How long after dispatch a hedge fires, once enough service times
    /// have been observed; `None` while the estimate is still noise.
    fn hedge_delay_ns(&self) -> Option<Nanos> {
        let h = &self.policy.hedge;
        if self.service_hist.count() < h.min_samples {
            return None;
        }
        let p = self.service_hist.percentile(h.quantile)?;
        Some(p.max(nanos_from_secs(h.min_delay_s)))
    }
}

/// The autoscaler's per-run state: the controller, the ladder, and the
/// accounting behind [`AutoscaleStats`]. `None` when the subsystem is
/// disabled — the engine then schedules no ticks and takes exactly its
/// fixed-pool paths.
struct AutoscaleRuntime {
    controller: HysteresisController,
    ladder: BrownoutLadder,
    stats: AutoscaleStats,
    /// Controller tick period in simulated nanoseconds.
    tick_ns: Nanos,
    /// Last arrival time; ticks stop rescheduling past it so the run
    /// terminates.
    tick_end: Nanos,
    /// Live-count integral bookkeeping: time and value at the last
    /// change.
    last_live_change: Nanos,
    live_at_change: usize,
    /// When rung 0 was last left (open brownout episode).
    brownout_since: Option<Nanos>,
}

impl AutoscaleRuntime {
    fn new(policy: AutoscalePolicy, initial_live: usize, n_models: usize, tick_end: Nanos) -> Self {
        let profile_rungs = n_models.saturating_sub(1) as u32;
        Self {
            controller: HysteresisController::new(policy),
            ladder: BrownoutLadder::new(policy.brownout, profile_rungs),
            stats: AutoscaleStats {
                min_live_workers: initial_live,
                max_live_workers: initial_live,
                ..AutoscaleStats::default()
            },
            tick_ns: nanos_from_secs(policy.eval_interval_s).max(1),
            tick_end,
            last_live_change: 0,
            live_at_change: initial_live,
            brownout_since: None,
        }
    }

    /// Folds a live-count change at `now` into the worker-seconds
    /// integral and the min/max tracking.
    fn account_live(&mut self, now: Nanos, new_live: usize) {
        self.stats.worker_seconds +=
            self.live_at_change as f64 * secs_from_nanos(now.saturating_sub(self.last_live_change));
        self.last_live_change = now;
        self.live_at_change = new_live;
        self.stats.min_live_workers = self.stats.min_live_workers.min(new_live);
        self.stats.max_live_workers = self.stats.max_live_workers.max(new_live);
    }

    /// Closes the books at the end of the run.
    fn finalize(mut self, horizon: Nanos) -> AutoscaleStats {
        self.account_live(horizon, self.live_at_change);
        if let Some(start) = self.brownout_since.take() {
            self.stats.brownout_time_s += secs_from_nanos(horizon.saturating_sub(start));
        }
        let horizon_s = secs_from_nanos(horizon);
        self.stats.mean_live_workers = if horizon_s > 0.0 {
            self.stats.worker_seconds / horizon_s
        } else {
            self.live_at_change as f64
        };
        self.stats
    }
}

/// Brownout state consulted on the dispatch hot path, kept apart from
/// [`AutoscaleRuntime`] so `dispatch` borrows only what it needs.
struct BrownoutState {
    /// Active rung; 0 remaps nothing.
    rung: u32,
    /// Model indices fastest → slowest by deterministic batch-1 latency.
    order: Vec<usize>,
    /// `pos[m]` is model `m`'s rank in `order`.
    pos: Vec<usize>,
    /// `Serve` selections remapped so far.
    degraded: u64,
}

impl BrownoutState {
    fn new(profile: &WorkerProfile) -> Self {
        let n = profile.n_models();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            profile
                .latency_extrapolated(a, 1)
                .partial_cmp(&profile.latency_extrapolated(b, 1))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut pos = vec![0usize; n];
        for (rank, &m) in order.iter().enumerate() {
            pos[m] = rank;
        }
        Self {
            rung: 0,
            order,
            pos,
            degraded: 0,
        }
    }

    /// Applies the active rung to a scheme's model choice: rung `r`
    /// bans the `r` slowest models, and a banned choice degrades to the
    /// slowest (most accurate) still-allowed model.
    fn remap(&mut self, model: usize) -> usize {
        if self.rung == 0 || self.order.is_empty() {
            return model;
        }
        let slowest_allowed = self
            .order
            .len()
            .saturating_sub(1)
            .saturating_sub(self.rung as usize)
            .min(self.order.len() - 1);
        if self.pos[model] > slowest_allowed {
            self.degraded += 1;
            self.order[slowest_allowed]
        } else {
            model
        }
    }
}

/// Consults admission control before an enqueue. `true` admits; on
/// refusal the query is shed on the spot (event + counters) and the
/// caller must not enqueue it. With admission disabled this is one
/// branch and no state is touched.
#[allow(clippy::too_many_arguments)]
fn try_admit(
    q: &Query,
    now: Nanos,
    queue_id: QueueId,
    queue: &VecDeque<Query>,
    adm: &mut CoDelAdmission,
    policy: &AdmissionPolicy,
    metrics: &mut MetricsCollector,
    tracer: &mut Tracer<'_>,
) -> bool {
    let depth = queue.len();
    let front = queue.front().map(|h| h.enqueued_at);
    if adm.offer(policy, now, depth, front).is_some() {
        tracer.emit(|| Event::Admission {
            at: now,
            query: q.id,
            queue: queue_id,
            depth: depth as u32,
            sojourn_ns: CoDelAdmission::sojourn_ns(now, front),
        });
        metrics.record_admission_shed(std::slice::from_ref(q));
        false
    } else {
        true
    }
}

/// A simulation run binding worker profiles, a trace, and a scheme.
pub struct Simulation<'a> {
    /// Per-worker profiles; length 1 means a homogeneous cluster.
    profiles: Vec<&'a WorkerProfile>,
    config: SimulationConfig,
}

impl<'a> Simulation<'a> {
    /// Creates a run harness over a homogeneous cluster (every worker
    /// runs `profile`'s hardware and models).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the config fails
    /// [`SimulationConfig::validate`].
    pub fn new(profile: &'a WorkerProfile, config: SimulationConfig) -> Result<Self, SimError> {
        config.validate()?;
        Ok(Self {
            profiles: vec![profile],
            config,
        })
    }

    /// Creates a run harness over a *heterogeneous* cluster: one profile
    /// per worker (§7: "Worker homogeneity is not a fundamental
    /// requirement for RAMSIS since policies are generated per worker").
    /// All profiles must share the SLO class of the config.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the config is degenerate,
    /// `profiles.len() != config.workers`, or a profile's SLO disagrees
    /// with the config's.
    pub fn heterogeneous(
        profiles: Vec<&'a WorkerProfile>,
        config: SimulationConfig,
    ) -> Result<Self, SimError> {
        config.validate()?;
        if config.autoscale.enabled {
            return Err(SimError::InvalidConfig(
                "autoscaling requires a homogeneous cluster: scale-up slots \
                 beyond the initial pool have no profile of their own"
                    .to_string(),
            ));
        }
        if profiles.len() != config.workers {
            return Err(SimError::InvalidConfig(format!(
                "one profile per worker ({} vs {})",
                profiles.len(),
                config.workers
            )));
        }
        for (w, p) in profiles.iter().enumerate() {
            if (p.slo() - config.slo_s).abs() >= 1e-9 {
                return Err(SimError::InvalidConfig(format!(
                    "worker {w}'s profile was built for SLO {}s, config says {}s",
                    p.slo(),
                    config.slo_s
                )));
            }
        }
        Ok(Self { profiles, config })
    }

    /// The profile worker `w` runs.
    fn profile_of(&self, w: usize) -> &'a WorkerProfile {
        if self.profiles.len() == 1 {
            self.profiles[0]
        } else {
            self.profiles[w]
        }
    }

    /// Runs `scheme` over Poisson arrivals sampled from `trace`,
    /// reporting per-query outcomes. `estimator` is the load monitor
    /// shared by all evaluated systems (§6).
    pub fn run(
        &self,
        trace: &Trace,
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
    ) -> SimulationReport {
        self.run_faulted(trace, &FaultPlan::none(), scheme, estimator)
            .expect("empty fault plan always validates")
    }

    /// Runs `scheme` over Poisson arrivals sampled from `trace` with
    /// `plan`'s faults injected. Arrival surges scale the trace before
    /// sampling; crashes, recoveries, and slowdowns play back through
    /// the event heap. Same seeds + same plan give identical reports.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the plan fails
    /// [`FaultPlan::validate`] for this cluster size.
    pub fn run_faulted(
        &self,
        trace: &Trace,
        plan: &FaultPlan,
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
    ) -> Result<SimulationReport, SimError> {
        self.run_faulted_traced(trace, plan, scheme, estimator, &mut NullSink)
    }

    /// [`Self::run`] with every lifecycle and audit event emitted into
    /// `sink`. Same seeds give a byte-identical event stream.
    pub fn run_traced(
        &self,
        trace: &Trace,
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
        sink: &mut dyn TelemetrySink,
    ) -> SimulationReport {
        self.run_faulted_traced(trace, &FaultPlan::none(), scheme, estimator, sink)
            .expect("empty fault plan always validates")
    }

    /// [`Self::run_faulted`] with telemetry emitted into `sink`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the plan fails
    /// [`FaultPlan::validate`] for this cluster size.
    pub fn run_faulted_traced(
        &self,
        trace: &Trace,
        plan: &FaultPlan,
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
        sink: &mut dyn TelemetrySink,
    ) -> Result<SimulationReport, SimError> {
        self.run_faulted_traced_profiled(trace, plan, scheme, estimator, sink, &mut Profiler::off())
    }

    /// [`Self::run`] with the engine's self-profiler attached (no
    /// faults, no telemetry). The profiler observes wall-clock phases
    /// and hot-path counters only — the simulated run, its report, and
    /// any event stream are bit-identical whether the profiler is on,
    /// off, or absent (asserted in the integration suite).
    pub fn run_profiled(
        &self,
        trace: &Trace,
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
        prof: &mut Profiler,
    ) -> SimulationReport {
        self.run_faulted_traced_profiled(
            trace,
            &FaultPlan::none(),
            scheme,
            estimator,
            &mut NullSink,
            prof,
        )
        .expect("empty fault plan always validates")
    }

    /// [`Self::run_faulted_traced`] with the self-profiler attached —
    /// faults, telemetry, and profiling in one run.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the plan fails
    /// [`FaultPlan::validate`] for this cluster size.
    pub fn run_faulted_traced_profiled(
        &self,
        trace: &Trace,
        plan: &FaultPlan,
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
        sink: &mut dyn TelemetrySink,
        prof: &mut Profiler,
    ) -> Result<SimulationReport, SimError> {
        plan.validate(self.config.workers)?;
        prof.run_begin();
        prof.enter(Phase::Setup);
        let arrivals = self.sampled_arrivals(trace, plan);
        prof.exit(Phase::Setup);
        self.run_arrivals_faulted_traced_profiled(&arrivals, plan, scheme, estimator, sink, prof)
    }

    /// Samples the run's Poisson arrivals: surges from `plan` scale the
    /// trace, then arrival times are drawn from the config's arrival
    /// seed. Deterministic — a resumed run re-derives the identical
    /// array.
    fn sampled_arrivals(&self, trace: &Trace, plan: &FaultPlan) -> Vec<f64> {
        let mut surged = trace.clone();
        for (from_s, to_s, factor) in plan.surges() {
            surged = surged.scaled_between(from_s, to_s, factor);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.arrival_seed);
        sample_poisson_arrivals(&surged, &mut rng)
    }

    /// [`Self::run_faulted_traced`] with checkpointing: at the cadence
    /// the config's [`CheckpointPolicy`] sets, the engine snapshots its
    /// complete state into `recorder`. Returns `Ok(None)` when the
    /// recorder stops the run mid-flight (a simulated kill, or a failed
    /// checkpoint write — see [`crate::checkpoint::FileRecorder`]);
    /// otherwise the report is identical to the recorder-less run.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the plan is invalid for
    /// this cluster, the checkpoint policy is disabled, or the scheme /
    /// estimator does not support checkpointing.
    pub fn run_durable(
        &self,
        trace: &Trace,
        plan: &FaultPlan,
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
        sink: &mut dyn TelemetrySink,
        recorder: &mut dyn CheckpointRecorder,
    ) -> Result<Option<SimulationReport>, SimError> {
        self.run_durable_profiled(
            trace,
            plan,
            scheme,
            estimator,
            sink,
            recorder,
            &mut Profiler::off(),
        )
    }

    /// [`Self::run_durable`] with the self-profiler attached; snapshot
    /// capture and the recorder's write are attributed to the
    /// `checkpoint` phase (the `checkpoint_overhead` bench gates on
    /// it).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::run_durable`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_durable_profiled(
        &self,
        trace: &Trace,
        plan: &FaultPlan,
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
        sink: &mut dyn TelemetrySink,
        recorder: &mut dyn CheckpointRecorder,
        prof: &mut Profiler,
    ) -> Result<Option<SimulationReport>, SimError> {
        plan.validate(self.config.workers)?;
        let arrivals = self.sampled_arrivals(trace, plan);
        prof.run_begin();
        let report = self.run_core(
            &arrivals,
            plan,
            scheme,
            estimator,
            sink,
            prof,
            DurableCtx {
                recorder: Some(recorder),
                resume: None,
            },
            DecisionCtx::none(),
        )?;
        prof.run_end();
        Ok(report)
    }

    /// Continues an interrupted run from `snapshot` to completion. The
    /// trace, fault plan, config, and scheme must be the ones the
    /// snapshot was taken under (validated via seeds, pool size, SLO,
    /// scheme name, and an arrival fingerprint). The resumed run's
    /// report — and every telemetry event it emits into `sink` — is
    /// byte-identical to the uninterrupted run's suffix past the
    /// snapshot point.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the snapshot does not
    /// match this run or the scheme / estimator refuses its state.
    pub fn resume(
        &self,
        trace: &Trace,
        plan: &FaultPlan,
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
        sink: &mut dyn TelemetrySink,
        snapshot: &EngineSnapshot,
    ) -> Result<SimulationReport, SimError> {
        plan.validate(self.config.workers)?;
        let arrivals = self.sampled_arrivals(trace, plan);
        let report = self.run_core(
            &arrivals,
            plan,
            scheme,
            estimator,
            sink,
            &mut Profiler::off(),
            DurableCtx {
                recorder: None,
                resume: Some(snapshot),
            },
            DecisionCtx::none(),
        )?;
        Ok(report.expect("run without recorder always completes"))
    }

    /// [`Self::resume`] with checkpointing still on: the continued run
    /// keeps snapshotting into `recorder` at the configured cadence
    /// (cadence points line up with the uninterrupted run's). Returns
    /// `Ok(None)` when the recorder stops the run again.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] under the union of
    /// [`Self::run_durable`]'s and [`Self::resume`]'s conditions.
    #[allow(clippy::too_many_arguments)]
    pub fn resume_durable(
        &self,
        trace: &Trace,
        plan: &FaultPlan,
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
        sink: &mut dyn TelemetrySink,
        snapshot: &EngineSnapshot,
        recorder: &mut dyn CheckpointRecorder,
    ) -> Result<Option<SimulationReport>, SimError> {
        plan.validate(self.config.workers)?;
        let arrivals = self.sampled_arrivals(trace, plan);
        self.run_core(
            &arrivals,
            plan,
            scheme,
            estimator,
            sink,
            &mut Profiler::off(),
            DurableCtx {
                recorder: Some(recorder),
                resume: Some(snapshot),
            },
            DecisionCtx::none(),
        )
    }

    /// Runs `scheme` over explicit arrival times (seconds, sorted).
    pub fn run_arrivals(
        &self,
        arrivals: &[f64],
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
    ) -> SimulationReport {
        self.run_arrivals_faulted(arrivals, &FaultPlan::none(), scheme, estimator)
            .expect("empty fault plan always validates")
    }

    /// [`Self::run_arrivals`] with telemetry emitted into `sink`.
    pub fn run_arrivals_traced(
        &self,
        arrivals: &[f64],
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
        sink: &mut dyn TelemetrySink,
    ) -> SimulationReport {
        self.run_arrivals_faulted_traced(arrivals, &FaultPlan::none(), scheme, estimator, sink)
            .expect("empty fault plan always validates")
    }

    /// Runs `scheme` over explicit arrival times with `plan`'s crash /
    /// recovery / slowdown faults injected. Arrival surges in the plan
    /// are ignored here: explicit arrivals are replayed exactly as
    /// given (use [`Self::run_faulted`] for surge scaling).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the plan fails
    /// [`FaultPlan::validate`] for this cluster size.
    pub fn run_arrivals_faulted(
        &self,
        arrivals: &[f64],
        plan: &FaultPlan,
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
    ) -> Result<SimulationReport, SimError> {
        self.run_arrivals_faulted_traced(arrivals, plan, scheme, estimator, &mut NullSink)
    }

    /// [`Self::run_arrivals_faulted`] with telemetry emitted into
    /// `sink` — the fully general entry point every other run method
    /// funnels into.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the plan fails
    /// [`FaultPlan::validate`] for this cluster size.
    pub fn run_arrivals_faulted_traced(
        &self,
        arrivals: &[f64],
        plan: &FaultPlan,
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
        sink: &mut dyn TelemetrySink,
    ) -> Result<SimulationReport, SimError> {
        self.run_arrivals_faulted_traced_profiled(
            arrivals,
            plan,
            scheme,
            estimator,
            sink,
            &mut Profiler::off(),
        )
    }

    /// [`Self::run_arrivals_faulted_traced`] with the self-profiler
    /// attached — the fully general entry point every other run method
    /// funnels into. The profiler records wall-clock phase timings and
    /// hot-path counters (heap traffic, dispatches, policy lookups,
    /// retry/hedge bookkeeping) without touching the simulated clock:
    /// profiled and unprofiled runs are bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the plan fails
    /// [`FaultPlan::validate`] for this cluster size.
    pub fn run_arrivals_faulted_traced_profiled(
        &self,
        arrivals: &[f64],
        plan: &FaultPlan,
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
        sink: &mut dyn TelemetrySink,
        prof: &mut Profiler,
    ) -> Result<SimulationReport, SimError> {
        let report = self.run_core(
            arrivals,
            plan,
            scheme,
            estimator,
            sink,
            prof,
            DurableCtx::none(),
            DecisionCtx::none(),
        )?;
        Ok(report.expect("run without recorder always completes"))
    }

    /// [`Self::run_faulted_traced`] with decision provenance attached:
    /// every selection, shed, retry, and hedge decision is emitted into
    /// `decisions` as a [`DecisionRecord`]. With a disabled sink the
    /// run is bit-identical to [`Self::run_faulted_traced`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the plan fails
    /// [`FaultPlan::validate`] for this cluster size.
    pub fn run_faulted_traced_decisions(
        &self,
        trace: &Trace,
        plan: &FaultPlan,
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
        sink: &mut dyn TelemetrySink,
        decisions: &mut dyn DecisionSink,
    ) -> Result<SimulationReport, SimError> {
        self.run_faulted_traced_decisions_profiled(
            trace,
            plan,
            scheme,
            estimator,
            sink,
            decisions,
            &mut Profiler::off(),
        )
    }

    /// [`Self::run_faulted_traced_decisions`] with the self-profiler
    /// attached; record construction is attributed to the `decision`
    /// phase (the `decision_overhead` bench gates on it).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::run_faulted_traced_decisions`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_faulted_traced_decisions_profiled(
        &self,
        trace: &Trace,
        plan: &FaultPlan,
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
        sink: &mut dyn TelemetrySink,
        decisions: &mut dyn DecisionSink,
        prof: &mut Profiler,
    ) -> Result<SimulationReport, SimError> {
        plan.validate(self.config.workers)?;
        let arrivals = self.sampled_arrivals(trace, plan);
        prof.run_begin();
        let report = self.run_core(
            &arrivals,
            plan,
            scheme,
            estimator,
            sink,
            prof,
            DurableCtx::none(),
            DecisionCtx {
                sink: Some(decisions),
                forced: None,
                k_offset: 0,
            },
        )?;
        prof.run_end();
        Ok(report.expect("run without recorder always completes"))
    }

    /// Re-runs a seeded scenario with a single forced alternative: at
    /// decision index `forced.k` (the `k` stamped into the factual
    /// run's [`DecisionRecord`]s) the scheme's pick is replaced by
    /// `forced.action`; everything else replays deterministically.
    /// Forcing the factual run's own raw `chosen` action reproduces its
    /// report byte-identically — the exact-regret baseline.
    ///
    /// Only selection-site decisions (reason `PolicyLookup`,
    /// `Fallback`, `DegradedRung`, or `Shed` at a dispatch site) can be
    /// forced; retry/hedge/timeout decisions advance `k` but are not
    /// branch points.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the plan fails
    /// validation, the forced model is out of range, or decision
    /// `forced.k` is never reached (or is not a selection site).
    pub fn replay_counterfactual(
        &self,
        trace: &Trace,
        plan: &FaultPlan,
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
        sink: &mut dyn TelemetrySink,
        forced: ForcedDecision,
    ) -> Result<SimulationReport, SimError> {
        self.validate_forced(&forced)?;
        plan.validate(self.config.workers)?;
        let arrivals = self.sampled_arrivals(trace, plan);
        let report = self.run_core(
            &arrivals,
            plan,
            scheme,
            estimator,
            sink,
            &mut Profiler::off(),
            DurableCtx::none(),
            DecisionCtx {
                sink: None,
                forced: Some(forced),
                k_offset: 0,
            },
        )?;
        Ok(report.expect("run without recorder always completes"))
    }

    /// [`Self::replay_counterfactual`] branching from a checkpoint
    /// instead of replaying from time zero: the run resumes at
    /// `snapshot` and forces `forced.action` at decision `forced.k`.
    /// `k_offset` is the number of decisions the factual run had made
    /// by the snapshot point — count the factual records with
    /// `record.event < snapshot.meta.events_done` — so record indices
    /// keep lining up with the full run's.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the snapshot does not
    /// match this run, `forced.k < k_offset` (the branch point is
    /// before the snapshot), or the forced decision is invalid / never
    /// reached.
    #[allow(clippy::too_many_arguments)]
    pub fn replay_counterfactual_from(
        &self,
        trace: &Trace,
        plan: &FaultPlan,
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
        sink: &mut dyn TelemetrySink,
        snapshot: &EngineSnapshot,
        k_offset: u64,
        forced: ForcedDecision,
    ) -> Result<SimulationReport, SimError> {
        self.validate_forced(&forced)?;
        if forced.k < k_offset {
            return Err(SimError::InvalidConfig(format!(
                "counterfactual: forced decision k={} precedes the snapshot (k_offset={}); \
                 branch from an earlier checkpoint",
                forced.k, k_offset
            )));
        }
        plan.validate(self.config.workers)?;
        let arrivals = self.sampled_arrivals(trace, plan);
        let report = self.run_core(
            &arrivals,
            plan,
            scheme,
            estimator,
            sink,
            &mut Profiler::off(),
            DurableCtx {
                recorder: None,
                resume: Some(snapshot),
            },
            DecisionCtx {
                sink: None,
                forced: Some(forced),
                k_offset,
            },
        )?;
        Ok(report.expect("run without recorder always completes"))
    }

    /// Rejects forced actions no worker in the pool could execute.
    fn validate_forced(&self, forced: &ForcedDecision) -> Result<(), SimError> {
        if let Selection::Serve { model, .. } = forced.action {
            let n_models = self
                .profiles
                .iter()
                .map(|p| p.n_models())
                .min()
                .unwrap_or(0);
            if model >= n_models {
                return Err(SimError::InvalidConfig(format!(
                    "counterfactual: forced model {model} is out of range \
                     (every worker serves {n_models} models)"
                )));
            }
        }
        Ok(())
    }

    /// The run loop every entry point funnels into. `durable` threads
    /// the checkpoint/resume context; with neither a recorder nor a
    /// resume snapshot the loop is bit-identical to the pre-checkpoint
    /// engine. Returns `Ok(None)` only when an attached recorder stops
    /// the run mid-flight.
    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    fn run_core(
        &self,
        arrivals: &[f64],
        plan: &FaultPlan,
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
        sink: &mut dyn TelemetrySink,
        prof: &mut Profiler,
        mut durable: DurableCtx<'_>,
        decisions: DecisionCtx<'_>,
    ) -> Result<Option<SimulationReport>, SimError> {
        plan.validate(self.config.workers)?;
        let ckpt = self.config.checkpoint;
        if durable.recorder.is_some() && !ckpt.enabled {
            return Err(SimError::InvalidConfig(
                "checkpoint recorder attached but the checkpoint policy is disabled; \
                 enable it via SimulationConfig::with_checkpoints"
                    .to_string(),
            ));
        }
        if durable.recorder.is_some() || durable.resume.is_some() {
            if scheme.checkpoint_state().is_none() {
                return Err(SimError::InvalidConfig(format!(
                    "scheme `{}` does not support checkpointing",
                    scheme.name()
                )));
            }
            if estimator.checkpoint_state().is_none() {
                return Err(SimError::InvalidConfig(
                    "load estimator does not support checkpointing".to_string(),
                ));
            }
        }
        prof.run_begin();
        prof.enter(Phase::Setup);
        let mut tracer = Tracer::new(sink);
        let mut dec = DecisionTracer::new(decisions);
        scheme.set_audit(tracer.on);
        let slo = nanos_from_secs(self.config.slo_s);
        let autoscale = self.config.autoscale;
        // With autoscaling every per-worker structure is sized to the
        // pool ceiling; slots beyond the initial pool start Down.
        let n_workers = if autoscale.enabled {
            autoscale.max_workers.max(self.config.workers)
        } else {
            self.config.workers
        };
        let routing = scheme.routing();

        let mut sampler = LatencySampler::new(self.config.latency, self.config.latency_seed);
        let mut metrics = match self.config.timeline_window_s {
            Some(w) => MetricsCollector::new().with_timeline(w),
            None => MetricsCollector::new(),
        };
        if !plan.is_empty() {
            metrics = metrics.with_fault_windows(plan.fault_windows());
        }

        // Per-worker queues (per-worker routing) or one central queue.
        let mut worker_queues: Vec<VecDeque<Query>> = vec![VecDeque::new(); n_workers];
        let mut central_queue: VecDeque<Query> = VecDeque::new();
        let mut cluster = Cluster::elastic(n_workers, self.config.workers);
        // Queries with no live worker to go to (per-worker routing under
        // a full outage); drained to the first worker that recovers.
        let mut limbo: VecDeque<Query> = VecDeque::new();
        let mut rr_next = 0usize;
        let mut resil = ResilienceRuntime::new(self.config.resilience, n_workers);

        let actions = expand_fault_actions(plan);

        let mut heap: EventHeap = BinaryHeap::new();
        let mut seq = 0u64;
        for (i, &(t, _)) in actions.iter().enumerate() {
            heap.push(Reverse((t, seq, EventKind::Fault(i as u32))));
            seq += 1;
        }
        prof.incr_by(HotCounter::HeapPushes, actions.len() as u64);
        if !arrivals.is_empty() {
            heap.push(Reverse((
                nanos_from_secs(arrivals[0]),
                seq,
                EventKind::Arrival(0),
            )));
            seq += 1;
            prof.incr(HotCounter::HeapPushes);
        }
        // The autoscaler's state and its first controller tick. Nothing
        // here runs when the policy is disabled, so the event stream and
        // the report stay byte-identical to the fixed-pool engine.
        let mut scale: Option<AutoscaleRuntime> = None;
        let mut brown: Option<BrownoutState> = None;
        if autoscale.enabled && !arrivals.is_empty() {
            let tick_end = nanos_from_secs(arrivals[arrivals.len() - 1]);
            let rt = AutoscaleRuntime::new(
                autoscale,
                cluster.live,
                self.profiles[0].n_models(),
                tick_end,
            );
            heap.push(Reverse((rt.tick_ns, seq, EventKind::ScaleTick)));
            seq += 1;
            prof.incr(HotCounter::HeapPushes);
            scale = Some(rt);
            brown = Some(BrownoutState::new(self.profiles[0]));
        }
        // The failure detector and the perceived-membership view. As
        // with autoscaling, nothing here runs when the policy is
        // disabled, so the event stream and the report stay
        // byte-identical to the oracle-membership engine.
        let mut health: Option<HealthRuntime> = None;
        if self.config.health.enabled && !arrivals.is_empty() {
            let tick_ns = nanos_from_secs(self.config.health.probe_interval_s).max(1);
            let mut hs = HealthRuntime {
                monitor: HealthMonitor::new(self.config.health, n_workers, 0),
                view: vec![false; n_workers],
                perceived_live: 0,
                tick_ns,
                tick_end: nanos_from_secs(arrivals[arrivals.len() - 1]),
            };
            hs.rebuild_view(&cluster);
            heap.push(Reverse((tick_ns, seq, EventKind::HealthTick)));
            seq += 1;
            prof.incr(HotCounter::HeapPushes);
            health = Some(hs);
        }
        // Gray batch-error faults are plan physics, not detector
        // behavior: they fire with health on or off. The draw is
        // stateless — keyed on (seed, worker, dispatch time) — so a
        // resumed run replays every outcome exactly.
        let has_batch_errors = plan
            .events
            .iter()
            .any(|e| matches!(e, FaultEvent::WorkerErrorRate { .. }));
        let err_seed = splitmix64(self.config.arrival_seed ^ 0xE44A_575D_11CE_A57E);
        prof.exit(Phase::Setup);

        let mut horizon: Nanos = 0;
        // Checkpoint bookkeeping. `events_done` counts processed heap
        // events; the sim-time cadence fires when `now` crosses each
        // multiple of the period. All of it is dead weight (one counter
        // increment, one branch) unless a recorder is attached.
        let mut events_done: u64 = 0;
        let ckpt_period_ns: Nanos = if ckpt.every_sim_s > 0.0 {
            nanos_from_secs(ckpt.every_sim_s).max(1)
        } else {
            0
        };
        let mut next_ckpt_ns: Nanos = ckpt_period_ns;
        // Event-count cadence as a precomputed target rather than a
        // per-event modulo: one u64 compare on the hot path.
        let mut next_ckpt_events: u64 = if ckpt.every_events > 0 {
            ckpt.every_events
        } else {
            u64::MAX
        };
        let arrivals_hash = if durable.recorder.is_some() || durable.resume.is_some() {
            arrivals_fingerprint(arrivals)
        } else {
            0
        };

        if let Some(snap) = durable.resume {
            self.validate_snapshot(snap, scheme.name(), arrivals, arrivals_hash, n_workers)?;
            // The snapshot's heap already holds everything still
            // pending, including the setup-time pushes (fault actions,
            // the in-progress arrival chain, the next scale tick) in
            // their mid-run form — rebuild from it wholesale.
            heap.clear();
            for e in &snap.heap {
                heap.push(Reverse((e.t, e.seq, EventKind::decode(e.tag, e.a, e.b)?)));
            }
            seq = snap.next_seq;
            horizon = snap.horizon;
            events_done = snap.meta.events_done;
            tracer.emitted = snap.meta.events_emitted;
            // The smallest cadence multiple past the snapshot's event
            // count / time: exactly where the uninterrupted run's
            // cadence stands. `checked_div` is `None` only for a zero
            // divisor, i.e. that cadence dimension is off.
            if let Some(periods) = events_done.checked_div(ckpt.every_events) {
                next_ckpt_events = (periods + 1) * ckpt.every_events;
            }
            if let Some(periods) = snap.meta.sim_time_ns.checked_div(ckpt_period_ns) {
                next_ckpt_ns = (periods + 1) * ckpt_period_ns;
            }
            worker_queues = snap.worker_queues.clone();
            central_queue = snap.central_queue.clone();
            limbo = snap.limbo.clone();
            rr_next = snap.rr_next;
            cluster = Cluster::restore(&snap.cluster);
            resil.budget = snap.resilience.budget.clone();
            resil.admission = snap.resilience.admission.clone();
            resil.service_hist = snap.resilience.service_hist.clone();
            resil.retry_buf = snap.resilience.retry_buf.clone();
            sampler.restore_rng(snap.latency_rng.0, snap.latency_rng.1);
            // Fault windows are re-derived from the plan rather than
            // trusted to the snapshot: an unrecovered crash's window
            // ends at +inf, which the JSON tree cannot carry (non-finite
            // floats serialize as null).
            metrics = snap
                .metrics
                .clone()
                .with_fault_windows(plan.fault_windows());
            match (scale.as_mut(), snap.autoscale.as_ref()) {
                (Some(rt), Some(s)) => {
                    rt.controller = s.controller.clone();
                    rt.ladder = s.ladder.clone();
                    rt.stats = s.stats.clone();
                    rt.last_live_change = s.last_live_change;
                    rt.live_at_change = s.live_at_change;
                    rt.brownout_since = s.brownout_since;
                    let b = brown
                        .as_mut()
                        .expect("brownout state exists with autoscale");
                    b.rung = s.brown_rung;
                    b.degraded = s.brown_degraded;
                }
                (None, None) => {}
                (have, _) => {
                    return Err(SimError::InvalidConfig(format!(
                        "snapshot {} autoscale state but the config {} it",
                        if have.is_some() { "lacks" } else { "carries" },
                        if have.is_some() {
                            "enables"
                        } else {
                            "disables"
                        },
                    )));
                }
            }
            match (health.as_mut(), snap.health.as_ref()) {
                (Some(hs), Some(s)) => {
                    hs.monitor.restore(s)?;
                    hs.rebuild_view(&cluster);
                }
                (None, None) => {}
                (have, _) => {
                    return Err(SimError::InvalidConfig(format!(
                        "snapshot {} health state but the config {} it",
                        if have.is_some() { "lacks" } else { "carries" },
                        if have.is_some() {
                            "enables"
                        } else {
                            "disables"
                        },
                    )));
                }
            }
            scheme
                .restore_state(&snap.scheme_state)
                .map_err(SimError::InvalidConfig)?;
            estimator
                .restore_state(&snap.estimator_state)
                .map_err(SimError::InvalidConfig)?;
        }

        while let Some(Reverse((now, _, kind))) = heap.pop() {
            prof.incr(HotCounter::HeapPops);
            prof.gauge(GaugeId::HeapDepth, heap.len() as u64 + 1);
            horizon = horizon.max(now);
            dec.event = events_done;
            let phase = match kind {
                EventKind::Arrival(_) => Phase::Arrival,
                EventKind::WorkerDone(..) => Phase::Completion,
                EventKind::Timeout(..) => Phase::Timeout,
                EventKind::HedgeDue(..) => Phase::Hedge,
                EventKind::Retry(_) => Phase::Retry,
                // Membership machinery shares the fault phase bucket.
                EventKind::Fault(_)
                | EventKind::ScaleTick
                | EventKind::WarmupDone(..)
                | EventKind::HealthTick => Phase::Fault,
            };
            prof.enter(phase);
            // Labeled so handlers can bail (stale epochs, no-op
            // faults) without skipping the phase-timer exit below.
            'event: {
                match kind {
                    EventKind::Arrival(i) => {
                        let idx = i as usize;
                        let t = nanos_from_secs(arrivals[idx]);
                        let q = Query::new(i, t, slo);
                        tracer.emit(|| Event::Arrival {
                            at: now,
                            query: i,
                            deadline: q.deadline,
                        });
                        estimator.record_arrival(secs_from_nanos(t));
                        scheme.on_arrival(secs_from_nanos(t));
                        tracer.drain_scheme(scheme);
                        // Schedule the next arrival.
                        if idx + 1 < arrivals.len() {
                            heap.push(Reverse((
                                nanos_from_secs(arrivals[idx + 1]),
                                seq,
                                EventKind::Arrival(i + 1),
                            )));
                            seq += 1;
                            prof.incr(HotCounter::HeapPushes);
                        }
                        prof.enter(Phase::Route);
                        self.route_query(
                            q,
                            now,
                            routing,
                            plan.crash_policy,
                            scheme,
                            estimator,
                            &mut worker_queues,
                            &mut central_queue,
                            &mut limbo,
                            &mut rr_next,
                            &mut cluster,
                            &mut resil,
                            &mut sampler,
                            &mut metrics,
                            &mut heap,
                            &mut seq,
                            &mut tracer,
                            prof,
                            &mut brown,
                            &mut dec,
                            perceived!(health),
                        );
                        prof.exit(Phase::Route);
                    }
                    EventKind::WorkerDone(w, epoch) => {
                        if epoch != cluster.epochs[w] {
                            // The dispatch already ended (crash, timeout, or
                            // hedge cancel) after this completion was
                            // scheduled; already handled.
                            prof.incr(HotCounter::StaleEvents);
                            break 'event;
                        }
                        let fl = cluster.in_flight[w]
                            .take()
                            .expect("completion implies in-flight work");
                        cluster.epochs[w] += 1;
                        // Gray batch-error injection (plan physics, on
                        // with or without the detector): the worker
                        // replied, but with a retriable failure —
                        // nothing completes, the batch goes back to a
                        // queue head, and the attempt's time is lost as
                        // extra wait. Hedged pairs are exempt: the twin
                        // owns the outcome.
                        if has_batch_errors && fl.twin.is_none() && !fl.is_hedge {
                            let rate = plan.error_rate_at(w, secs_from_nanos(now));
                            let draw = splitmix64(
                                err_seed
                                    ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                                    ^ fl.started,
                            );
                            if rate > 0.0 && ((draw >> 11) as f64 / (1u64 << 53) as f64) < rate {
                                cluster.busy[w] = false;
                                if tracer.on {
                                    for q in &fl.queries {
                                        tracer.emit(|| Event::CrashRequeue {
                                            at: now,
                                            query: q.id,
                                            from: w as u32,
                                        });
                                    }
                                }
                                metrics.record_crash_requeued(fl.queries.len() as u64);
                                // An error reply is an ack with bad
                                // news: the detector hears it and
                                // strikes toward ejection.
                                if let Some(hs) = health.as_mut() {
                                    if let Some(info) =
                                        hs.monitor.observe_error(w, now, cluster.down_since[w])
                                    {
                                        tracer.emit(|| Event::Suspect {
                                            at: now,
                                            worker: w as u32,
                                            genuine: info.genuine,
                                            lag_ns: info.lag_ns,
                                        });
                                        tracer.emit(|| Event::BreakerOpen {
                                            at: now,
                                            worker: w as u32,
                                        });
                                        Self::apply_suspicion(
                                            w,
                                            now,
                                            routing,
                                            scheme,
                                            hs,
                                            &mut worker_queues,
                                            &mut central_queue,
                                            &mut limbo,
                                            &mut rr_next,
                                            &mut metrics,
                                            &mut tracer,
                                        );
                                    }
                                }
                                let draining = cluster.lifecycle[w] == WorkerState::Draining;
                                if draining {
                                    // The drain's last batch errored;
                                    // the worker still leaves the pool,
                                    // its batch retries elsewhere.
                                    cluster.lifecycle[w] = WorkerState::Down;
                                    if let Some(rt) = scale.as_mut() {
                                        rt.stats.drains_completed += 1;
                                    }
                                    tracer.emit(|| Event::DrainComplete {
                                        at: now,
                                        worker: w as u32,
                                    });
                                }
                                let suspected_here =
                                    health.as_ref().is_some_and(|h| h.monitor.suspected(w));
                                if routing == Routing::Central {
                                    // Back to the central head: the
                                    // batch carries the earliest
                                    // deadlines.
                                    for mut q in fl.queries.into_iter().rev() {
                                        q.enqueued_at = now;
                                        central_queue.push_front(q);
                                    }
                                } else if !draining && !suspected_here {
                                    for mut q in fl.queries.into_iter().rev() {
                                        q.enqueued_at = now;
                                        worker_queues[w].push_front(q);
                                    }
                                } else {
                                    // The errored worker is leaving (or
                                    // ejected): its batch retries on
                                    // the effective survivors.
                                    let displaced = fl.queries;
                                    match health.as_ref() {
                                        Some(h) if h.perceived_live == 0 => {
                                            limbo.extend(displaced);
                                        }
                                        Some(h) => {
                                            for mut q in displaced {
                                                q.enqueued_at = now;
                                                let t = Self::next_live_rr(&h.view, &mut rr_next)
                                                    .expect("perceived live > 0 checked");
                                                worker_queues[t].push_back(q);
                                            }
                                        }
                                        None if cluster.live == 0 => {
                                            limbo.extend(displaced);
                                        }
                                        None => {
                                            for mut q in displaced {
                                                q.enqueued_at = now;
                                                let t = Self::next_live_rr(
                                                    &cluster.alive,
                                                    &mut rr_next,
                                                )
                                                .expect("live > 0 checked");
                                                worker_queues[t].push_back(q);
                                            }
                                        }
                                    }
                                }
                                self.kick_idle_workers(
                                    now,
                                    routing,
                                    scheme,
                                    estimator,
                                    &mut worker_queues,
                                    &mut central_queue,
                                    &mut cluster,
                                    &mut resil,
                                    &mut sampler,
                                    &mut metrics,
                                    &mut heap,
                                    &mut seq,
                                    &mut tracer,
                                    prof,
                                    &mut brown,
                                    &mut dec,
                                    perceived!(health),
                                );
                                break 'event;
                            }
                        }
                        // First-wins: cancel the losing side of a hedged
                        // pair before accounting the completion.
                        let cancelled_twin = fl.twin.inspect(|&v| {
                            let loser = cluster.in_flight[v]
                                .take()
                                .expect("hedge twin implies in-flight work");
                            cluster.epochs[v] += 1;
                            cluster.busy[v] = false;
                            prof.incr(HotCounter::HedgesCancelled);
                            metrics.record_hedge_cancelled(loser.started, now);
                            if fl.is_hedge {
                                metrics.record_hedge_win();
                            }
                            tracer.emit(|| Event::HedgeCancelled {
                                at: now,
                                worker: v as u32,
                                winner: w as u32,
                            });
                        });
                        metrics.note_regime(scheme.regime());
                        if let Some(d) = estimator.divergence(secs_from_nanos(now)) {
                            metrics.record_divergence(d);
                        }
                        metrics.record_batch(
                            self.profile_of(w),
                            fl.model,
                            &fl.queries,
                            fl.started,
                            now,
                        );
                        if tracer.on {
                            for q in &fl.queries {
                                tracer.emit(|| Event::Complete {
                                    at: now,
                                    query: q.id,
                                    worker: w as u32,
                                    model: fl.model as u32,
                                    response_ns: now.saturating_sub(q.arrival),
                                    violated: now > q.deadline,
                                });
                            }
                        }
                        cluster.busy[w] = false;
                        // Feed the detector: a completion is a liveness
                        // ack and an outlier-ejection sample against
                        // the profile's slow-factor-free expectation
                        // (so a gray slowdown reads as an outlier).
                        if let Some(hs) = health.as_mut() {
                            if !fl.is_hedge && cancelled_twin.is_none() {
                                let expected_ns = nanos_from_secs(
                                    self.profile_of(w)
                                        .latency_extrapolated(fl.model, fl.queries.len() as u32),
                                );
                                if let Some(info) = hs.monitor.observe_completion(
                                    w,
                                    now,
                                    now.saturating_sub(fl.started),
                                    expected_ns,
                                    cluster.down_since[w],
                                ) {
                                    tracer.emit(|| Event::Suspect {
                                        at: now,
                                        worker: w as u32,
                                        genuine: info.genuine,
                                        lag_ns: info.lag_ns,
                                    });
                                    tracer.emit(|| Event::BreakerOpen {
                                        at: now,
                                        worker: w as u32,
                                    });
                                    Self::apply_suspicion(
                                        w,
                                        now,
                                        routing,
                                        scheme,
                                        hs,
                                        &mut worker_queues,
                                        &mut central_queue,
                                        &mut limbo,
                                        &mut rr_next,
                                        &mut metrics,
                                        &mut tracer,
                                    );
                                    self.kick_idle_workers(
                                        now,
                                        routing,
                                        scheme,
                                        estimator,
                                        &mut worker_queues,
                                        &mut central_queue,
                                        &mut cluster,
                                        &mut resil,
                                        &mut sampler,
                                        &mut metrics,
                                        &mut heap,
                                        &mut seq,
                                        &mut tracer,
                                        prof,
                                        &mut brown,
                                        &mut dec,
                                        perceived!(health),
                                    );
                                }
                            }
                        }
                        if cluster.lifecycle[w] == WorkerState::Draining {
                            // The drain's last in-flight batch just
                            // finished; the worker leaves the pool.
                            cluster.lifecycle[w] = WorkerState::Down;
                            if let Some(rt) = scale.as_mut() {
                                rt.stats.drains_completed += 1;
                            }
                            tracer.emit(|| Event::DrainComplete {
                                at: now,
                                worker: w as u32,
                            });
                        } else if health.as_ref().is_none_or(|h| !h.monitor.suspected(w)) {
                            let queue = match routing {
                                Routing::Central => &mut central_queue,
                                _ => &mut worker_queues[w],
                            };
                            self.dispatch(
                                w,
                                now,
                                scheme,
                                estimator,
                                queue,
                                &mut cluster,
                                &mut resil,
                                &mut sampler,
                                &mut metrics,
                                &mut heap,
                                &mut seq,
                                &mut tracer,
                                prof,
                                &mut brown,
                                &mut dec,
                                health.as_ref().map(|h| h.perceived_live),
                            );
                        }
                        // The freed loser picks up queued work too — or
                        // finishes its drain if it was on the way out.
                        if let Some(v) = cancelled_twin {
                            if cluster.lifecycle[v] == WorkerState::Draining {
                                cluster.lifecycle[v] = WorkerState::Down;
                                if let Some(rt) = scale.as_mut() {
                                    rt.stats.drains_completed += 1;
                                }
                                tracer.emit(|| Event::DrainComplete {
                                    at: now,
                                    worker: v as u32,
                                });
                            } else if cluster.alive[v]
                                && !cluster.busy[v]
                                && health.as_ref().is_none_or(|h| !h.monitor.suspected(v))
                            {
                                let queue = match routing {
                                    Routing::Central => &mut central_queue,
                                    _ => &mut worker_queues[v],
                                };
                                if !queue.is_empty() {
                                    self.dispatch(
                                        v,
                                        now,
                                        scheme,
                                        estimator,
                                        queue,
                                        &mut cluster,
                                        &mut resil,
                                        &mut sampler,
                                        &mut metrics,
                                        &mut heap,
                                        &mut seq,
                                        &mut tracer,
                                        prof,
                                        &mut brown,
                                        &mut dec,
                                        health.as_ref().map(|h| h.perceived_live),
                                    );
                                }
                            }
                        }
                    }
                    EventKind::Timeout(w, epoch) => {
                        if epoch != cluster.epochs[w] {
                            prof.incr(HotCounter::StaleEvents);
                            break 'event; // dispatch already ended
                        }
                        let fl = cluster.in_flight[w]
                            .take()
                            .expect("timeout implies in-flight work");
                        cluster.epochs[w] += 1;
                        cluster.busy[w] = false;
                        if let Some(v) = fl.twin {
                            // One side of a hedged pair timing out is just a
                            // cancellation; the twin keeps the queries.
                            if let Some(tw) = cluster.in_flight[v].as_mut() {
                                tw.twin = None;
                            }
                            prof.incr(HotCounter::HedgesCancelled);
                            metrics.record_hedge_cancelled(fl.started, now);
                            tracer.emit(|| Event::HedgeCancelled {
                                at: now,
                                worker: w as u32,
                                winner: v as u32,
                            });
                        } else {
                            prof.incr(HotCounter::TimeoutsFired);
                            metrics.record_timeout(&fl.queries, fl.started, now);
                            let now_s = secs_from_nanos(now);
                            let rpol = resil.policy.retry;
                            for mut q in fl.queries {
                                q.attempt += 1;
                                let attempt = q.attempt;
                                tracer.emit(|| Event::Timeout {
                                    at: now,
                                    query: q.id,
                                    worker: w as u32,
                                    attempt,
                                });
                                if attempt > rpol.max_retries {
                                    prof.incr(HotCounter::RetriesAbandoned);
                                    tracer.emit(|| Event::Shed {
                                        at: now,
                                        query: q.id,
                                        cause: ShedCause::RetryExhausted,
                                    });
                                    let dk = dec.next();
                                    if dec.on {
                                        prof.enter(Phase::Decision);
                                        let regime = scheme.regime().map(str::to_owned);
                                        dec.emit(|event| DecisionRecord {
                                            k: dk,
                                            at: now,
                                            event,
                                            query: Some(q.id),
                                            worker: w as u32,
                                            state: None,
                                            regime,
                                            candidates: Vec::new(),
                                            chosen: ChosenAction::Shed { count: 1 },
                                            effective: None,
                                            reason: ReasonCode::Shed,
                                        });
                                        prof.exit(Phase::Decision);
                                    }
                                    metrics.record_retry_dropped(&[q], 0);
                                } else if resil.budget.try_take(now_s) {
                                    prof.incr(HotCounter::RetriesScheduled);
                                    metrics.record_retry();
                                    let delay_ns =
                                        nanos_from_secs(backoff_delay_s(&rpol, attempt, q.id));
                                    tracer.emit(|| Event::Retry {
                                        at: now,
                                        query: q.id,
                                        attempt,
                                        delay_ns,
                                    });
                                    let dk = dec.next();
                                    if dec.on {
                                        prof.enter(Phase::Decision);
                                        let regime = scheme.regime().map(str::to_owned);
                                        dec.emit(|event| DecisionRecord {
                                            k: dk,
                                            at: now,
                                            event,
                                            query: Some(q.id),
                                            worker: w as u32,
                                            state: None,
                                            regime,
                                            candidates: Vec::new(),
                                            chosen: ChosenAction::Retry { attempt, delay_ns },
                                            effective: None,
                                            reason: ReasonCode::Retry,
                                        });
                                        prof.exit(Phase::Decision);
                                    }
                                    let idx = resil.retry_buf.len() as u32;
                                    resil.retry_buf.push(q);
                                    heap.push(Reverse((
                                        now + delay_ns,
                                        seq,
                                        EventKind::Retry(idx),
                                    )));
                                    seq += 1;
                                    prof.incr(HotCounter::HeapPushes);
                                } else {
                                    prof.incr(HotCounter::RetriesAbandoned);
                                    tracer.emit(|| Event::Shed {
                                        at: now,
                                        query: q.id,
                                        cause: ShedCause::RetryExhausted,
                                    });
                                    let dk = dec.next();
                                    if dec.on {
                                        prof.enter(Phase::Decision);
                                        let regime = scheme.regime().map(str::to_owned);
                                        dec.emit(|event| DecisionRecord {
                                            k: dk,
                                            at: now,
                                            event,
                                            query: Some(q.id),
                                            worker: w as u32,
                                            state: None,
                                            regime,
                                            candidates: Vec::new(),
                                            chosen: ChosenAction::Shed { count: 1 },
                                            effective: None,
                                            reason: ReasonCode::Shed,
                                        });
                                        prof.exit(Phase::Decision);
                                    }
                                    metrics.record_retry_dropped(&[q], 1);
                                }
                            }
                        }
                        // The freed worker picks up queued work — or
                        // finishes its drain if it was on the way out.
                        if cluster.lifecycle[w] == WorkerState::Draining {
                            cluster.lifecycle[w] = WorkerState::Down;
                            if let Some(rt) = scale.as_mut() {
                                rt.stats.drains_completed += 1;
                            }
                            tracer.emit(|| Event::DrainComplete {
                                at: now,
                                worker: w as u32,
                            });
                        } else if health.as_ref().is_none_or(|h| !h.monitor.suspected(w)) {
                            let queue = match routing {
                                Routing::Central => &mut central_queue,
                                _ => &mut worker_queues[w],
                            };
                            self.dispatch(
                                w,
                                now,
                                scheme,
                                estimator,
                                queue,
                                &mut cluster,
                                &mut resil,
                                &mut sampler,
                                &mut metrics,
                                &mut heap,
                                &mut seq,
                                &mut tracer,
                                prof,
                                &mut brown,
                                &mut dec,
                                health.as_ref().map(|h| h.perceived_live),
                            );
                        }
                    }
                    EventKind::HedgeDue(w, epoch) => {
                        if epoch != cluster.epochs[w] {
                            prof.incr(HotCounter::StaleEvents);
                            break 'event; // dispatch already ended
                        }
                        let (model, queries) = match cluster.in_flight[w].as_ref() {
                            Some(fl) if fl.twin.is_none() && !fl.is_hedge => {
                                (fl.model, fl.queries.clone())
                            }
                            _ => break 'event,
                        };
                        // An idle live worker that can run this model; the
                        // hedge is silently skipped when none exists (better
                        // to keep waiting than to queue a duplicate).
                        let target = (0..n_workers).find(|&v| {
                            v != w
                                && cluster.alive[v]
                                && !cluster.busy[v]
                                && health.as_ref().is_none_or(|h| !h.monitor.suspected(v))
                                && model < self.profile_of(v).n_models()
                        });
                        let Some(v) = target else { break 'event };
                        let batch = queries.len() as u32;
                        let first_query = queries.first().map(|q| q.id);
                        let service =
                            sampler.sample(self.profile_of(v), model, batch) * cluster.slow[v];
                        let service_ns = nanos_from_secs(service);
                        resil.service_hist.record(service_ns);
                        cluster.busy[v] = true;
                        cluster.in_flight[v] = Some(InFlight {
                            model,
                            queries,
                            started: now,
                            twin: Some(w),
                            is_hedge: true,
                        });
                        if let Some(fl) = cluster.in_flight[w].as_mut() {
                            fl.twin = Some(v);
                        }
                        // The hedge side gets a plain completion: no nested
                        // timeout or hedge-of-a-hedge.
                        heap.push(Reverse((
                            now + service_ns,
                            seq,
                            EventKind::WorkerDone(v, cluster.epochs[v]),
                        )));
                        seq += 1;
                        prof.incr(HotCounter::HeapPushes);
                        prof.incr(HotCounter::HedgesIssued);
                        metrics.record_hedge_issued();
                        tracer.emit(|| Event::HedgeIssued {
                            at: now,
                            primary: w as u32,
                            hedge: v as u32,
                            model: model as u32,
                            batch,
                        });
                        let dk = dec.next();
                        if dec.on {
                            prof.enter(Phase::Decision);
                            let regime = scheme.regime().map(str::to_owned);
                            dec.emit(|event| DecisionRecord {
                                k: dk,
                                at: now,
                                event,
                                query: first_query,
                                worker: w as u32,
                                state: None,
                                regime,
                                candidates: Vec::new(),
                                chosen: ChosenAction::Hedge {
                                    model: model as u32,
                                    batch,
                                    target: v as u32,
                                },
                                effective: None,
                                reason: ReasonCode::Hedge,
                            });
                            prof.exit(Phase::Decision);
                        }
                    }
                    EventKind::Retry(idx) => {
                        let q = resil.retry_buf[idx as usize];
                        prof.enter(Phase::Route);
                        self.route_query(
                            q,
                            now,
                            routing,
                            plan.crash_policy,
                            scheme,
                            estimator,
                            &mut worker_queues,
                            &mut central_queue,
                            &mut limbo,
                            &mut rr_next,
                            &mut cluster,
                            &mut resil,
                            &mut sampler,
                            &mut metrics,
                            &mut heap,
                            &mut seq,
                            &mut tracer,
                            prof,
                            &mut brown,
                            &mut dec,
                            perceived!(health),
                        );
                        prof.exit(Phase::Route);
                    }
                    EventKind::Fault(idx) => {
                        match actions[idx as usize].1 {
                            FaultAction::Crash(w) => {
                                if !cluster.alive[w] {
                                    break 'event; // double crash: no-op
                                }
                                cluster.alive[w] = false;
                                cluster.epochs[w] += 1;
                                cluster.down_since[w] = Some(now);
                                cluster.live -= 1;
                                cluster.lifecycle[w] = WorkerState::Down;
                                if let Some(rt) = scale.as_mut() {
                                    rt.account_live(now, cluster.live);
                                }
                                let mut displaced: Vec<Query> = Vec::new();
                                if let Some(fl) = cluster.in_flight[w].take() {
                                    cluster.busy[w] = false;
                                    if let Some(v) = fl.twin {
                                        // The crashed side of a hedged pair
                                        // is a cancellation, not a loss: the
                                        // twin keeps the queries.
                                        if let Some(tw) = cluster.in_flight[v].as_mut() {
                                            tw.twin = None;
                                        }
                                        prof.incr(HotCounter::HedgesCancelled);
                                        metrics.record_hedge_cancelled(fl.started, now);
                                        tracer.emit(|| Event::HedgeCancelled {
                                            at: now,
                                            worker: w as u32,
                                            winner: v as u32,
                                        });
                                    } else {
                                        displaced.extend(fl.queries);
                                    }
                                }
                                if health.is_some() {
                                    // Perceived health: the router
                                    // learns nothing here — the worker
                                    // stays in view until the detector
                                    // suspects it, and its work waits
                                    // where it is (that wait IS the
                                    // detection lag). Under `Drop` the
                                    // machine's on-board work is
                                    // physically lost, exactly as with
                                    // oracle membership.
                                    match plan.crash_policy {
                                        CrashPolicy::Drop => {
                                            displaced.extend(worker_queues[w].drain(..));
                                            if tracer.on {
                                                for q in &displaced {
                                                    tracer.emit(|| Event::Drop {
                                                        at: now,
                                                        query: q.id,
                                                    });
                                                }
                                            }
                                            metrics.record_crash_dropped(&displaced);
                                        }
                                        CrashPolicy::RequeueToSurvivors => {
                                            // The interrupted batch is
                                            // retriable: it waits at
                                            // the dead worker's queue
                                            // head (a stuck buffer
                                            // under central routing)
                                            // until suspicion or
                                            // recovery releases it.
                                            for mut q in displaced.into_iter().rev() {
                                                q.enqueued_at = now;
                                                worker_queues[w].push_front(q);
                                            }
                                        }
                                    }
                                    break 'event;
                                }
                                displaced.extend(worker_queues[w].drain(..));
                                scheme.on_membership_change(cluster.live);
                                match plan.crash_policy {
                                    CrashPolicy::Drop => {
                                        if tracer.on {
                                            for q in &displaced {
                                                tracer.emit(|| Event::Drop {
                                                    at: now,
                                                    query: q.id,
                                                });
                                            }
                                        }
                                        metrics.record_crash_dropped(&displaced);
                                    }
                                    CrashPolicy::RequeueToSurvivors => {
                                        if tracer.on {
                                            for q in &displaced {
                                                tracer.emit(|| Event::CrashRequeue {
                                                    at: now,
                                                    query: q.id,
                                                    from: w as u32,
                                                });
                                            }
                                        }
                                        metrics.record_crash_requeued(displaced.len() as u64);
                                        match routing {
                                            Routing::Central => {
                                                // Back to the head of the
                                                // central queue: they carry
                                                // the earliest deadlines.
                                                for mut q in displaced.into_iter().rev() {
                                                    q.enqueued_at = now;
                                                    central_queue.push_front(q);
                                                }
                                            }
                                            _ if cluster.live == 0 => limbo.extend(displaced),
                                            _ => {
                                                for mut q in displaced {
                                                    q.enqueued_at = now;
                                                    let t = Self::next_live_rr(
                                                        &cluster.alive,
                                                        &mut rr_next,
                                                    )
                                                    .expect("live > 0 checked");
                                                    worker_queues[t].push_back(q);
                                                }
                                            }
                                        }
                                    }
                                }
                                self.kick_idle_workers(
                                    now,
                                    routing,
                                    scheme,
                                    estimator,
                                    &mut worker_queues,
                                    &mut central_queue,
                                    &mut cluster,
                                    &mut resil,
                                    &mut sampler,
                                    &mut metrics,
                                    &mut heap,
                                    &mut seq,
                                    &mut tracer,
                                    prof,
                                    &mut brown,
                                    &mut dec,
                                    None,
                                );
                            }
                            FaultAction::Recover(w) => {
                                // Recovery only undoes a crash: it must
                                // not revive a warming, draining, or
                                // scaled-down slot (those have no crash
                                // timestamp).
                                if cluster.alive[w]
                                    || (scale.is_some() && cluster.down_since[w].is_none())
                                {
                                    break 'event; // recovery without crash: no-op
                                }
                                cluster.alive[w] = true;
                                cluster.live += 1;
                                cluster.lifecycle[w] = WorkerState::Live;
                                if let Some(rt) = scale.as_mut() {
                                    rt.account_live(now, cluster.live);
                                }
                                if let Some(start) = cluster.down_since[w].take() {
                                    metrics.record_downtime_s(secs_from_nanos(
                                        now.saturating_sub(start),
                                    ));
                                }
                                if let Some(hs) = health.as_mut() {
                                    // A recover before suspicion is as
                                    // invisible as the crash was: no
                                    // membership change, crash-stuck
                                    // central work flows back, and the
                                    // worker serves again. A suspected
                                    // worker stays ejected until its
                                    // probes close the breaker.
                                    hs.rebuild_view(&cluster);
                                    if !hs.monitor.suspected(w) {
                                        if routing == Routing::Central
                                            && !worker_queues[w].is_empty()
                                        {
                                            for mut q in worker_queues[w].drain(..).rev() {
                                                q.enqueued_at = now;
                                                central_queue.push_front(q);
                                            }
                                        }
                                        if !limbo.is_empty() && routing != Routing::Central {
                                            for mut q in limbo.drain(..) {
                                                q.enqueued_at = now;
                                                worker_queues[w].push_back(q);
                                            }
                                        }
                                        self.kick_idle_workers(
                                            now,
                                            routing,
                                            scheme,
                                            estimator,
                                            &mut worker_queues,
                                            &mut central_queue,
                                            &mut cluster,
                                            &mut resil,
                                            &mut sampler,
                                            &mut metrics,
                                            &mut heap,
                                            &mut seq,
                                            &mut tracer,
                                            prof,
                                            &mut brown,
                                            &mut dec,
                                            perceived!(health),
                                        );
                                    }
                                    break 'event;
                                }
                                scheme.on_membership_change(cluster.live);
                                // Stranded queries join the recovered
                                // worker's queue in arrival order.
                                if !limbo.is_empty() && routing != Routing::Central {
                                    for mut q in limbo.drain(..) {
                                        q.enqueued_at = now;
                                        worker_queues[w].push_back(q);
                                    }
                                }
                                self.kick_idle_workers(
                                    now,
                                    routing,
                                    scheme,
                                    estimator,
                                    &mut worker_queues,
                                    &mut central_queue,
                                    &mut cluster,
                                    &mut resil,
                                    &mut sampler,
                                    &mut metrics,
                                    &mut heap,
                                    &mut seq,
                                    &mut tracer,
                                    prof,
                                    &mut brown,
                                    &mut dec,
                                    None,
                                );
                            }
                            FaultAction::SlowStart(w, factor) => cluster.slow[w] = factor,
                            FaultAction::SlowEnd(w) => cluster.slow[w] = 1.0,
                        }
                    }
                    EventKind::ScaleTick => {
                        let Some(rt) = scale.as_mut() else {
                            break 'event;
                        };
                        rt.stats.ticks += 1;
                        // Ticks reschedule themselves while arrivals
                        // remain, then stop so the run terminates.
                        let next = now + rt.tick_ns;
                        if next <= rt.tick_end {
                            heap.push(Reverse((next, seq, EventKind::ScaleTick)));
                            seq += 1;
                            prof.incr(HotCounter::HeapPushes);
                        }
                        let now_s = secs_from_nanos(now);
                        let load = estimator.estimate(now_s);
                        let sig = ScaleSignal {
                            now_s,
                            load_qps: load,
                            trend_qps_per_s: estimator.trend_qps_per_s(now_s).unwrap_or(0.0),
                            // With the detector on, the autoscaler sees
                            // the perceived pool: suspected workers are
                            // missing capacity, undetected crashes
                            // still look live.
                            live: health.as_ref().map_or(cluster.live, |h| h.perceived_live),
                            warming: cluster.warming(),
                            draining: cluster.draining(),
                            queued: central_queue.len()
                                + worker_queues.iter().map(VecDeque::len).sum::<usize>(),
                        };
                        let desired = rt.controller.desired_workers(&sig);
                        let current = sig.live + sig.warming;
                        let mut handed_off_work = false;
                        if desired > current {
                            let warmup_ns = nanos_from_secs(rt.controller.policy().warmup_s);
                            let mut need = desired - current;
                            for w in 0..n_workers {
                                if need == 0 {
                                    break;
                                }
                                // Crash-downed slots belong to the fault
                                // plan (they come back via Recover), so
                                // scale-up skips them.
                                if cluster.lifecycle[w] != WorkerState::Down
                                    || cluster.down_since[w].is_some()
                                {
                                    continue;
                                }
                                cluster.lifecycle[w] = WorkerState::Warming;
                                rt.stats.scale_ups += 1;
                                let live = cluster.live;
                                tracer.emit(|| Event::ScaleUp {
                                    at: now,
                                    worker: w as u32,
                                    live: live as u32,
                                });
                                heap.push(Reverse((
                                    now + warmup_ns,
                                    seq,
                                    EventKind::WarmupDone(w, cluster.epochs[w]),
                                )));
                                seq += 1;
                                prof.incr(HotCounter::HeapPushes);
                                need -= 1;
                            }
                        } else if desired < current {
                            let mut need = current - desired;
                            // Cancelling a warm-up frees capacity that
                            // never went Live; do those first.
                            for w in (0..n_workers).rev() {
                                if need == 0 {
                                    break;
                                }
                                if cluster.lifecycle[w] != WorkerState::Warming {
                                    continue;
                                }
                                cluster.lifecycle[w] = WorkerState::Down;
                                cluster.epochs[w] += 1; // strands the WarmupDone
                                rt.stats.scale_downs += 1;
                                let live = cluster.live;
                                tracer.emit(|| Event::ScaleDown {
                                    at: now,
                                    worker: w as u32,
                                    live: live as u32,
                                    handoffs: 0,
                                });
                                need -= 1;
                            }
                            // Then drain Live workers: queued work hands
                            // off to survivors now, the in-flight batch
                            // runs to completion.
                            for w in (0..n_workers).rev() {
                                if need == 0 {
                                    break;
                                }
                                if cluster.lifecycle[w] != WorkerState::Live {
                                    continue;
                                }
                                cluster.lifecycle[w] = WorkerState::Draining;
                                cluster.alive[w] = false;
                                cluster.live -= 1;
                                // A commanded drain is visible to the
                                // router immediately — no detection
                                // needed for planned exits.
                                if let Some(hs) = health.as_mut() {
                                    if hs.view[w] {
                                        hs.view[w] = false;
                                        hs.perceived_live -= 1;
                                    }
                                }
                                rt.account_live(now, cluster.live);
                                rt.stats.scale_downs += 1;
                                let handed: Vec<Query> = worker_queues[w].drain(..).collect();
                                rt.stats.drain_handoffs += handed.len() as u64;
                                let live = cluster.live;
                                let handoffs = handed.len() as u32;
                                tracer.emit(|| Event::ScaleDown {
                                    at: now,
                                    worker: w as u32,
                                    live: live as u32,
                                    handoffs,
                                });
                                if !handed.is_empty() {
                                    match health.as_ref() {
                                        Some(hs) if hs.perceived_live == 0 => {
                                            limbo.extend(handed);
                                        }
                                        Some(hs) => {
                                            let view = hs.view.clone();
                                            for mut q in handed {
                                                q.enqueued_at = now;
                                                let t = Self::next_live_rr(&view, &mut rr_next)
                                                    .expect("perceived_live > 0 checked");
                                                worker_queues[t].push_back(q);
                                            }
                                        }
                                        None if cluster.live == 0 => {
                                            // Only warming capacity remains;
                                            // stranded queries drain to the
                                            // first worker that goes Live.
                                            limbo.extend(handed);
                                        }
                                        None => {
                                            for mut q in handed {
                                                q.enqueued_at = now;
                                                let t = Self::next_live_rr(
                                                    &cluster.alive,
                                                    &mut rr_next,
                                                )
                                                .expect("live > 0 checked");
                                                worker_queues[t].push_back(q);
                                            }
                                        }
                                    }
                                    handed_off_work = true;
                                }
                                scheme.on_membership_change(
                                    health.as_ref().map_or(cluster.live, |h| h.perceived_live),
                                );
                                if !cluster.busy[w] {
                                    // Nothing in flight: the drain
                                    // completes on the spot.
                                    cluster.lifecycle[w] = WorkerState::Down;
                                    rt.stats.drains_completed += 1;
                                    tracer.emit(|| Event::DrainComplete {
                                        at: now,
                                        worker: w as u32,
                                    });
                                }
                                need -= 1;
                            }
                        }
                        // Feed the brownout ladder: the load estimate
                        // against the live pool's capacity target.
                        let capacity_qps =
                            health.as_ref().map_or(cluster.live, |h| h.perceived_live) as f64
                                * rt.controller.policy().target_qps_per_worker;
                        if let Some(transition) = rt.ladder.observe(load, capacity_qps) {
                            match transition {
                                BrownoutTransition::Enter { rung } => {
                                    rt.stats.brownout_enters += 1;
                                    rt.stats.max_brownout_rung =
                                        rt.stats.max_brownout_rung.max(rung);
                                    if rung == 1 {
                                        rt.brownout_since = Some(now);
                                    }
                                    tracer.emit(|| Event::BrownoutEnter {
                                        at: now,
                                        rung,
                                        load_qps: load,
                                        capacity_qps,
                                    });
                                }
                                BrownoutTransition::Exit { rung } => {
                                    rt.stats.brownout_exits += 1;
                                    if rung == 1 {
                                        if let Some(start) = rt.brownout_since.take() {
                                            rt.stats.brownout_time_s +=
                                                secs_from_nanos(now.saturating_sub(start));
                                        }
                                    }
                                    tracer.emit(|| Event::BrownoutExit {
                                        at: now,
                                        rung,
                                        load_qps: load,
                                        capacity_qps,
                                    });
                                }
                            }
                        }
                        let rung = rt.ladder.rung();
                        if let Some(b) = brown.as_mut() {
                            b.rung = rung;
                        }
                        if handed_off_work {
                            self.kick_idle_workers(
                                now,
                                routing,
                                scheme,
                                estimator,
                                &mut worker_queues,
                                &mut central_queue,
                                &mut cluster,
                                &mut resil,
                                &mut sampler,
                                &mut metrics,
                                &mut heap,
                                &mut seq,
                                &mut tracer,
                                prof,
                                &mut brown,
                                &mut dec,
                                perceived!(health),
                            );
                        }
                    }
                    EventKind::WarmupDone(w, epoch) => {
                        if epoch != cluster.epochs[w]
                            || cluster.lifecycle[w] != WorkerState::Warming
                        {
                            // Cancelled by a scale-in or a crash.
                            prof.incr(HotCounter::StaleEvents);
                            break 'event;
                        }
                        cluster.lifecycle[w] = WorkerState::Live;
                        cluster.alive[w] = true;
                        cluster.live += 1;
                        if let Some(rt) = scale.as_mut() {
                            rt.stats.warmups_completed += 1;
                            rt.account_live(now, cluster.live);
                        }
                        let live = cluster.live;
                        tracer.emit(|| Event::WorkerWarm {
                            at: now,
                            worker: w as u32,
                            live: live as u32,
                        });
                        if let Some(hs) = health.as_mut() {
                            hs.rebuild_view(&cluster);
                        }
                        scheme.on_membership_change(
                            health.as_ref().map_or(cluster.live, |h| h.perceived_live),
                        );
                        // Stranded queries (a scale-in or crash during a
                        // full outage) drain to the first worker to go
                        // Live, mirroring crash recovery.
                        if !limbo.is_empty()
                            && routing != Routing::Central
                            && health.as_ref().is_none_or(|h| h.view[w])
                        {
                            for mut q in limbo.drain(..) {
                                q.enqueued_at = now;
                                worker_queues[w].push_back(q);
                            }
                        }
                        self.kick_idle_workers(
                            now,
                            routing,
                            scheme,
                            estimator,
                            &mut worker_queues,
                            &mut central_queue,
                            &mut cluster,
                            &mut resil,
                            &mut sampler,
                            &mut metrics,
                            &mut heap,
                            &mut seq,
                            &mut tracer,
                            prof,
                            &mut brown,
                            &mut dec,
                            perceived!(health),
                        );
                    }
                    EventKind::HealthTick => {
                        let Some(hs) = health.as_mut() else {
                            break 'event;
                        };
                        let next = now + hs.tick_ns;
                        if next <= hs.tick_end {
                            heap.push(Reverse((next, seq, EventKind::HealthTick)));
                            seq += 1;
                            prof.incr(HotCounter::HeapPushes);
                        }
                        let now_s = secs_from_nanos(now);
                        let mut moved = false;
                        for w in 0..n_workers {
                            // Probe the perceived fleet plus anyone the
                            // monitor still tracks: live workers,
                            // crashed-but-undetected workers (the whole
                            // point), and suspected workers awaiting a
                            // half-open trial. Commanded-down slots are
                            // not probed — the control plane knows.
                            let probed = cluster.alive[w]
                                || cluster.down_since[w].is_some()
                                || hs.monitor.suspected(w);
                            if !probed {
                                continue;
                            }
                            // A probe is answered iff the worker is
                            // physically up and its heartbeat path is
                            // not partitioned. Gray failures live here:
                            // a partitioned-but-serving worker looks
                            // dead to probes while completing batches.
                            let responsive = cluster.alive[w] && !plan.partitioned(w, now_s);
                            tracer.emit(|| Event::ProbeSent {
                                at: now,
                                worker: w as u32,
                            });
                            let outcome =
                                hs.monitor.probe(w, now, responsive, cluster.down_since[w]);
                            if outcome.half_opened {
                                tracer.emit(|| Event::BreakerHalfOpen {
                                    at: now,
                                    worker: w as u32,
                                });
                            }
                            match outcome.step {
                                ProbeStep::Ok | ProbeStep::TrialProgress => {}
                                ProbeStep::Failed => {
                                    tracer.emit(|| Event::ProbeFailed {
                                        at: now,
                                        worker: w as u32,
                                    });
                                }
                                ProbeStep::ReOpened => {
                                    tracer.emit(|| Event::ProbeFailed {
                                        at: now,
                                        worker: w as u32,
                                    });
                                    tracer.emit(|| Event::BreakerOpen {
                                        at: now,
                                        worker: w as u32,
                                    });
                                }
                                ProbeStep::Suspected(info) => {
                                    tracer.emit(|| Event::ProbeFailed {
                                        at: now,
                                        worker: w as u32,
                                    });
                                    tracer.emit(|| Event::Suspect {
                                        at: now,
                                        worker: w as u32,
                                        genuine: info.genuine,
                                        lag_ns: info.lag_ns,
                                    });
                                    tracer.emit(|| Event::BreakerOpen {
                                        at: now,
                                        worker: w as u32,
                                    });
                                    Self::apply_suspicion(
                                        w,
                                        now,
                                        routing,
                                        scheme,
                                        hs,
                                        &mut worker_queues,
                                        &mut central_queue,
                                        &mut limbo,
                                        &mut rr_next,
                                        &mut metrics,
                                        &mut tracer,
                                    );
                                    moved = true;
                                }
                                ProbeStep::Reinstated { suspected_ns } => {
                                    tracer.emit(|| Event::BreakerClose {
                                        at: now,
                                        worker: w as u32,
                                    });
                                    tracer.emit(|| Event::Reinstate {
                                        at: now,
                                        worker: w as u32,
                                        suspected_ns,
                                    });
                                    Self::apply_reinstate(
                                        w,
                                        now,
                                        routing,
                                        scheme,
                                        hs,
                                        &mut worker_queues,
                                        &mut limbo,
                                        &cluster,
                                    );
                                    moved = true;
                                }
                            }
                        }
                        if moved {
                            self.kick_idle_workers(
                                now,
                                routing,
                                scheme,
                                estimator,
                                &mut worker_queues,
                                &mut central_queue,
                                &mut cluster,
                                &mut resil,
                                &mut sampler,
                                &mut metrics,
                                &mut heap,
                                &mut seq,
                                &mut tracer,
                                prof,
                                &mut brown,
                                &mut dec,
                                perceived!(health),
                            );
                        }
                    }
                }
            }
            prof.exit(phase);
            events_done += 1;
            if let Some(rec) = durable.recorder.as_deref_mut() {
                let due_events = events_done == next_ckpt_events;
                let due_time = ckpt_period_ns > 0 && now >= next_ckpt_ns;
                if due_events || due_time {
                    if due_events {
                        next_ckpt_events += ckpt.every_events;
                    }
                    while ckpt_period_ns > 0 && next_ckpt_ns <= now {
                        next_ckpt_ns += ckpt_period_ns;
                    }
                    prof.enter(Phase::Checkpoint);
                    // A checkpoint attests that `events_emitted` trace
                    // records are durable; with a buffered sink that is
                    // only true after a flush.
                    tracer.sink.flush();
                    let snap = self.build_snapshot(
                        &*scheme,
                        &*estimator,
                        arrivals,
                        arrivals_hash,
                        events_done,
                        now,
                        tracer.emitted,
                        &heap,
                        seq,
                        horizon,
                        &worker_queues,
                        &central_queue,
                        &limbo,
                        rr_next,
                        &cluster,
                        &resil,
                        &sampler,
                        &metrics,
                        scale.as_ref(),
                        brown.as_ref(),
                        health.as_ref(),
                    );
                    let keep_going = rec.record(&snap);
                    prof.exit(Phase::Checkpoint);
                    if !keep_going {
                        // Simulated kill (or a failed checkpoint
                        // write): stop on the spot, mid-heap, exactly
                        // as a crash would.
                        return Ok(None);
                    }
                }
            }
        }

        // A counterfactual replay that never reached its branch point
        // would silently reproduce the factual run; fail loudly instead.
        if let Some(f) = dec.forced {
            if !dec.forced_applied {
                return Err(SimError::InvalidConfig(format!(
                    "counterfactual: forced decision k={} was never applied \
                     (run made {} decisions; only selection-site decisions can be forced)",
                    f.k, dec.k
                )));
            }
        }

        // Workers still dead at the end of the run accrue downtime up
        // to the horizon.
        for w in 0..n_workers {
            if let Some(start) = cluster.down_since[w] {
                metrics.record_downtime_s(secs_from_nanos(horizon.saturating_sub(start)));
            }
        }

        tracer.sink.flush();

        prof.enter(Phase::Report);
        let regime_breakdown = metrics.regime_breakdown();
        // Utilization stays relative to the *configured* pool: with
        // autoscaling the true cost denominator is the live-worker
        // integral reported in `autoscale.worker_seconds`.
        let mut report = metrics.report(
            scheme.name().to_owned(),
            arrivals.len() as u64,
            horizon,
            self.config.workers,
        );
        if let Some(mut stats) = scheme.adaptive_stats() {
            stats.per_regime = regime_breakdown;
            report.adaptive = Some(stats);
        }
        if let Some(mut rt) = scale.take() {
            if let Some(b) = brown.as_ref() {
                rt.stats.degraded_selections = b.degraded;
            }
            report.autoscale = Some(rt.finalize(horizon));
        }
        if let Some(mut hs) = health.take() {
            report.health = Some(hs.monitor.finalize(horizon));
        }
        prof.exit(Phase::Report);
        prof.run_end();
        Ok(Some(report))
    }

    /// Refuses to resume a snapshot that does not belong to this exact
    /// run: same config identity (pool, SLO, seeds), same scheme, and
    /// the same pre-sampled arrival array.
    fn validate_snapshot(
        &self,
        snap: &EngineSnapshot,
        scheme_name: &str,
        arrivals: &[f64],
        arrivals_hash: u64,
        n_workers: usize,
    ) -> Result<(), SimError> {
        let m = &snap.meta;
        let bad = |msg: String| Err(SimError::InvalidConfig(format!("cannot resume: {msg}")));
        if m.version != SNAPSHOT_VERSION {
            return bad(format!(
                "snapshot version {} != supported {SNAPSHOT_VERSION}",
                m.version
            ));
        }
        if m.workers != self.config.workers {
            return bad(format!(
                "snapshot has {} workers, config has {}",
                m.workers, self.config.workers
            ));
        }
        if m.slo_s != self.config.slo_s {
            return bad(format!(
                "snapshot SLO {}s != config SLO {}s",
                m.slo_s, self.config.slo_s
            ));
        }
        if m.arrival_seed != self.config.arrival_seed || m.latency_seed != self.config.latency_seed
        {
            return bad(format!(
                "snapshot seeds ({}, {}) != config seeds ({}, {})",
                m.arrival_seed, m.latency_seed, self.config.arrival_seed, self.config.latency_seed
            ));
        }
        if m.scheme != scheme_name {
            return bad(format!(
                "snapshot was taken under scheme `{}`, resuming with `{scheme_name}`",
                m.scheme
            ));
        }
        if m.arrivals_len != arrivals.len() || m.arrivals_hash != arrivals_hash {
            return bad(format!(
                "arrival stream mismatch ({} arrivals, hash {:#x}; snapshot says {}, {:#x}) — \
                 different trace, seed, or surge plan",
                arrivals.len(),
                arrivals_hash,
                m.arrivals_len,
                m.arrivals_hash
            ));
        }
        if snap.cluster.alive.len() != n_workers
            || snap.worker_queues.len() != n_workers
            || snap.resilience.admission.len() != n_workers + 1
        {
            return bad(format!(
                "snapshot cluster is sized for {} workers, this run has {n_workers}",
                snap.cluster.alive.len()
            ));
        }
        Ok(())
    }

    /// Captures the complete mid-run state as an [`EngineSnapshot`].
    /// Pure observation: nothing the run later touches is mutated.
    #[allow(clippy::too_many_arguments)]
    fn build_snapshot(
        &self,
        scheme: &dyn ServingScheme,
        estimator: &dyn LoadEstimator,
        arrivals: &[f64],
        arrivals_hash: u64,
        events_done: u64,
        now: Nanos,
        events_emitted: u64,
        heap: &EventHeap,
        next_seq: u64,
        horizon: Nanos,
        worker_queues: &[VecDeque<Query>],
        central_queue: &VecDeque<Query>,
        limbo: &VecDeque<Query>,
        rr_next: usize,
        cluster: &Cluster,
        resil: &ResilienceRuntime,
        sampler: &LatencySampler,
        metrics: &MetricsCollector,
        scale: Option<&AutoscaleRuntime>,
        brown: Option<&BrownoutState>,
        health: Option<&HealthRuntime>,
    ) -> EngineSnapshot {
        // Heap iteration order is arbitrary; entries are sorted by
        // `(t, seq)` so equal states serialize to equal bytes.
        let mut entries: Vec<HeapEntry> = heap
            .iter()
            .map(|Reverse((t, s, k))| {
                let (tag, a, b) = k.encode();
                HeapEntry {
                    t: *t,
                    seq: *s,
                    tag,
                    a,
                    b,
                }
            })
            .collect();
        entries.sort_unstable_by_key(|e| (e.t, e.seq));
        let autoscale = scale.map(|rt| {
            let b = brown.expect("brownout state exists with autoscale");
            AutoscaleState {
                controller: rt.controller.clone(),
                ladder: rt.ladder.clone(),
                stats: rt.stats.clone(),
                last_live_change: rt.last_live_change,
                live_at_change: rt.live_at_change,
                brownout_since: rt.brownout_since,
                brown_rung: b.rung,
                brown_degraded: b.degraded,
            }
        });
        EngineSnapshot {
            meta: SnapshotMeta {
                version: SNAPSHOT_VERSION,
                workers: self.config.workers,
                slo_s: self.config.slo_s,
                arrival_seed: self.config.arrival_seed,
                latency_seed: self.config.latency_seed,
                scheme: scheme.name().to_owned(),
                events_done,
                sim_time_ns: now,
                events_emitted,
                arrivals_len: arrivals.len(),
                arrivals_hash,
            },
            heap: entries,
            next_seq,
            horizon,
            worker_queues: worker_queues.to_vec(),
            central_queue: central_queue.clone(),
            limbo: limbo.clone(),
            rr_next,
            cluster: cluster.snapshot(),
            resilience: ResilienceState {
                budget: resil.budget.clone(),
                admission: resil.admission.clone(),
                service_hist: resil.service_hist.clone(),
                retry_buf: resil.retry_buf.clone(),
            },
            metrics: metrics.clone(),
            latency_rng: sampler.rng_state(),
            autoscale,
            health: health.map(|h| h.monitor.snapshot()),
            scheme_state: scheme
                .checkpoint_state()
                .expect("scheme support validated at run start"),
            estimator_state: estimator
                .checkpoint_state()
                .expect("estimator support validated at run start"),
        }
    }

    /// The next live worker in round-robin order, advancing the cursor;
    /// `None` when every worker is dead.
    fn next_live_rr(alive: &[bool], rr_next: &mut usize) -> Option<usize> {
        let n = alive.len();
        for _ in 0..n {
            let w = *rr_next;
            *rr_next = (*rr_next + 1) % n;
            if alive[w] {
                return Some(w);
            }
        }
        None
    }

    /// Routes one query — a fresh arrival or a backed-off retry — to a
    /// queue per the scheme's routing discipline, consulting admission
    /// control before the enqueue and starting service if the chosen
    /// worker is idle. With no live worker the query is stranded (see
    /// [`Self::strand`]).
    #[allow(clippy::too_many_arguments)]
    fn route_query(
        &self,
        mut q: Query,
        now: Nanos,
        routing: Routing,
        crash_policy: CrashPolicy,
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
        worker_queues: &mut [VecDeque<Query>],
        central_queue: &mut VecDeque<Query>,
        limbo: &mut VecDeque<Query>,
        rr_next: &mut usize,
        cluster: &mut Cluster,
        resil: &mut ResilienceRuntime,
        sampler: &mut LatencySampler,
        metrics: &mut MetricsCollector,
        heap: &mut EventHeap,
        seq: &mut u64,
        tracer: &mut Tracer<'_>,
        prof: &mut Profiler,
        brown: &mut Option<BrownoutState>,
        dec: &mut DecisionTracer<'_>,
        per: Option<Perceived<'_>>,
    ) {
        q.enqueued_at = now;
        let n_workers = cluster.alive.len();
        let apol = resil.policy.admission;
        // With the detector on, routing selects from the *perceived*
        // membership: an undetected crash still receives work (it piles
        // up until suspicion displaces it), a suspected-but-healthy
        // worker is skipped. Physical service start below still gates on
        // ground-truth `alive` — the simulator never runs a batch on a
        // dead machine.
        let sel: &[bool] = match per {
            Some(p) => p.view,
            None => &cluster.alive,
        };
        match routing {
            Routing::PerWorkerRoundRobin => match Self::next_live_rr(sel, rr_next) {
                Some(w) => {
                    if !try_admit(
                        &q,
                        now,
                        QueueId::Worker(w as u32),
                        &worker_queues[w],
                        &mut resil.admission[w],
                        &apol,
                        metrics,
                        tracer,
                    ) {
                        return;
                    }
                    worker_queues[w].push_back(q);
                    tracer.emit(|| Event::Enqueue {
                        at: now,
                        query: q.id,
                        queue: QueueId::Worker(w as u32),
                        depth: worker_queues[w].len() as u32,
                    });
                    if cluster.alive[w] && !cluster.busy[w] {
                        self.dispatch(
                            w,
                            now,
                            scheme,
                            estimator,
                            &mut worker_queues[w],
                            cluster,
                            resil,
                            sampler,
                            metrics,
                            heap,
                            seq,
                            tracer,
                            prof,
                            brown,
                            dec,
                            per.map(|p| p.live),
                        );
                    }
                }
                None => Self::strand(q, crash_policy, limbo, metrics, tracer, now),
            },
            Routing::PerWorkerShortestQueue => {
                let target = (0..n_workers)
                    .filter(|&w| sel[w])
                    .min_by_key(|&w| (worker_queues[w].len(), w));
                match target {
                    Some(w) => {
                        if !try_admit(
                            &q,
                            now,
                            QueueId::Worker(w as u32),
                            &worker_queues[w],
                            &mut resil.admission[w],
                            &apol,
                            metrics,
                            tracer,
                        ) {
                            return;
                        }
                        worker_queues[w].push_back(q);
                        tracer.emit(|| Event::Enqueue {
                            at: now,
                            query: q.id,
                            queue: QueueId::Worker(w as u32),
                            depth: worker_queues[w].len() as u32,
                        });
                        if cluster.alive[w] && !cluster.busy[w] {
                            self.dispatch(
                                w,
                                now,
                                scheme,
                                estimator,
                                &mut worker_queues[w],
                                cluster,
                                resil,
                                sampler,
                                metrics,
                                heap,
                                seq,
                                tracer,
                                prof,
                                brown,
                                dec,
                                per.map(|p| p.live),
                            );
                        }
                    }
                    None => Self::strand(q, crash_policy, limbo, metrics, tracer, now),
                }
            }
            Routing::Central => {
                if !try_admit(
                    &q,
                    now,
                    QueueId::Central,
                    central_queue,
                    &mut resil.admission[n_workers],
                    &apol,
                    metrics,
                    tracer,
                ) {
                    return;
                }
                central_queue.push_back(q);
                tracer.emit(|| Event::Enqueue {
                    at: now,
                    query: q.id,
                    queue: QueueId::Central,
                    depth: central_queue.len() as u32,
                });
                if let Some(w) =
                    (0..n_workers).find(|&w| cluster.alive[w] && !cluster.busy[w] && sel[w])
                {
                    self.dispatch(
                        w,
                        now,
                        scheme,
                        estimator,
                        central_queue,
                        cluster,
                        resil,
                        sampler,
                        metrics,
                        heap,
                        seq,
                        tracer,
                        prof,
                        brown,
                        dec,
                        per.map(|p| p.live),
                    );
                }
            }
        }
    }

    /// Handles an arrival with no live worker to route to: stranded in
    /// limbo under `RequeueToSurvivors` (served after a recovery),
    /// dropped under `Drop`.
    fn strand(
        q: Query,
        policy: CrashPolicy,
        limbo: &mut VecDeque<Query>,
        metrics: &mut MetricsCollector,
        tracer: &mut Tracer<'_>,
        now: Nanos,
    ) {
        match policy {
            CrashPolicy::RequeueToSurvivors => {
                tracer.emit(|| Event::Enqueue {
                    at: now,
                    query: q.id,
                    queue: QueueId::Limbo,
                    depth: limbo.len() as u32 + 1,
                });
                limbo.push_back(q);
            }
            CrashPolicy::Drop => {
                tracer.emit(|| Event::Drop {
                    at: now,
                    query: q.id,
                });
                metrics.record_crash_dropped(&[q]);
            }
        }
    }

    /// Ejects a freshly suspected worker from the perceived view and
    /// displaces its queued work to perceived survivors, mirroring the
    /// oracle crash-requeue path. An in-flight batch (false suspicion)
    /// still runs to completion — suspicion is a routing decision, not
    /// a physical fact.
    #[allow(clippy::too_many_arguments)]
    fn apply_suspicion(
        w: usize,
        now: Nanos,
        routing: Routing,
        scheme: &mut dyn ServingScheme,
        health: &mut HealthRuntime,
        worker_queues: &mut [VecDeque<Query>],
        central_queue: &mut VecDeque<Query>,
        limbo: &mut VecDeque<Query>,
        rr_next: &mut usize,
        metrics: &mut MetricsCollector,
        tracer: &mut Tracer<'_>,
    ) {
        if health.view[w] {
            health.view[w] = false;
            health.perceived_live -= 1;
        }
        let displaced: Vec<Query> = worker_queues[w].drain(..).collect();
        if !displaced.is_empty() {
            if tracer.on {
                for q in &displaced {
                    tracer.emit(|| Event::CrashRequeue {
                        at: now,
                        query: q.id,
                        from: w as u32,
                    });
                }
            }
            metrics.record_crash_requeued(displaced.len() as u64);
            health.monitor.stats.requeued_on_suspect += displaced.len() as u64;
            match routing {
                Routing::Central => {
                    // Back to the head of the central queue: the stuck
                    // batch carries the earliest deadlines.
                    for mut q in displaced.into_iter().rev() {
                        q.enqueued_at = now;
                        central_queue.push_front(q);
                    }
                }
                _ if health.perceived_live == 0 => limbo.extend(displaced),
                _ => {
                    for mut q in displaced {
                        q.enqueued_at = now;
                        let t = Self::next_live_rr(&health.view, rr_next)
                            .expect("perceived_live > 0 checked");
                        worker_queues[t].push_back(q);
                    }
                }
            }
        }
        scheme.on_membership_change(health.perceived_live);
    }

    /// Returns a worker whose breaker just closed to the perceived view
    /// and drains any limbo work to it (per-worker routing only). The
    /// close was probe-gated, so the worker is physically alive here.
    #[allow(clippy::too_many_arguments)]
    fn apply_reinstate(
        w: usize,
        now: Nanos,
        routing: Routing,
        scheme: &mut dyn ServingScheme,
        health: &mut HealthRuntime,
        worker_queues: &mut [VecDeque<Query>],
        limbo: &mut VecDeque<Query>,
        cluster: &Cluster,
    ) {
        health.view[w] =
            !health.monitor.suspected(w) && (cluster.alive[w] || cluster.down_since[w].is_some());
        health.perceived_live = health.view.iter().filter(|&&v| v).count();
        if !limbo.is_empty() && routing != Routing::Central && health.view[w] {
            for mut q in limbo.drain(..) {
                q.enqueued_at = now;
                worker_queues[w].push_back(q);
            }
        }
        scheme.on_membership_change(health.perceived_live);
    }

    /// After a membership change, gives every idle live worker with
    /// visible work a chance to start serving.
    #[allow(clippy::too_many_arguments)]
    fn kick_idle_workers(
        &self,
        now: Nanos,
        routing: Routing,
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
        worker_queues: &mut [VecDeque<Query>],
        central_queue: &mut VecDeque<Query>,
        cluster: &mut Cluster,
        resil: &mut ResilienceRuntime,
        sampler: &mut LatencySampler,
        metrics: &mut MetricsCollector,
        heap: &mut EventHeap,
        seq: &mut u64,
        tracer: &mut Tracer<'_>,
        prof: &mut Profiler,
        brown: &mut Option<BrownoutState>,
        dec: &mut DecisionTracer<'_>,
        per: Option<Perceived<'_>>,
    ) {
        // Indexed: the queue borrow alternates between `worker_queues[w]`
        // and the central queue depending on routing.
        #[allow(clippy::needless_range_loop)]
        for w in 0..cluster.alive.len() {
            if !cluster.alive[w] || cluster.busy[w] || per.is_some_and(|p| !p.view[w]) {
                continue;
            }
            let queue = match routing {
                Routing::Central => &mut *central_queue,
                _ => &mut worker_queues[w],
            };
            if queue.is_empty() {
                continue;
            }
            self.dispatch(
                w,
                now,
                scheme,
                estimator,
                queue,
                cluster,
                resil,
                sampler,
                metrics,
                heap,
                seq,
                tracer,
                prof,
                brown,
                dec,
                per.map(|p| p.live),
            );
        }
    }

    /// Asks the scheme for decisions for worker `w` until it starts
    /// service, idles, or drains its queue (consecutive `Drop`
    /// selections shed instantly and re-ask, §4.3.1's drop
    /// reformulation).
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &self,
        w: usize,
        now: Nanos,
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
        queue: &mut VecDeque<Query>,
        cluster: &mut Cluster,
        resil: &mut ResilienceRuntime,
        sampler: &mut LatencySampler,
        metrics: &mut MetricsCollector,
        heap: &mut EventHeap,
        seq: &mut u64,
        tracer: &mut Tracer<'_>,
        prof: &mut Profiler,
        brown: &mut Option<BrownoutState>,
        dec: &mut DecisionTracer<'_>,
        perceived_live: Option<usize>,
    ) {
        debug_assert!(!cluster.busy[w], "dispatch on a busy worker");
        debug_assert!(cluster.alive[w], "dispatch on a dead worker");
        prof.enter(Phase::Dispatch);
        let profile = self.profile_of(w);
        while !queue.is_empty() {
            prof.incr(HotCounter::PolicyLookups);
            prof.gauge(GaugeId::QueueDepth, queue.len() as u64);
            let earliest = queue.front().expect("queue checked non-empty");
            let ctx = SelectionContext {
                now_s: secs_from_nanos(now),
                load_qps: estimator.estimate(secs_from_nanos(now)),
                queued: queue.len(),
                earliest_slack_s: earliest.slack_at(now),
                worker: w,
                live_workers: perceived_live.unwrap_or(cluster.live),
            };
            prof.enter(Phase::PolicySelect);
            let selection = scheme.select(&ctx);
            prof.exit(Phase::PolicySelect);
            tracer.drain_scheme(scheme);
            let front_query = earliest.id;
            // Counterfactual branch point: the scheme is always asked
            // (so its internal state evolves identically), but a forced
            // alternative replaces its raw pick at exactly one decision
            // index. Batch / shed counts are clamped to the visible
            // queue so a replay under different queue depth stays valid.
            let dk = dec.next();
            let selection = match dec.force(dk) {
                Some(Selection::Serve { model, batch }) => Selection::Serve {
                    model,
                    batch: batch.clamp(1, queue.len() as u32),
                },
                Some(Selection::Drop { count }) => Selection::Drop {
                    count: count.clamp(1, queue.len() as u32),
                },
                Some(Selection::Idle) => Selection::Idle,
                None => selection,
            };
            tracer.emit(|| Event::PolicyDecision {
                at: now,
                worker: w as u32,
                queued: ctx.queued as u32,
                slack_ns: (ctx.earliest_slack_s * 1e9).round() as i64,
                action: match selection {
                    Selection::Serve { model, batch } => Action::Serve {
                        model: model as u32,
                        batch,
                    },
                    Selection::Drop { count } => Action::Drop { count },
                    Selection::Idle => Action::Idle,
                },
            });
            match selection {
                Selection::Idle => {
                    if dec.on {
                        prof.enter(Phase::Decision);
                        let reason = if scheme.last_select_was_fallback() {
                            ReasonCode::Fallback
                        } else {
                            ReasonCode::PolicyLookup
                        };
                        let regime = scheme.regime().map(str::to_owned);
                        let candidates = decision_candidates(
                            profile,
                            &ctx,
                            (queue.len() as u32).min(profile.max_batch()),
                        );
                        dec.emit(|event| DecisionRecord {
                            k: dk,
                            at: now,
                            event,
                            query: Some(front_query),
                            worker: w as u32,
                            state: Some(decision_state(&ctx)),
                            regime,
                            candidates,
                            chosen: ChosenAction::Idle,
                            effective: None,
                            reason,
                        });
                        prof.exit(Phase::Decision);
                    }
                    break;
                }
                Selection::Drop { count } => {
                    assert!(
                        count >= 1 && count as usize <= queue.len(),
                        "scheme shed {count} from a queue of {}",
                        queue.len()
                    );
                    if dec.on {
                        prof.enter(Phase::Decision);
                        let regime = scheme.regime().map(str::to_owned);
                        let candidates = decision_candidates(
                            profile,
                            &ctx,
                            (queue.len() as u32).min(profile.max_batch()),
                        );
                        dec.emit(|event| DecisionRecord {
                            k: dk,
                            at: now,
                            event,
                            query: Some(front_query),
                            worker: w as u32,
                            state: Some(decision_state(&ctx)),
                            regime,
                            candidates,
                            chosen: ChosenAction::Shed { count },
                            effective: None,
                            reason: ReasonCode::Shed,
                        });
                        prof.exit(Phase::Decision);
                    }
                    let shed: Vec<Query> = queue.drain(..count as usize).collect();
                    if tracer.on {
                        let cause = scheme.shed_cause();
                        for q in &shed {
                            tracer.emit(|| Event::Shed {
                                at: now,
                                query: q.id,
                                cause,
                            });
                        }
                    }
                    metrics.record_dropped(&shed);
                    // Shedding takes no time; ask again for the rest.
                }
                Selection::Serve { model, batch } => {
                    // Brownout: a model banned by the active rung
                    // degrades to the slowest still-allowed one before
                    // the dispatch commits. The PolicyDecision event
                    // above keeps the scheme's raw choice; the Dispatch
                    // event below carries the degraded model.
                    let raw_model = model;
                    let model = match brown.as_mut() {
                        Some(b) => b.remap(model),
                        None => model,
                    };
                    if dec.on {
                        prof.enter(Phase::Decision);
                        let reason = if model != raw_model {
                            ReasonCode::DegradedRung
                        } else if scheme.last_select_was_fallback() {
                            ReasonCode::Fallback
                        } else {
                            ReasonCode::PolicyLookup
                        };
                        let regime = scheme.regime().map(str::to_owned);
                        let candidates = decision_candidates(profile, &ctx, batch);
                        let effective = (model != raw_model).then_some(ChosenAction::Serve {
                            model: model as u32,
                            batch,
                        });
                        dec.emit(|event| DecisionRecord {
                            k: dk,
                            at: now,
                            event,
                            query: Some(front_query),
                            worker: w as u32,
                            state: Some(decision_state(&ctx)),
                            regime,
                            candidates,
                            chosen: ChosenAction::Serve {
                                model: raw_model as u32,
                                batch,
                            },
                            effective,
                            reason,
                        });
                        prof.exit(Phase::Decision);
                    }
                    assert!(
                        batch >= 1 && batch as usize <= queue.len(),
                        "scheme chose batch {batch} from a queue of {}",
                        queue.len()
                    );
                    assert!(
                        model < profile.n_models(),
                        "scheme chose unknown model {model}"
                    );
                    tracer.emit(|| Event::Dispatch {
                        at: now,
                        worker: w as u32,
                        model: model as u32,
                        batch,
                        depth: queue.len() as u32,
                    });
                    prof.incr(HotCounter::Dispatches);
                    let batch_queries: Vec<Query> = queue.drain(..batch as usize).collect();
                    let service = sampler.sample(profile, model, batch) * cluster.slow[w];
                    let service_ns = nanos_from_secs(service);
                    cluster.busy[w] = true;
                    let epoch = cluster.epochs[w];
                    // A dispatch gets exactly one end event: its
                    // completion, or — when timeouts are on and the
                    // granted budget runs out first — a timeout.
                    let tpol = resil.policy.timeout;
                    let mut timeout_cut = Nanos::MAX;
                    if tpol.enabled {
                        let slack = batch_queries[0].deadline.saturating_sub(now);
                        let t_ns = nanos_from_secs(tpol.min_timeout_s)
                            .max((slack as f64 * tpol.slack_fraction) as Nanos);
                        if t_ns < service_ns {
                            timeout_cut = t_ns;
                            heap.push(Reverse((now + t_ns, *seq, EventKind::Timeout(w, epoch))));
                        } else {
                            heap.push(Reverse((
                                now + service_ns,
                                *seq,
                                EventKind::WorkerDone(w, epoch),
                            )));
                        }
                        *seq += 1;
                    } else {
                        heap.push(Reverse((
                            now + service_ns,
                            *seq,
                            EventKind::WorkerDone(w, epoch),
                        )));
                        *seq += 1;
                    }
                    prof.incr(HotCounter::HeapPushes);
                    let hpol = resil.policy.hedge;
                    if hpol.enabled {
                        resil.service_hist.record(service_ns);
                        if cluster.alive.len() > 1 {
                            if let Some(delay) = resil.hedge_delay_ns() {
                                // Hedging past the dispatch's own end
                                // would be a no-op; don't schedule it.
                                if delay < service_ns.min(timeout_cut) {
                                    heap.push(Reverse((
                                        now + delay,
                                        *seq,
                                        EventKind::HedgeDue(w, epoch),
                                    )));
                                    *seq += 1;
                                    prof.incr(HotCounter::HeapPushes);
                                }
                            }
                        }
                    }
                    cluster.in_flight[w] = Some(InFlight {
                        model,
                        queries: batch_queries,
                        started: now,
                        twin: None,
                        is_hedge: false,
                    });
                    break;
                }
            }
        }
        prof.exit(Phase::Dispatch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::RamsisScheme;
    use ramsis_core::{Discretization, PolicyConfig, PolicySet};
    use ramsis_profiles::{ModelCatalog, ProfilerConfig};
    use ramsis_workload::{LoadMonitor, OracleMonitor, TraceKind};
    use std::time::Duration;

    fn profile() -> &'static WorkerProfile {
        use std::sync::OnceLock;
        static PROFILE: OnceLock<WorkerProfile> = OnceLock::new();
        PROFILE.get_or_init(|| {
            WorkerProfile::build(
                &ModelCatalog::torchvision_image(),
                Duration::from_millis(150),
                ProfilerConfig::default(),
            )
        })
    }

    fn ramsis_scheme(workers: usize, loads: &[f64]) -> RamsisScheme {
        let config = PolicyConfig::builder(Duration::from_millis(150))
            .workers(workers)
            .discretization(Discretization::fixed_length(10))
            .build();
        RamsisScheme::new(PolicySet::generate_poisson(profile(), loads, &config).unwrap())
    }

    /// A trivially simple central-queue scheme for engine tests: always
    /// the fastest model, always the full visible queue.
    struct GreedyFastest {
        model: usize,
    }

    impl ServingScheme for GreedyFastest {
        fn name(&self) -> &str {
            "greedy-fastest"
        }
        fn routing(&self) -> Routing {
            Routing::Central
        }
        fn select(&mut self, ctx: &SelectionContext) -> Selection {
            Selection::Serve {
                model: self.model,
                batch: ctx.queued as u32,
            }
        }
        fn checkpoint_state(&self) -> Option<serde::Value> {
            Some(serde::Value::Null)
        }
        fn restore_state(&mut self, _state: &serde::Value) -> Result<(), String> {
            Ok(())
        }
    }

    /// Like [`GreedyFastest`] but with per-worker round-robin routing.
    struct GreedyFastestRr {
        model: usize,
    }

    impl ServingScheme for GreedyFastestRr {
        fn name(&self) -> &str {
            "greedy-fastest-rr"
        }
        fn routing(&self) -> Routing {
            Routing::PerWorkerRoundRobin
        }
        fn select(&mut self, ctx: &SelectionContext) -> Selection {
            Selection::Serve {
                model: self.model,
                batch: ctx.queued as u32,
            }
        }
        fn checkpoint_state(&self) -> Option<serde::Value> {
            Some(serde::Value::Null)
        }
        fn restore_state(&mut self, _state: &serde::Value) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn conservation_every_arrival_is_served_once() {
        let trace = Trace::constant(300.0, 5.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(4, 0.15)).unwrap();
        let mut scheme = GreedyFastest {
            model: profile().fastest_model(),
        };
        let mut monitor = LoadMonitor::new();
        let report = sim.run(&trace, &mut scheme, &mut monitor);
        assert!(report.total_arrivals > 1_000);
        assert_eq!(report.served, report.total_arrivals);
        let per_model_total: u64 = report.per_model.iter().map(|&(_, c)| c).sum();
        assert_eq!(per_model_total, report.served);
    }

    #[test]
    fn runs_are_deterministic() {
        let trace = Trace::constant(200.0, 3.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(4, 0.15).seeded(9)).unwrap();
        let mut m1 = LoadMonitor::new();
        let mut m2 = LoadMonitor::new();
        let r1 = sim.run(
            &trace,
            &mut GreedyFastest {
                model: profile().fastest_model(),
            },
            &mut m1,
        );
        let r2 = sim.run(
            &trace,
            &mut GreedyFastest {
                model: profile().fastest_model(),
            },
            &mut m2,
        );
        assert_eq!(r1, r2);
    }

    #[test]
    fn runs_are_deterministic_under_faults() {
        // Same seeds + same non-trivial fault plan must reproduce the
        // report byte-for-byte, including its serialized form.
        let trace = Trace::constant(200.0, 8.0);
        let plan = FaultPlan::none()
            .crash(0, 1.0)
            .recover(0, 4.0)
            .crash(2, 2.0)
            .recover(2, 6.0)
            .slowdown(1, 2.0, 5.0, 2.5)
            .surge(3.0, 6.0, 2.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(4, 0.15).seeded(9)).unwrap();
        let run = || {
            let mut scheme = GreedyFastestRr {
                model: profile().fastest_model(),
            };
            let mut monitor = LoadMonitor::new();
            sim.run_faulted(&trace, &plan, &mut scheme, &mut monitor)
                .unwrap()
        };
        let r1 = run();
        let r2 = run();
        assert_eq!(r1, r2);
        assert_eq!(
            serde_json::to_string(&r1).unwrap(),
            serde_json::to_string(&r2).unwrap()
        );
        // The plan actually bit: downtime accrued and work moved.
        assert!(r1.faults.downtime_s > 0.0);
        assert!(r1.faults.served_in_fault > 0);
    }

    #[test]
    fn empty_fault_plan_matches_fault_free_run() {
        let trace = Trace::constant(250.0, 4.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(4, 0.15).seeded(5)).unwrap();
        let mut m1 = LoadMonitor::new();
        let mut m2 = LoadMonitor::new();
        let baseline = sim.run(
            &trace,
            &mut GreedyFastest {
                model: profile().fastest_model(),
            },
            &mut m1,
        );
        let with_empty_plan = sim
            .run_faulted(
                &trace,
                &FaultPlan::none(),
                &mut GreedyFastest {
                    model: profile().fastest_model(),
                },
                &mut m2,
            )
            .unwrap();
        assert_eq!(baseline, with_empty_plan);
    }

    #[test]
    fn crash_requeue_preserves_conservation() {
        // One of four workers dies mid-run and recovers; with requeue
        // every arrival is still served exactly once.
        let trace = Trace::constant(200.0, 6.0);
        let plan = FaultPlan::none().crash(1, 1.5).recover(1, 4.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(4, 0.15).seeded(3)).unwrap();
        let mut scheme = GreedyFastestRr {
            model: profile().fastest_model(),
        };
        let mut monitor = LoadMonitor::new();
        let report = sim
            .run_faulted(&trace, &plan, &mut scheme, &mut monitor)
            .unwrap();
        assert_eq!(report.served, report.total_arrivals);
        assert_eq!(report.dropped, 0);
        assert!(report.faults.crash_requeued > 0);
        assert!((report.faults.downtime_s - 2.5).abs() < 0.01);
    }

    #[test]
    fn crash_drop_policy_loses_displaced_queries() {
        let trace = Trace::constant(200.0, 6.0);
        let plan = FaultPlan::none()
            .with_crash_policy(CrashPolicy::Drop)
            .crash(1, 1.5)
            .recover(1, 4.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(4, 0.15).seeded(3)).unwrap();
        let mut scheme = GreedyFastestRr {
            model: profile().fastest_model(),
        };
        let mut monitor = LoadMonitor::new();
        let report = sim
            .run_faulted(&trace, &plan, &mut scheme, &mut monitor)
            .unwrap();
        assert!(report.faults.crash_dropped > 0);
        assert_eq!(report.dropped, report.faults.crash_dropped);
        assert_eq!(report.served + report.dropped, report.total_arrivals);
    }

    #[test]
    fn slowdown_window_degrades_latency() {
        let trace = Trace::constant(150.0, 6.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(2, 0.15).seeded(8)).unwrap();
        let run = |plan: &FaultPlan| {
            let mut scheme = GreedyFastest {
                model: profile().fastest_model(),
            };
            let mut monitor = LoadMonitor::new();
            sim.run_faulted(&trace, plan, &mut scheme, &mut monitor)
                .unwrap()
        };
        let nominal = run(&FaultPlan::none());
        let slowed = run(&FaultPlan::none()
            .slowdown(0, 1.0, 5.0, 4.0)
            .slowdown(1, 1.0, 5.0, 4.0));
        assert!(
            slowed.mean_response_s > nominal.mean_response_s,
            "slowdown must hurt: {} vs {}",
            slowed.mean_response_s,
            nominal.mean_response_s
        );
    }

    #[test]
    fn surge_increases_offered_load() {
        let trace = Trace::constant(100.0, 10.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(4, 0.15).seeded(4)).unwrap();
        let run = |plan: &FaultPlan| {
            let mut scheme = GreedyFastest {
                model: profile().fastest_model(),
            };
            let mut monitor = LoadMonitor::new();
            sim.run_faulted(&trace, plan, &mut scheme, &mut monitor)
                .unwrap()
        };
        let nominal = run(&FaultPlan::none());
        let surged = run(&FaultPlan::none().surge(2.0, 8.0, 3.0));
        // 3x load over 6 of 10 seconds: expected arrivals go from
        // ~1,000 to ~2,200.
        assert!(
            surged.total_arrivals as f64 > nominal.total_arrivals as f64 * 1.8,
            "{} vs {}",
            surged.total_arrivals,
            nominal.total_arrivals
        );
    }

    #[test]
    fn full_outage_strands_then_recovers() {
        // Both workers die; with requeue the stranded queries are
        // served after recovery, conserving every arrival.
        let trace = Trace::constant(50.0, 4.0);
        let plan = FaultPlan::none()
            .crash(0, 1.0)
            .crash(1, 1.0)
            .recover(0, 2.0)
            .recover(1, 2.5);
        let sim = Simulation::new(profile(), SimulationConfig::new(2, 0.15).seeded(6)).unwrap();
        let mut scheme = GreedyFastestRr {
            model: profile().fastest_model(),
        };
        let mut monitor = LoadMonitor::new();
        let report = sim
            .run_faulted(&trace, &plan, &mut scheme, &mut monitor)
            .unwrap();
        assert_eq!(report.served, report.total_arrivals);
        assert!(report.faults.downtime_s > 2.0);
    }

    #[test]
    fn invalid_plan_is_rejected() {
        let trace = Trace::constant(50.0, 1.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(2, 0.15)).unwrap();
        let mut scheme = GreedyFastest { model: 0 };
        let mut monitor = LoadMonitor::new();
        let plan = FaultPlan::none().crash(7, 1.0);
        assert!(sim
            .run_faulted(&trace, &plan, &mut scheme, &mut monitor)
            .is_err());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(SimulationConfig::new(0, 0.15).validate().is_err());
        assert!(SimulationConfig::new(4, 0.0).validate().is_err());
        assert!(SimulationConfig::new(4, -1.0).validate().is_err());
        assert!(SimulationConfig::new(4, f64::NAN).validate().is_err());
        assert!(SimulationConfig::new(4, 0.15).validate().is_ok());
        assert!(Simulation::new(profile(), SimulationConfig::new(0, 0.15)).is_err());
        assert!(Simulation::new(profile(), SimulationConfig::new(4, -0.5)).is_err());
    }

    #[test]
    fn underload_has_no_violations_with_fast_model() {
        // 40 QPS across 4 workers, fastest model: utilization ~20%.
        let trace = Trace::constant(40.0, 10.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(4, 0.15)).unwrap();
        let mut scheme = GreedyFastest {
            model: profile().fastest_model(),
        };
        let mut monitor = LoadMonitor::new();
        let report = sim.run(&trace, &mut scheme, &mut monitor);
        assert_eq!(
            report.violations, 0,
            "violation_rate={}",
            report.violation_rate
        );
        assert!(report.mean_response_s < 0.15);
    }

    #[test]
    fn overload_with_slow_model_violates() {
        // The most accurate model cannot sustain 400 QPS on 4 workers.
        let trace = Trace::constant(400.0, 5.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(4, 0.15)).unwrap();
        let slow = *profile().pareto_models().last().unwrap();
        let mut scheme = GreedyFastest { model: slow };
        let mut monitor = LoadMonitor::new();
        let report = sim.run(&trace, &mut scheme, &mut monitor);
        assert!(
            report.violation_rate > 0.5,
            "violation_rate={}",
            report.violation_rate
        );
        // Response times blow far past the SLO under queue buildup.
        assert!(report.p99_response_s > 0.15);
    }

    #[test]
    fn response_time_at_least_service_time() {
        let trace = Trace::constant(100.0, 5.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(2, 0.15)).unwrap();
        let mut scheme = GreedyFastest {
            model: profile().fastest_model(),
        };
        let mut monitor = LoadMonitor::new();
        let report = sim.run(&trace, &mut scheme, &mut monitor);
        let batch1 = profile().latency(profile().fastest_model(), 1).unwrap();
        assert!(report.mean_response_s >= batch1 * 0.9);
    }

    #[test]
    fn ramsis_end_to_end_low_load_beats_fastest_model_accuracy() {
        // At light load the RAMSIS policy should select models more
        // accurate than the fastest one, without violating.
        let trace = Trace::constant(80.0, 10.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(4, 0.15)).unwrap();
        let mut scheme = ramsis_scheme(4, &[100.0, 400.0]);
        let mut monitor = OracleMonitor::new(trace.clone());
        let report = sim.run(&trace, &mut scheme, &mut monitor);
        let fast_acc = profile().accuracy(profile().fastest_model());
        assert!(
            report.accuracy_per_satisfied_query > fast_acc + 5.0,
            "accuracy {}",
            report.accuracy_per_satisfied_query
        );
        assert!(
            report.violation_rate < 0.05,
            "violation_rate={}",
            report.violation_rate
        );
    }

    #[test]
    fn ramsis_guarantee_brackets_simulation() {
        // §5.1/§7.3.1: expected accuracy lower-bounds and expected
        // violation upper-bounds the deterministic simulation.
        let load = 120.0;
        let trace = Trace::constant(load, 20.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(4, 0.15)).unwrap();
        let config = PolicyConfig::builder(Duration::from_millis(150))
            .workers(4)
            .discretization(Discretization::fixed_length(10))
            .build();
        let set = PolicySet::generate_poisson(profile(), &[load], &config).unwrap();
        let g = *set.policies()[0].guarantees();
        let mut scheme = RamsisScheme::new(set);
        let mut monitor = OracleMonitor::new(trace.clone());
        let report = sim.run(&trace, &mut scheme, &mut monitor);
        assert!(
            report.accuracy_per_satisfied_query >= g.expected_accuracy - 1.0,
            "observed {} vs expected {}",
            report.accuracy_per_satisfied_query,
            g.expected_accuracy
        );
        assert!(
            report.violation_rate <= g.expected_violation_rate + 0.02,
            "observed {} vs expected {}",
            report.violation_rate,
            g.expected_violation_rate
        );
    }

    #[test]
    fn stochastic_latency_at_least_as_good_as_deterministic() {
        // §7.3.1: the implementation (stochastic) achieves equal or
        // better accuracy than the simulation (deterministic p95)
        // because real invocations usually finish before their p95.
        let trace = Trace::constant(150.0, 15.0);
        let det = Simulation::new(profile(), SimulationConfig::new(4, 0.15)).unwrap();
        let sto = Simulation::new(profile(), SimulationConfig::new(4, 0.15).stochastic()).unwrap();
        let mut sd = ramsis_scheme(4, &[150.0]);
        let mut ss = ramsis_scheme(4, &[150.0]);
        let mut m1 = OracleMonitor::new(trace.clone());
        let mut m2 = OracleMonitor::new(trace.clone());
        let r_det = det.run(&trace, &mut sd, &mut m1);
        let r_sto = sto.run(&trace, &mut ss, &mut m2);
        assert!(
            r_sto.accuracy_per_satisfied_query >= r_det.accuracy_per_satisfied_query - 0.3,
            "stochastic {} vs deterministic {}",
            r_sto.accuracy_per_satisfied_query,
            r_det.accuracy_per_satisfied_query
        );
    }

    #[test]
    fn shortest_queue_routing_balances() {
        // 120 QPS over 4 workers is ~50% of the fastest model's
        // capacity — satisfiable under either balancer.
        let trace = Trace::from_interval_qps(&[120.0], 10.0, TraceKind::Custom);
        let sim = Simulation::new(profile(), SimulationConfig::new(4, 0.15)).unwrap();
        let config = PolicyConfig::builder(Duration::from_millis(150))
            .workers(4)
            .balancing(ramsis_core::Balancing::ShortestQueueFirst)
            .discretization(Discretization::fixed_length(10))
            .build();
        let set = PolicySet::generate_poisson(profile(), &[120.0], &config).unwrap();
        let mut scheme = RamsisScheme::with_shortest_queue(set);
        let mut monitor = OracleMonitor::new(trace.clone());
        let report = sim.run(&trace, &mut scheme, &mut monitor);
        assert_eq!(report.served, report.total_arrivals);
        assert!(
            report.violation_rate < 0.10,
            "violation={}",
            report.violation_rate
        );
    }

    #[test]
    fn stochastic_seeds_differ_deterministic_seeds_do_not() {
        let trace = Trace::constant(150.0, 3.0);
        let run = |config: SimulationConfig| {
            let sim = Simulation::new(profile(), config).unwrap();
            let mut scheme = GreedyFastest {
                model: profile().fastest_model(),
            };
            let mut monitor = LoadMonitor::new();
            sim.run(&trace, &mut scheme, &mut monitor)
        };
        // Different latency seeds change stochastic outcomes...
        let a = run(SimulationConfig::new(2, 0.15).stochastic().seeded(1));
        let mut cfg_b = SimulationConfig::new(2, 0.15).stochastic().seeded(1);
        cfg_b.latency_seed = 999;
        let b = run(cfg_b);
        assert_ne!(a.mean_response_s, b.mean_response_s);
        // ...but not deterministic ones.
        let c = run(SimulationConfig::new(2, 0.15).seeded(1));
        let mut cfg_d = SimulationConfig::new(2, 0.15).seeded(1);
        cfg_d.latency_seed = 999;
        let d = run(cfg_d);
        assert_eq!(c, d);
    }

    #[test]
    fn empty_trace_is_a_noop() {
        let sim = Simulation::new(profile(), SimulationConfig::new(2, 0.15)).unwrap();
        let mut scheme = GreedyFastest { model: 0 };
        let mut monitor = LoadMonitor::new();
        let report = sim.run_arrivals(&[], &mut scheme, &mut monitor);
        assert_eq!(report.total_arrivals, 0);
        assert_eq!(report.served, 0);
    }

    #[test]
    fn default_resilience_emits_no_resilience_events() {
        let trace = Trace::constant(150.0, 3.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(2, 0.15).seeded(7)).unwrap();
        let mut scheme = GreedyFastest {
            model: profile().fastest_model(),
        };
        let mut monitor = LoadMonitor::new();
        let mut sink = ramsis_telemetry::VecSink::new();
        let report = sim.run_traced(&trace, &mut scheme, &mut monitor, &mut sink);
        assert_eq!(
            report.resilience,
            crate::metrics::ResilienceStats::default()
        );
        assert!(sink.events().iter().all(|e| !matches!(
            e,
            Event::Timeout { .. }
                | Event::Retry { .. }
                | Event::HedgeIssued { .. }
                | Event::HedgeCancelled { .. }
                | Event::Admission { .. }
        )));
    }

    #[test]
    fn timeouts_and_retries_rescue_straggling_dispatches() {
        // Worker 0 runs 20x slow for the whole run; timeouts cut its
        // straggling dispatches short and retries re-route the queries.
        let trace = Trace::constant(60.0, 4.0);
        let mut resilience = ResiliencePolicy::default();
        resilience.timeout.enabled = true;
        resilience.retry.max_retries = 3;
        resilience.retry.budget_rate_per_s = 1000.0;
        resilience.retry.budget_burst = 1000.0;
        let config = SimulationConfig::new(2, 0.15)
            .seeded(11)
            .with_resilience(resilience);
        let sim = Simulation::new(profile(), config).unwrap();
        let plan = FaultPlan::none().slowdown(0, 0.0, 4.0, 20.0);
        let mut scheme = GreedyFastestRr {
            model: profile().fastest_model(),
        };
        let mut monitor = LoadMonitor::new();
        let report = sim
            .run_faulted(&trace, &plan, &mut scheme, &mut monitor)
            .unwrap();
        assert!(report.resilience.timeouts > 0);
        assert!(report.resilience.retries > 0);
        assert_eq!(report.served + report.dropped, report.total_arrivals);
    }

    #[test]
    fn admission_bounds_queue_and_sheds_on_enqueue() {
        let trace = Trace::constant(400.0, 3.0);
        let mut resilience = ResiliencePolicy::default();
        resilience.admission.enabled = true;
        resilience.admission.queue_cap = 8;
        let config = SimulationConfig::new(1, 0.15)
            .seeded(3)
            .with_resilience(resilience);
        let sim = Simulation::new(profile(), config).unwrap();
        let slow = *profile().pareto_models().last().unwrap();
        let mut scheme = GreedyFastest { model: slow };
        let mut monitor = LoadMonitor::new();
        let report = sim.run(&trace, &mut scheme, &mut monitor);
        assert!(report.resilience.admission_shed > 0);
        assert_eq!(report.dropped, report.resilience.admission_shed);
        assert_eq!(report.served + report.dropped, report.total_arrivals);
    }

    #[test]
    fn hedging_duplicates_stragglers_and_counts_once() {
        let trace = Trace::constant(50.0, 10.0);
        let mut resilience = ResiliencePolicy::default();
        resilience.hedge.enabled = true;
        resilience.hedge.min_samples = 16;
        resilience.hedge.quantile = 90.0;
        let config = SimulationConfig::new(4, 0.15)
            .stochastic()
            .seeded(21)
            .with_resilience(resilience);
        let sim = Simulation::new(profile(), config).unwrap();
        let mut scheme = GreedyFastestRr {
            model: profile().fastest_model(),
        };
        let mut monitor = LoadMonitor::new();
        let report = sim.run(&trace, &mut scheme, &mut monitor);
        let res = report.resilience;
        assert!(res.hedges_issued > 0, "no hedges fired: {res:?}");
        assert!(res.hedges_cancelled <= res.hedges_issued);
        assert!(res.hedge_wins <= res.hedges_cancelled);
        // First-wins accounting: every query still served exactly once.
        assert_eq!(report.served, report.total_arrivals);
    }

    #[test]
    fn resilient_runs_are_deterministic() {
        // Everything on at once, stochastic latency, faults: same seeds
        // must still reproduce the report byte-for-byte.
        let trace = Trace::constant(150.0, 5.0);
        let plan = FaultPlan::none()
            .crash(1, 1.0)
            .recover(1, 2.5)
            .slowdown(0, 0.5, 4.0, 6.0)
            .surge(2.0, 4.0, 2.0);
        let config = SimulationConfig::new(3, 0.15)
            .stochastic()
            .seeded(17)
            .with_resilience(ResiliencePolicy::all_on());
        let sim = Simulation::new(profile(), config).unwrap();
        let run = || {
            let mut scheme = GreedyFastestRr {
                model: profile().fastest_model(),
            };
            let mut monitor = LoadMonitor::new();
            sim.run_faulted(&trace, &plan, &mut scheme, &mut monitor)
                .unwrap()
        };
        let r1 = run();
        let r2 = run();
        assert_eq!(r1, r2);
        assert_eq!(
            serde_json::to_string(&r1).unwrap(),
            serde_json::to_string(&r2).unwrap()
        );
    }

    #[test]
    fn resilience_validation_is_wired_into_config() {
        let mut resilience = ResiliencePolicy::all_on();
        resilience.timeout.min_timeout_s = f64::NAN;
        let config = SimulationConfig::new(2, 0.15).with_resilience(resilience);
        assert!(config.validate().is_err());
        assert!(Simulation::new(profile(), config).is_err());
        assert!(SimulationConfig::new(2, 0.15)
            .with_resilience(ResiliencePolicy::all_on())
            .validate()
            .is_ok());
    }

    #[test]
    #[should_panic(expected = "batch")]
    fn oversized_batch_is_rejected() {
        struct Bad;
        impl ServingScheme for Bad {
            fn name(&self) -> &str {
                "bad"
            }
            fn routing(&self) -> Routing {
                Routing::Central
            }
            fn select(&mut self, ctx: &SelectionContext) -> Selection {
                Selection::Serve {
                    model: 0,
                    batch: ctx.queued as u32 + 5,
                }
            }
        }
        let sim = Simulation::new(profile(), SimulationConfig::new(1, 0.15)).unwrap();
        let mut monitor = LoadMonitor::new();
        let _ = sim.run_arrivals(&[0.0], &mut Bad, &mut monitor);
    }

    // ---- elastic capacity -------------------------------------------

    /// Runs `config` traced with a greedy round-robin scheme and
    /// returns the report plus the full event stream.
    fn run_elastic(trace: &Trace, config: SimulationConfig) -> (SimulationReport, Vec<Event>) {
        let sim = Simulation::new(profile(), config).unwrap();
        let mut scheme = GreedyFastestRr {
            model: profile().fastest_model(),
        };
        let mut monitor = LoadMonitor::new();
        let mut sink = ramsis_telemetry::VecSink::new();
        let report = sim.run_traced(trace, &mut scheme, &mut monitor, &mut sink);
        (report, sink.into_events())
    }

    #[test]
    fn disabled_autoscale_is_byte_identical_to_plain_run() {
        // The elasticity acceptance bar: a config that merely *carries*
        // the (disabled) autoscale knobs must reproduce the fixed-pool
        // engine exactly — same report, same serialized JSON, same
        // event stream.
        let trace = Trace::constant(150.0, 4.0);
        let (plain, plain_events) = run_elastic(&trace, SimulationConfig::new(3, 0.15).seeded(2));
        let (off, off_events) = run_elastic(
            &trace,
            SimulationConfig::new(3, 0.15)
                .seeded(2)
                .with_autoscale(AutoscalePolicy::default()),
        );
        assert_eq!(plain, off);
        assert_eq!(plain_events, off_events);
        assert!(off.autoscale.is_none());
        let json = serde_json::to_string(&off).unwrap();
        assert_eq!(json, serde_json::to_string(&plain).unwrap());
        assert!(
            !json.contains("autoscale"),
            "disabled runs must omit the field entirely"
        );
    }

    #[test]
    fn autoscale_grows_the_pool_to_serve_a_surge() {
        // 150 QPS against one initial worker (~50 QPS capacity at the
        // fastest model): the controller must warm extra workers and
        // end up serving everything a fixed single-worker pool cannot.
        let trace = Trace::constant(150.0, 8.0);
        let mut policy = AutoscalePolicy::elastic(1, 6, 40.0);
        policy.warmup_s = 0.5;
        let (fixed, _) = run_elastic(&trace, SimulationConfig::new(1, 0.15).seeded(3));
        let (elastic, events) = run_elastic(
            &trace,
            SimulationConfig::new(1, 0.15)
                .seeded(3)
                .with_autoscale(policy),
        );
        let stats = elastic.autoscale.expect("enabled run reports stats");
        assert!(stats.scale_ups > 0, "{stats:?}");
        assert!(stats.warmups_completed > 0, "{stats:?}");
        assert!(stats.max_live_workers >= 3, "{stats:?}");
        assert_eq!(elastic.served, elastic.total_arrivals);
        assert!(
            elastic.violation_rate < fixed.violation_rate,
            "elastic {} vs fixed {}",
            elastic.violation_rate,
            fixed.violation_rate
        );
        assert!(events.iter().any(|e| matches!(e, Event::ScaleUp { .. })));
        assert!(events.iter().any(|e| matches!(e, Event::WorkerWarm { .. })));
    }

    #[test]
    fn scale_in_drains_without_losing_work() {
        // Load collapses from 200 to 20 QPS halfway: the controller
        // drains surplus workers, every drained queue is handed off,
        // and conservation still holds query-for-query.
        let trace = Trace::from_interval_qps(&[200.0, 20.0], 5.0, TraceKind::Custom);
        let policy = AutoscalePolicy::elastic(1, 6, 50.0);
        let (report, events) = run_elastic(
            &trace,
            SimulationConfig::new(5, 0.15)
                .seeded(4)
                .with_autoscale(policy),
        );
        let stats = report.autoscale.expect("enabled run reports stats");
        assert!(stats.scale_downs > 0, "{stats:?}");
        assert!(stats.drains_completed > 0, "{stats:?}");
        assert!(stats.min_live_workers < 5, "{stats:?}");
        assert_eq!(report.served, report.total_arrivals);
        let c = ramsis_telemetry::conservation(&events);
        assert!(c.holds(), "{c:?}");
        assert_eq!(c.anomalies, 0);
        // Every ScaleDown is eventually matched by a DrainComplete.
        let downs = events
            .iter()
            .filter(|e| matches!(e, Event::ScaleDown { .. }))
            .count();
        let drains = events
            .iter()
            .filter(|e| matches!(e, Event::DrainComplete { .. }))
            .count();
        assert_eq!(downs, drains, "every drain must finish");
        // Elasticity pays: strictly fewer worker-seconds than the
        // fixed five-worker pool over the same horizon.
        assert!(
            stats.worker_seconds < 5.0 * report.horizon_s,
            "{} vs {}",
            stats.worker_seconds,
            5.0 * report.horizon_s
        );
    }

    #[test]
    fn brownout_engages_under_sustained_overload_and_exits_after() {
        // The pool is pinned at two workers (min == max) while load
        // runs far past capacity, then collapses: the ladder must
        // engage, degrade selections toward faster models, and exit
        // once the overload clears.
        let trace = Trace::from_interval_qps(&[400.0, 15.0], 6.0, TraceKind::Custom);
        let policy = AutoscalePolicy::elastic(2, 2, 50.0);
        let slow = *profile().pareto_models().last().unwrap();
        let sim = Simulation::new(
            profile(),
            SimulationConfig::new(2, 0.15)
                .seeded(5)
                .with_autoscale(policy),
        )
        .unwrap();
        let mut scheme = GreedyFastestRr { model: slow };
        let mut monitor = LoadMonitor::new();
        let mut sink = ramsis_telemetry::VecSink::new();
        let report = sim.run_traced(&trace, &mut scheme, &mut monitor, &mut sink);
        let stats = report.autoscale.expect("enabled run reports stats");
        assert!(stats.brownout_enters > 0, "{stats:?}");
        assert!(stats.brownout_exits > 0, "{stats:?}");
        assert!(stats.brownout_time_s > 0.0, "{stats:?}");
        assert!(stats.max_brownout_rung >= 1, "{stats:?}");
        assert!(stats.degraded_selections > 0, "{stats:?}");
        let events = sink.into_events();
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::BrownoutEnter { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::BrownoutExit { .. })));
        // Degradation actually bit: some queries were served by a model
        // other than the slow one the scheme kept asking for.
        let slow_name = &profile().models[slow].name;
        let degraded_served: u64 = report
            .per_model
            .iter()
            .filter(|(name, _)| name != slow_name)
            .map(|&(_, count)| count)
            .sum();
        assert!(degraded_served > 0, "{:?}", report.per_model);
    }

    #[test]
    fn autoscaled_runs_are_deterministic_under_faults() {
        // The full stack at once — elasticity, brownout, crash faults,
        // stochastic latency — must still be byte-reproducible.
        let trace = Trace::from_interval_qps(&[250.0, 40.0, 250.0], 3.0, TraceKind::Custom);
        let mut policy = AutoscalePolicy::elastic(1, 6, 50.0);
        policy.warmup_s = 0.5;
        let plan = FaultPlan::none().crash(0, 2.0).recover(0, 4.0);
        let config = SimulationConfig::new(2, 0.15)
            .stochastic()
            .seeded(19)
            .with_autoscale(policy);
        let sim = Simulation::new(profile(), config).unwrap();
        let run = || {
            let mut scheme = GreedyFastestRr {
                model: profile().fastest_model(),
            };
            let mut monitor = LoadMonitor::new();
            let mut sink = ramsis_telemetry::VecSink::new();
            let report = sim
                .run_faulted_traced(&trace, &plan, &mut scheme, &mut monitor, &mut sink)
                .unwrap();
            (report, sink.into_events())
        };
        let (r1, e1) = run();
        let (r2, e2) = run();
        assert_eq!(r1, r2);
        assert_eq!(e1, e2);
        assert_eq!(
            serde_json::to_string(&r1).unwrap(),
            serde_json::to_string(&r2).unwrap()
        );
    }

    #[test]
    fn autoscale_rejects_invalid_shapes() {
        // Initial pool larger than the ceiling.
        let config =
            SimulationConfig::new(8, 0.15).with_autoscale(AutoscalePolicy::elastic(1, 4, 50.0));
        assert!(config.validate().is_err());
        // Heterogeneous clusters cannot autoscale (membership changes
        // would re-index per-worker profiles).
        let profiles = vec![profile(), profile()];
        assert!(Simulation::heterogeneous(
            profiles,
            SimulationConfig::new(2, 0.15).with_autoscale(AutoscalePolicy::elastic(1, 4, 50.0)),
        )
        .is_err());
    }

    /// A DegradingRamsis over `workers` with per-worker-count sets down
    /// to one worker — the pool-extreme test harness of satellite 3.
    fn degrading_scheme(workers: usize, loads: &[f64]) -> crate::scheme::DegradingRamsis {
        let config = PolicyConfig::builder(Duration::from_millis(150))
            .workers(workers)
            .discretization(Discretization::fixed_length(8))
            .build();
        let sets = ramsis_core::DegradablePolicySet::generate_poisson(profile(), loads, &config, 1)
            .unwrap();
        let fallback = ramsis_core::FallbackPolicy::fastest(profile()).unwrap();
        crate::scheme::DegradingRamsis::new(sets, fallback)
    }

    #[test]
    fn degradable_scheme_survives_scale_in_to_one_worker() {
        // Light load against four initial workers with a floor of one:
        // the pool must shrink all the way down and the pre-solved
        // one-worker policy must keep serving everything.
        let trace = Trace::constant(25.0, 12.0);
        let policy = AutoscalePolicy::elastic(1, 4, 60.0);
        let sim = Simulation::new(
            profile(),
            SimulationConfig::new(4, 0.15)
                .seeded(6)
                .with_autoscale(policy),
        )
        .unwrap();
        let mut scheme = degrading_scheme(4, &[25.0, 100.0]);
        let mut monitor = LoadMonitor::new();
        let report = sim.run(&trace, &mut scheme, &mut monitor);
        let stats = report.autoscale.expect("enabled run reports stats");
        assert_eq!(stats.min_live_workers, 1, "{stats:?}");
        assert!(stats.drains_completed >= 3, "{stats:?}");
        assert_eq!(report.served, report.total_arrivals);
        assert_eq!(report.dropped, 0);
    }

    #[test]
    fn crash_of_last_live_worker_while_warming_recovers() {
        // One live worker, a surge forces a scale-up, and the lone live
        // worker crashes while the new one is still warming: arrivals
        // must limbo (not vanish) and be served once warm-up completes.
        let trace = Trace::constant(120.0, 6.0);
        let mut policy = AutoscalePolicy::elastic(1, 4, 50.0);
        policy.warmup_s = 1.0;
        let plan = FaultPlan::none().crash(0, 1.0).recover(0, 4.0);
        let sim = Simulation::new(
            profile(),
            SimulationConfig::new(1, 0.15)
                .seeded(7)
                .with_autoscale(policy),
        )
        .unwrap();
        let mut scheme = degrading_scheme(4, &[60.0, 120.0]);
        let mut monitor = LoadMonitor::new();
        let mut sink = ramsis_telemetry::VecSink::new();
        let report = sim
            .run_faulted_traced(&trace, &plan, &mut scheme, &mut monitor, &mut sink)
            .unwrap();
        let stats = report.autoscale.expect("enabled run reports stats");
        assert!(stats.warmups_completed >= 1, "{stats:?}");
        assert_eq!(report.served, report.total_arrivals);
        assert_eq!(report.dropped, 0);
        let c = ramsis_telemetry::conservation(&sink.into_events());
        assert!(c.holds(), "{c:?}");
    }

    #[test]
    fn membership_changes_mid_drain_conserve_every_query() {
        // Load whipsaws so drains overlap fresh scale-ups (membership
        // changes arriving while workers are still draining). No query
        // may be lost or double-served through the churn.
        let trace = Trace::from_interval_qps(&[300.0, 10.0, 300.0, 10.0], 3.0, TraceKind::Custom);
        let mut policy = AutoscalePolicy::elastic(1, 6, 50.0);
        policy.warmup_s = 0.5;
        policy.down_confirm = 3;
        let sim = Simulation::new(
            profile(),
            SimulationConfig::new(2, 0.15)
                .seeded(8)
                .with_autoscale(policy),
        )
        .unwrap();
        let mut scheme = degrading_scheme(6, &[50.0, 150.0, 300.0]);
        let mut monitor = LoadMonitor::new();
        let mut sink = ramsis_telemetry::VecSink::new();
        let report = sim.run_traced(&trace, &mut scheme, &mut monitor, &mut sink);
        let stats = report.autoscale.expect("enabled run reports stats");
        assert!(stats.scale_ups > 0 && stats.scale_downs > 0, "{stats:?}");
        let events = sink.into_events();
        let c = ramsis_telemetry::conservation(&events);
        assert!(c.holds(), "{c:?}");
        assert_eq!(c.anomalies, 0);
        assert_eq!(report.served + report.dropped, report.total_arrivals);
    }

    use crate::checkpoint::{CheckpointPolicy, EngineSnapshot, MemoryRecorder};

    /// A faulted, resilience-on, per-worker-routed run: the busiest
    /// checkpoint surface (fault windows, timeouts, retries, hedges,
    /// limbo) short of autoscaling.
    fn durable_fixture() -> (Trace, FaultPlan, SimulationConfig) {
        let trace = Trace::constant(200.0, 6.0);
        let plan = FaultPlan::none()
            .crash(0, 1.0)
            .recover(0, 3.5)
            .slowdown(1, 2.0, 5.0, 3.0)
            .surge(2.5, 4.5, 1.5);
        let config = SimulationConfig::new(4, 0.15)
            .seeded(21)
            .with_resilience(ResiliencePolicy::all_on())
            .with_checkpoints(CheckpointPolicy::every_events(400));
        (trace, plan, config)
    }

    #[test]
    fn checkpointing_does_not_perturb_the_run() {
        let (trace, plan, config) = durable_fixture();
        let sim = Simulation::new(profile(), config).unwrap();
        let scheme = || GreedyFastestRr {
            model: profile().fastest_model(),
        };
        let plain = sim
            .run_faulted(&trace, &plan, &mut scheme(), &mut LoadMonitor::new())
            .unwrap();
        let mut rec = MemoryRecorder::new();
        let durable = sim
            .run_durable(
                &trace,
                &plan,
                &mut scheme(),
                &mut LoadMonitor::new(),
                &mut NullSink,
                &mut rec,
            )
            .unwrap()
            .expect("no stop requested");
        assert!(rec.snapshots.len() >= 3, "took {}", rec.snapshots.len());
        assert_eq!(plain, durable);
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&durable).unwrap()
        );
    }

    #[test]
    fn resume_from_every_checkpoint_is_byte_identical() {
        let (trace, plan, config) = durable_fixture();
        let sim = Simulation::new(profile(), config).unwrap();
        let scheme = || GreedyFastestRr {
            model: profile().fastest_model(),
        };
        let mut rec = MemoryRecorder::new();
        let mut full_sink = ramsis_telemetry::VecSink::new();
        let full_report = sim
            .run_durable(
                &trace,
                &plan,
                &mut scheme(),
                &mut LoadMonitor::new(),
                &mut full_sink,
                &mut rec,
            )
            .unwrap()
            .expect("no stop requested");
        let full_events = full_sink.into_events();
        let full_json = serde_json::to_string(&full_report).unwrap();
        assert!(!rec.snapshots.is_empty());
        for snap in &rec.snapshots {
            // The snapshot itself round-trips to identical bytes.
            let json = snap.to_json();
            let back = EngineSnapshot::from_json(&json).unwrap();
            assert_eq!(json, back.to_json());
            // Resuming continues to a byte-identical report and
            // telemetry suffix.
            let mut sink = ramsis_telemetry::VecSink::new();
            let resumed = sim
                .resume(
                    &trace,
                    &plan,
                    &mut scheme(),
                    &mut LoadMonitor::new(),
                    &mut sink,
                    &back,
                )
                .unwrap();
            assert_eq!(serde_json::to_string(&resumed).unwrap(), full_json);
            let suffix = &full_events[snap.meta.events_emitted as usize..];
            let resumed_events = sink.into_events();
            assert_eq!(resumed_events.len(), suffix.len());
            assert_eq!(resumed_events.as_slice(), suffix);
        }
    }

    #[test]
    fn kill_then_resume_from_latest_checkpoint_completes() {
        let (trace, plan, config) = durable_fixture();
        let sim = Simulation::new(profile(), config).unwrap();
        let scheme = || GreedyFastestRr {
            model: profile().fastest_model(),
        };
        let full = sim
            .run_faulted(&trace, &plan, &mut scheme(), &mut LoadMonitor::new())
            .unwrap();
        // Kill right after the second checkpoint, then resume from it
        // with checkpointing still on (the multi-kill chain shape).
        let mut rec = MemoryRecorder::stop_after(2);
        let killed = sim
            .run_durable(
                &trace,
                &plan,
                &mut scheme(),
                &mut LoadMonitor::new(),
                &mut NullSink,
                &mut rec,
            )
            .unwrap();
        assert!(killed.is_none(), "recorder stop must abort the run");
        assert_eq!(rec.snapshots.len(), 2);
        let latest = rec.snapshots.last().unwrap().clone();
        let mut rec2 = MemoryRecorder::new();
        let resumed = sim
            .resume_durable(
                &trace,
                &plan,
                &mut scheme(),
                &mut LoadMonitor::new(),
                &mut NullSink,
                &latest,
                &mut rec2,
            )
            .unwrap()
            .expect("no stop requested on the resumed leg");
        assert_eq!(resumed, full);
        // The resumed leg keeps checkpointing past the kill point.
        assert!(!rec2.snapshots.is_empty());
        assert!(rec2
            .snapshots
            .iter()
            .all(|s| s.meta.events_done > latest.meta.events_done));
    }

    #[test]
    fn resume_with_autoscale_and_stateful_scheme_is_identical() {
        // Elastic pool + brownout ladder + DegradingRamsis (a scheme
        // with real checkpoint state): the full restore surface.
        let trace = Trace::from_interval_qps(&[300.0, 10.0, 300.0, 10.0], 3.0, TraceKind::Custom);
        let mut policy = AutoscalePolicy::elastic(1, 6, 50.0);
        policy.warmup_s = 0.5;
        policy.down_confirm = 3;
        let sim = Simulation::new(
            profile(),
            SimulationConfig::new(2, 0.15)
                .seeded(8)
                .with_autoscale(policy)
                .with_checkpoints(CheckpointPolicy::every_events(2_000)),
        )
        .unwrap();
        let mut rec = MemoryRecorder::new();
        let mut full_sink = ramsis_telemetry::VecSink::new();
        let full_report = sim
            .run_durable(
                &trace,
                &FaultPlan::none(),
                &mut degrading_scheme(6, &[50.0, 150.0, 300.0]),
                &mut LoadMonitor::new(),
                &mut full_sink,
                &mut rec,
            )
            .unwrap()
            .expect("no stop requested");
        let full_events = full_sink.into_events();
        assert!(!rec.snapshots.is_empty());
        for snap in &rec.snapshots {
            assert!(snap.autoscale.is_some(), "autoscale state must travel");
            let mut sink = ramsis_telemetry::VecSink::new();
            let resumed = sim
                .resume(
                    &trace,
                    &FaultPlan::none(),
                    &mut degrading_scheme(6, &[50.0, 150.0, 300.0]),
                    &mut LoadMonitor::new(),
                    &mut sink,
                    snap,
                )
                .unwrap();
            assert_eq!(resumed, full_report);
            assert_eq!(
                sink.into_events().as_slice(),
                &full_events[snap.meta.events_emitted as usize..]
            );
        }
    }

    #[test]
    fn checkpointing_by_sim_time_fires_on_schedule() {
        let trace = Trace::constant(150.0, 4.0);
        let sim = Simulation::new(
            profile(),
            SimulationConfig::new(2, 0.15)
                .seeded(3)
                .with_checkpoints(CheckpointPolicy::every_sim_s(1.0)),
        )
        .unwrap();
        let mut rec = MemoryRecorder::new();
        let report = sim
            .run_durable(
                &trace,
                &FaultPlan::none(),
                &mut GreedyFastest {
                    model: profile().fastest_model(),
                },
                &mut LoadMonitor::new(),
                &mut NullSink,
                &mut rec,
            )
            .unwrap()
            .expect("no stop requested");
        assert!(report.served > 0);
        // ~4 simulated seconds at a 1 s cadence: one snapshot per
        // crossed boundary, each strictly past its multiple.
        assert!(
            (3..=5).contains(&rec.snapshots.len()),
            "took {}",
            rec.snapshots.len()
        );
        for (i, s) in rec.snapshots.iter().enumerate() {
            assert!(s.meta.sim_time_ns >= (i as u64 + 1) * 1_000_000_000);
        }
    }

    #[test]
    fn resume_refuses_a_mismatched_run() {
        let (trace, plan, config) = durable_fixture();
        let sim = Simulation::new(profile(), config).unwrap();
        let scheme = || GreedyFastestRr {
            model: profile().fastest_model(),
        };
        let mut rec = MemoryRecorder::stop_after(1);
        sim.run_durable(
            &trace,
            &plan,
            &mut scheme(),
            &mut LoadMonitor::new(),
            &mut NullSink,
            &mut rec,
        )
        .unwrap();
        let snap = rec.snapshots.pop().unwrap();

        // Wrong seeds: different arrival stream.
        let other = Simulation::new(profile(), config.seeded(99)).unwrap();
        let err = other
            .resume(
                &trace,
                &plan,
                &mut scheme(),
                &mut LoadMonitor::new(),
                &mut NullSink,
                &snap,
            )
            .unwrap_err();
        assert!(err.to_string().contains("cannot resume"), "{err}");

        // Wrong scheme.
        let err = sim
            .resume(
                &trace,
                &plan,
                &mut GreedyFastest {
                    model: profile().fastest_model(),
                },
                &mut LoadMonitor::new(),
                &mut NullSink,
                &snap,
            )
            .unwrap_err();
        assert!(err.to_string().contains("scheme"), "{err}");

        // Wrong trace: arrival fingerprint mismatch.
        let err = sim
            .resume(
                &Trace::constant(210.0, 6.0),
                &plan,
                &mut scheme(),
                &mut LoadMonitor::new(),
                &mut NullSink,
                &snap,
            )
            .unwrap_err();
        assert!(err.to_string().contains("arrival stream"), "{err}");
    }

    #[test]
    fn durable_run_requires_enabled_policy() {
        let trace = Trace::constant(100.0, 1.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(2, 0.15)).unwrap();
        let err = sim
            .run_durable(
                &trace,
                &FaultPlan::none(),
                &mut GreedyFastest {
                    model: profile().fastest_model(),
                },
                &mut LoadMonitor::new(),
                &mut NullSink,
                &mut MemoryRecorder::new(),
            )
            .unwrap_err();
        assert!(err.to_string().contains("disabled"), "{err}");
    }

    #[test]
    fn durable_run_refuses_a_checkpoint_blind_scheme() {
        // OnDemandRamsis declines checkpoint_state; a durable run must
        // refuse it up front rather than snapshot a lie.
        struct Blind;
        impl ServingScheme for Blind {
            fn name(&self) -> &str {
                "blind"
            }
            fn routing(&self) -> Routing {
                Routing::Central
            }
            fn select(&mut self, ctx: &SelectionContext) -> Selection {
                Selection::Serve {
                    model: 0,
                    batch: ctx.queued as u32,
                }
            }
        }
        let trace = Trace::constant(100.0, 1.0);
        let sim = Simulation::new(
            profile(),
            SimulationConfig::new(2, 0.15).with_checkpoints(CheckpointPolicy::every_events(100)),
        )
        .unwrap();
        let err = sim
            .run_durable(
                &trace,
                &FaultPlan::none(),
                &mut Blind,
                &mut LoadMonitor::new(),
                &mut NullSink,
                &mut MemoryRecorder::new(),
            )
            .unwrap_err();
        assert!(err.to_string().contains("checkpoint"), "{err}");
    }
}
