//! The discrete-event simulation engine.
//!
//! Events are processed in `(time, sequence)` order from a binary heap,
//! so runs are exactly reproducible. Three event kinds exist: a query
//! arrival at the central queue, a worker completing a batch, and an
//! injected fault from a [`FaultPlan`] (crash, recovery, slowdown).
//! Workers never idle while their visible queue is non-empty (unless
//! the scheme explicitly declines to serve), and routing skips dead
//! workers.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use ramsis_profiles::WorkerProfile;
use ramsis_telemetry::{Action, Event, NullSink, QueueId, TelemetrySink};
use ramsis_workload::{sample_poisson_arrivals, LoadEstimator, Trace};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::faults::{CrashPolicy, FaultEvent, FaultPlan};
use crate::latency::{LatencyMode, LatencySampler};
use crate::metrics::{MetricsCollector, SimulationReport};
use crate::query::{nanos_from_secs, secs_from_nanos, Nanos, Query};
use crate::scheme::{Routing, Selection, SelectionContext, ServingScheme};
use crate::SimError;

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationConfig {
    /// Number of workers.
    pub workers: usize,
    /// Response-latency SLO in seconds (stamps query deadlines).
    pub slo_s: f64,
    /// Service-time realization mode.
    pub latency: LatencyMode,
    /// Seed for arrival-time sampling.
    pub arrival_seed: u64,
    /// Seed for stochastic service times.
    pub latency_seed: u64,
    /// Collect a per-window timeline in the report (window length in
    /// seconds); `None` disables it.
    pub timeline_window_s: Option<f64>,
}

impl SimulationConfig {
    /// A config with the given worker count and SLO, deterministic
    /// latency, and fixed seeds.
    pub fn new(workers: usize, slo_s: f64) -> Self {
        Self {
            workers,
            slo_s,
            latency: LatencyMode::DeterministicP95,
            arrival_seed: 1,
            latency_seed: 2,
            timeline_window_s: None,
        }
    }

    /// Enables per-window timeline collection.
    pub fn with_timeline(mut self, window_s: f64) -> Self {
        self.timeline_window_s = Some(window_s);
        self
    }

    /// Switches to stochastic ("prototype implementation") latency.
    pub fn stochastic(mut self) -> Self {
        self.latency = LatencyMode::Stochastic;
        self
    }

    /// Sets both seeds from one value (different streams derived).
    pub fn seeded(mut self, seed: u64) -> Self {
        self.arrival_seed = seed;
        self.latency_seed = seed ^ 0x9E37_79B9_7F4A_7C15;
        self
    }

    /// Checks the config is runnable.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when there are no workers,
    /// the SLO is not strictly positive and finite, or the timeline
    /// window is degenerate.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.workers == 0 {
            return Err(SimError::InvalidConfig(
                "need at least one worker".to_string(),
            ));
        }
        if !self.slo_s.is_finite() || self.slo_s <= 0.0 {
            return Err(SimError::InvalidConfig(format!(
                "SLO must be positive, got {}",
                self.slo_s
            )));
        }
        if let Some(w) = self.timeline_window_s {
            if !w.is_finite() || w <= 0.0 {
                return Err(SimError::InvalidConfig(format!(
                    "timeline window must be positive, got {w}"
                )));
            }
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// Index into the pre-sampled arrival array.
    Arrival(u64),
    /// Worker finished its in-flight batch; the epoch invalidates
    /// completions of batches displaced by a crash.
    WorkerDone(usize, u64),
    /// Index into the expanded fault-action array.
    Fault(u32),
}

/// A timed, engine-level fault action expanded from a [`FaultPlan`]
/// (slowdowns split into start/end edges; surges are applied to the
/// trace before sampling, not here).
#[derive(Debug, Clone, Copy)]
enum FaultAction {
    Crash(usize),
    Recover(usize),
    SlowStart(usize, f64),
    SlowEnd(usize),
}

fn expand_fault_actions(plan: &FaultPlan) -> Vec<(Nanos, FaultAction)> {
    let mut actions: Vec<(Nanos, FaultAction)> = Vec::new();
    for event in &plan.events {
        match *event {
            FaultEvent::WorkerCrash { worker, at_s } => {
                actions.push((nanos_from_secs(at_s), FaultAction::Crash(worker)));
            }
            FaultEvent::WorkerRecover { worker, at_s } => {
                actions.push((nanos_from_secs(at_s), FaultAction::Recover(worker)));
            }
            FaultEvent::WorkerSlowdown {
                worker,
                from_s,
                to_s,
                factor,
            } => {
                actions.push((
                    nanos_from_secs(from_s),
                    FaultAction::SlowStart(worker, factor),
                ));
                actions.push((nanos_from_secs(to_s), FaultAction::SlowEnd(worker)));
            }
            FaultEvent::ArrivalSurge { .. } => {}
        }
    }
    // Stable sort: same-time actions keep their plan order, so runs are
    // deterministic for any plan.
    actions.sort_by_key(|&(t, _)| t);
    actions
}

/// The engine's handle on a run's telemetry sink. `enabled` is read
/// once at run start; with the default [`NullSink`] every emission site
/// reduces to one predictable branch and no event is ever constructed.
struct Tracer<'s> {
    sink: &'s mut dyn TelemetrySink,
    on: bool,
    /// Scratch for draining scheme-buffered audit events.
    buf: Vec<Event>,
}

impl<'s> Tracer<'s> {
    fn new(sink: &'s mut dyn TelemetrySink) -> Self {
        let on = sink.enabled();
        Self {
            sink,
            on,
            buf: Vec::new(),
        }
    }

    /// Records the event `f` builds, constructing it only when tracing.
    #[inline]
    fn emit(&mut self, f: impl FnOnce() -> Event) {
        if self.on {
            self.sink.record(&f());
        }
    }

    /// Moves the scheme's buffered audit events into the sink, keeping
    /// the stream in simulation-time order.
    fn drain_scheme(&mut self, scheme: &mut dyn ServingScheme) {
        if !self.on {
            return;
        }
        scheme.drain_audit(&mut self.buf);
        for e in self.buf.drain(..) {
            self.sink.record(&e);
        }
    }
}

/// Per-worker runtime state shared by the event handlers.
struct Cluster {
    busy: Vec<bool>,
    alive: Vec<bool>,
    /// Service-time multiplier applied at dispatch (1.0 = nominal).
    slow: Vec<f64>,
    /// Bumped on crash; stale `WorkerDone` events are discarded.
    epochs: Vec<u64>,
    /// In-flight batch per worker: (model, queries, started).
    in_flight: Vec<Option<(usize, Vec<Query>, Nanos)>>,
    /// Crash time of each currently-dead worker.
    down_since: Vec<Option<Nanos>>,
    /// Live worker count (invariant: `alive.iter().filter(|a| **a).count()`).
    live: usize,
}

impl Cluster {
    fn new(workers: usize) -> Self {
        Self {
            busy: vec![false; workers],
            alive: vec![true; workers],
            slow: vec![1.0; workers],
            epochs: vec![0; workers],
            in_flight: vec![None; workers],
            down_since: vec![None; workers],
            live: workers,
        }
    }
}

/// A simulation run binding worker profiles, a trace, and a scheme.
pub struct Simulation<'a> {
    /// Per-worker profiles; length 1 means a homogeneous cluster.
    profiles: Vec<&'a WorkerProfile>,
    config: SimulationConfig,
}

impl<'a> Simulation<'a> {
    /// Creates a run harness over a homogeneous cluster (every worker
    /// runs `profile`'s hardware and models).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the config fails
    /// [`SimulationConfig::validate`].
    pub fn new(profile: &'a WorkerProfile, config: SimulationConfig) -> Result<Self, SimError> {
        config.validate()?;
        Ok(Self {
            profiles: vec![profile],
            config,
        })
    }

    /// Creates a run harness over a *heterogeneous* cluster: one profile
    /// per worker (§7: "Worker homogeneity is not a fundamental
    /// requirement for RAMSIS since policies are generated per worker").
    /// All profiles must share the SLO class of the config.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the config is degenerate,
    /// `profiles.len() != config.workers`, or a profile's SLO disagrees
    /// with the config's.
    pub fn heterogeneous(
        profiles: Vec<&'a WorkerProfile>,
        config: SimulationConfig,
    ) -> Result<Self, SimError> {
        config.validate()?;
        if profiles.len() != config.workers {
            return Err(SimError::InvalidConfig(format!(
                "one profile per worker ({} vs {})",
                profiles.len(),
                config.workers
            )));
        }
        for (w, p) in profiles.iter().enumerate() {
            if (p.slo() - config.slo_s).abs() >= 1e-9 {
                return Err(SimError::InvalidConfig(format!(
                    "worker {w}'s profile was built for SLO {}s, config says {}s",
                    p.slo(),
                    config.slo_s
                )));
            }
        }
        Ok(Self { profiles, config })
    }

    /// The profile worker `w` runs.
    fn profile_of(&self, w: usize) -> &'a WorkerProfile {
        if self.profiles.len() == 1 {
            self.profiles[0]
        } else {
            self.profiles[w]
        }
    }

    /// Runs `scheme` over Poisson arrivals sampled from `trace`,
    /// reporting per-query outcomes. `estimator` is the load monitor
    /// shared by all evaluated systems (§6).
    pub fn run(
        &self,
        trace: &Trace,
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
    ) -> SimulationReport {
        self.run_faulted(trace, &FaultPlan::none(), scheme, estimator)
            .expect("empty fault plan always validates")
    }

    /// Runs `scheme` over Poisson arrivals sampled from `trace` with
    /// `plan`'s faults injected. Arrival surges scale the trace before
    /// sampling; crashes, recoveries, and slowdowns play back through
    /// the event heap. Same seeds + same plan give identical reports.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the plan fails
    /// [`FaultPlan::validate`] for this cluster size.
    pub fn run_faulted(
        &self,
        trace: &Trace,
        plan: &FaultPlan,
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
    ) -> Result<SimulationReport, SimError> {
        self.run_faulted_traced(trace, plan, scheme, estimator, &mut NullSink)
    }

    /// [`Self::run`] with every lifecycle and audit event emitted into
    /// `sink`. Same seeds give a byte-identical event stream.
    pub fn run_traced(
        &self,
        trace: &Trace,
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
        sink: &mut dyn TelemetrySink,
    ) -> SimulationReport {
        self.run_faulted_traced(trace, &FaultPlan::none(), scheme, estimator, sink)
            .expect("empty fault plan always validates")
    }

    /// [`Self::run_faulted`] with telemetry emitted into `sink`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the plan fails
    /// [`FaultPlan::validate`] for this cluster size.
    pub fn run_faulted_traced(
        &self,
        trace: &Trace,
        plan: &FaultPlan,
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
        sink: &mut dyn TelemetrySink,
    ) -> Result<SimulationReport, SimError> {
        plan.validate(self.config.workers)?;
        let mut surged = trace.clone();
        for (from_s, to_s, factor) in plan.surges() {
            surged = surged.scaled_between(from_s, to_s, factor);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.arrival_seed);
        let arrivals = sample_poisson_arrivals(&surged, &mut rng);
        self.run_arrivals_faulted_traced(&arrivals, plan, scheme, estimator, sink)
    }

    /// Runs `scheme` over explicit arrival times (seconds, sorted).
    pub fn run_arrivals(
        &self,
        arrivals: &[f64],
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
    ) -> SimulationReport {
        self.run_arrivals_faulted(arrivals, &FaultPlan::none(), scheme, estimator)
            .expect("empty fault plan always validates")
    }

    /// [`Self::run_arrivals`] with telemetry emitted into `sink`.
    pub fn run_arrivals_traced(
        &self,
        arrivals: &[f64],
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
        sink: &mut dyn TelemetrySink,
    ) -> SimulationReport {
        self.run_arrivals_faulted_traced(arrivals, &FaultPlan::none(), scheme, estimator, sink)
            .expect("empty fault plan always validates")
    }

    /// Runs `scheme` over explicit arrival times with `plan`'s crash /
    /// recovery / slowdown faults injected. Arrival surges in the plan
    /// are ignored here: explicit arrivals are replayed exactly as
    /// given (use [`Self::run_faulted`] for surge scaling).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the plan fails
    /// [`FaultPlan::validate`] for this cluster size.
    pub fn run_arrivals_faulted(
        &self,
        arrivals: &[f64],
        plan: &FaultPlan,
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
    ) -> Result<SimulationReport, SimError> {
        self.run_arrivals_faulted_traced(arrivals, plan, scheme, estimator, &mut NullSink)
    }

    /// [`Self::run_arrivals_faulted`] with telemetry emitted into
    /// `sink` — the fully general entry point every other run method
    /// funnels into.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the plan fails
    /// [`FaultPlan::validate`] for this cluster size.
    pub fn run_arrivals_faulted_traced(
        &self,
        arrivals: &[f64],
        plan: &FaultPlan,
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
        sink: &mut dyn TelemetrySink,
    ) -> Result<SimulationReport, SimError> {
        plan.validate(self.config.workers)?;
        let mut tracer = Tracer::new(sink);
        scheme.set_audit(tracer.on);
        let slo = nanos_from_secs(self.config.slo_s);
        let n_workers = self.config.workers;
        let routing = scheme.routing();

        let mut sampler = LatencySampler::new(self.config.latency, self.config.latency_seed);
        let mut metrics = match self.config.timeline_window_s {
            Some(w) => MetricsCollector::new().with_timeline(w),
            None => MetricsCollector::new(),
        };
        if !plan.is_empty() {
            metrics = metrics.with_fault_windows(plan.fault_windows());
        }

        // Per-worker queues (per-worker routing) or one central queue.
        let mut worker_queues: Vec<VecDeque<Query>> = vec![VecDeque::new(); n_workers];
        let mut central_queue: VecDeque<Query> = VecDeque::new();
        let mut cluster = Cluster::new(n_workers);
        // Queries with no live worker to go to (per-worker routing under
        // a full outage); drained to the first worker that recovers.
        let mut limbo: VecDeque<Query> = VecDeque::new();
        let mut rr_next = 0usize;

        let actions = expand_fault_actions(plan);

        let mut heap: BinaryHeap<Reverse<(Nanos, u64, EventKind)>> = BinaryHeap::new();
        let mut seq = 0u64;
        for (i, &(t, _)) in actions.iter().enumerate() {
            heap.push(Reverse((t, seq, EventKind::Fault(i as u32))));
            seq += 1;
        }
        if !arrivals.is_empty() {
            heap.push(Reverse((
                nanos_from_secs(arrivals[0]),
                seq,
                EventKind::Arrival(0),
            )));
            seq += 1;
        }

        let mut horizon: Nanos = 0;

        while let Some(Reverse((now, _, kind))) = heap.pop() {
            horizon = horizon.max(now);
            match kind {
                EventKind::Arrival(i) => {
                    let idx = i as usize;
                    let t = nanos_from_secs(arrivals[idx]);
                    let q = Query::new(i, t, slo);
                    tracer.emit(|| Event::Arrival {
                        at: now,
                        query: i,
                        deadline: q.deadline,
                    });
                    estimator.record_arrival(secs_from_nanos(t));
                    scheme.on_arrival(secs_from_nanos(t));
                    tracer.drain_scheme(scheme);
                    // Schedule the next arrival.
                    if idx + 1 < arrivals.len() {
                        heap.push(Reverse((
                            nanos_from_secs(arrivals[idx + 1]),
                            seq,
                            EventKind::Arrival(i + 1),
                        )));
                        seq += 1;
                    }
                    match routing {
                        Routing::PerWorkerRoundRobin => {
                            match Self::next_live_rr(&cluster.alive, &mut rr_next) {
                                Some(w) => {
                                    worker_queues[w].push_back(q);
                                    tracer.emit(|| Event::Enqueue {
                                        at: now,
                                        query: i,
                                        queue: QueueId::Worker(w as u32),
                                        depth: worker_queues[w].len() as u32,
                                    });
                                    if !cluster.busy[w] {
                                        self.dispatch(
                                            w,
                                            now,
                                            scheme,
                                            estimator,
                                            &mut worker_queues[w],
                                            &mut cluster,
                                            &mut sampler,
                                            &mut metrics,
                                            &mut heap,
                                            &mut seq,
                                            &mut tracer,
                                        );
                                    }
                                }
                                None => Self::strand(
                                    q,
                                    plan.crash_policy,
                                    &mut limbo,
                                    &mut metrics,
                                    &mut tracer,
                                    now,
                                ),
                            }
                        }
                        Routing::PerWorkerShortestQueue => {
                            let target = (0..n_workers)
                                .filter(|&w| cluster.alive[w])
                                .min_by_key(|&w| (worker_queues[w].len(), w));
                            match target {
                                Some(w) => {
                                    worker_queues[w].push_back(q);
                                    tracer.emit(|| Event::Enqueue {
                                        at: now,
                                        query: i,
                                        queue: QueueId::Worker(w as u32),
                                        depth: worker_queues[w].len() as u32,
                                    });
                                    if !cluster.busy[w] {
                                        self.dispatch(
                                            w,
                                            now,
                                            scheme,
                                            estimator,
                                            &mut worker_queues[w],
                                            &mut cluster,
                                            &mut sampler,
                                            &mut metrics,
                                            &mut heap,
                                            &mut seq,
                                            &mut tracer,
                                        );
                                    }
                                }
                                None => Self::strand(
                                    q,
                                    plan.crash_policy,
                                    &mut limbo,
                                    &mut metrics,
                                    &mut tracer,
                                    now,
                                ),
                            }
                        }
                        Routing::Central => {
                            central_queue.push_back(q);
                            tracer.emit(|| Event::Enqueue {
                                at: now,
                                query: i,
                                queue: QueueId::Central,
                                depth: central_queue.len() as u32,
                            });
                            if let Some(w) =
                                (0..n_workers).find(|&w| cluster.alive[w] && !cluster.busy[w])
                            {
                                self.dispatch(
                                    w,
                                    now,
                                    scheme,
                                    estimator,
                                    &mut central_queue,
                                    &mut cluster,
                                    &mut sampler,
                                    &mut metrics,
                                    &mut heap,
                                    &mut seq,
                                    &mut tracer,
                                );
                            }
                        }
                    }
                }
                EventKind::WorkerDone(w, epoch) => {
                    if epoch != cluster.epochs[w] {
                        // The batch was displaced by a crash after this
                        // completion was scheduled; already handled.
                        continue;
                    }
                    let (model, queries, started) = cluster.in_flight[w]
                        .take()
                        .expect("completion implies in-flight work");
                    metrics.note_regime(scheme.regime());
                    if let Some(d) = estimator.divergence(secs_from_nanos(now)) {
                        metrics.record_divergence(d);
                    }
                    metrics.record_batch(self.profile_of(w), model, &queries, started, now);
                    if tracer.on {
                        for q in &queries {
                            tracer.emit(|| Event::Complete {
                                at: now,
                                query: q.id,
                                worker: w as u32,
                                model: model as u32,
                                response_ns: now.saturating_sub(q.arrival),
                                violated: now > q.deadline,
                            });
                        }
                    }
                    cluster.busy[w] = false;
                    let queue = match routing {
                        Routing::Central => &mut central_queue,
                        _ => &mut worker_queues[w],
                    };
                    self.dispatch(
                        w,
                        now,
                        scheme,
                        estimator,
                        queue,
                        &mut cluster,
                        &mut sampler,
                        &mut metrics,
                        &mut heap,
                        &mut seq,
                        &mut tracer,
                    );
                }
                EventKind::Fault(idx) => {
                    match actions[idx as usize].1 {
                        FaultAction::Crash(w) => {
                            if !cluster.alive[w] {
                                continue; // double crash: no-op
                            }
                            cluster.alive[w] = false;
                            cluster.epochs[w] += 1;
                            cluster.down_since[w] = Some(now);
                            cluster.live -= 1;
                            let mut displaced: Vec<Query> = Vec::new();
                            if let Some((_, queries, _)) = cluster.in_flight[w].take() {
                                cluster.busy[w] = false;
                                displaced.extend(queries);
                            }
                            displaced.extend(worker_queues[w].drain(..));
                            scheme.on_membership_change(cluster.live);
                            match plan.crash_policy {
                                CrashPolicy::Drop => {
                                    if tracer.on {
                                        for q in &displaced {
                                            tracer.emit(|| Event::Drop {
                                                at: now,
                                                query: q.id,
                                            });
                                        }
                                    }
                                    metrics.record_crash_dropped(&displaced);
                                }
                                CrashPolicy::RequeueToSurvivors => {
                                    if tracer.on {
                                        for q in &displaced {
                                            tracer.emit(|| Event::CrashRequeue {
                                                at: now,
                                                query: q.id,
                                                from: w as u32,
                                            });
                                        }
                                    }
                                    metrics.record_crash_requeued(displaced.len() as u64);
                                    match routing {
                                        Routing::Central => {
                                            // Back to the head of the
                                            // central queue: they carry
                                            // the earliest deadlines.
                                            for q in displaced.into_iter().rev() {
                                                central_queue.push_front(q);
                                            }
                                        }
                                        _ if cluster.live == 0 => limbo.extend(displaced),
                                        _ => {
                                            for q in displaced {
                                                let t = Self::next_live_rr(
                                                    &cluster.alive,
                                                    &mut rr_next,
                                                )
                                                .expect("live > 0 checked");
                                                worker_queues[t].push_back(q);
                                            }
                                        }
                                    }
                                }
                            }
                            self.kick_idle_workers(
                                now,
                                routing,
                                scheme,
                                estimator,
                                &mut worker_queues,
                                &mut central_queue,
                                &mut cluster,
                                &mut sampler,
                                &mut metrics,
                                &mut heap,
                                &mut seq,
                                &mut tracer,
                            );
                        }
                        FaultAction::Recover(w) => {
                            if cluster.alive[w] {
                                continue; // recovery without crash: no-op
                            }
                            cluster.alive[w] = true;
                            cluster.live += 1;
                            if let Some(start) = cluster.down_since[w].take() {
                                metrics
                                    .record_downtime_s(secs_from_nanos(now.saturating_sub(start)));
                            }
                            scheme.on_membership_change(cluster.live);
                            // Stranded queries join the recovered
                            // worker's queue in arrival order.
                            if !limbo.is_empty() && routing != Routing::Central {
                                worker_queues[w].extend(limbo.drain(..));
                            }
                            self.kick_idle_workers(
                                now,
                                routing,
                                scheme,
                                estimator,
                                &mut worker_queues,
                                &mut central_queue,
                                &mut cluster,
                                &mut sampler,
                                &mut metrics,
                                &mut heap,
                                &mut seq,
                                &mut tracer,
                            );
                        }
                        FaultAction::SlowStart(w, factor) => cluster.slow[w] = factor,
                        FaultAction::SlowEnd(w) => cluster.slow[w] = 1.0,
                    }
                }
            }
        }

        // Workers still dead at the end of the run accrue downtime up
        // to the horizon.
        for w in 0..n_workers {
            if let Some(start) = cluster.down_since[w] {
                metrics.record_downtime_s(secs_from_nanos(horizon.saturating_sub(start)));
            }
        }

        tracer.sink.flush();

        let regime_breakdown = metrics.regime_breakdown();
        let mut report = metrics.report(
            scheme.name().to_owned(),
            arrivals.len() as u64,
            horizon,
            n_workers,
        );
        if let Some(mut stats) = scheme.adaptive_stats() {
            stats.per_regime = regime_breakdown;
            report.adaptive = Some(stats);
        }
        Ok(report)
    }

    /// The next live worker in round-robin order, advancing the cursor;
    /// `None` when every worker is dead.
    fn next_live_rr(alive: &[bool], rr_next: &mut usize) -> Option<usize> {
        let n = alive.len();
        for _ in 0..n {
            let w = *rr_next;
            *rr_next = (*rr_next + 1) % n;
            if alive[w] {
                return Some(w);
            }
        }
        None
    }

    /// Handles an arrival with no live worker to route to: stranded in
    /// limbo under `RequeueToSurvivors` (served after a recovery),
    /// dropped under `Drop`.
    fn strand(
        q: Query,
        policy: CrashPolicy,
        limbo: &mut VecDeque<Query>,
        metrics: &mut MetricsCollector,
        tracer: &mut Tracer<'_>,
        now: Nanos,
    ) {
        match policy {
            CrashPolicy::RequeueToSurvivors => {
                tracer.emit(|| Event::Enqueue {
                    at: now,
                    query: q.id,
                    queue: QueueId::Limbo,
                    depth: limbo.len() as u32 + 1,
                });
                limbo.push_back(q);
            }
            CrashPolicy::Drop => {
                tracer.emit(|| Event::Drop {
                    at: now,
                    query: q.id,
                });
                metrics.record_crash_dropped(&[q]);
            }
        }
    }

    /// After a membership change, gives every idle live worker with
    /// visible work a chance to start serving.
    #[allow(clippy::too_many_arguments)]
    fn kick_idle_workers(
        &self,
        now: Nanos,
        routing: Routing,
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
        worker_queues: &mut [VecDeque<Query>],
        central_queue: &mut VecDeque<Query>,
        cluster: &mut Cluster,
        sampler: &mut LatencySampler,
        metrics: &mut MetricsCollector,
        heap: &mut BinaryHeap<Reverse<(Nanos, u64, EventKind)>>,
        seq: &mut u64,
        tracer: &mut Tracer<'_>,
    ) {
        // Indexed: the queue borrow alternates between `worker_queues[w]`
        // and the central queue depending on routing.
        #[allow(clippy::needless_range_loop)]
        for w in 0..cluster.alive.len() {
            if !cluster.alive[w] || cluster.busy[w] {
                continue;
            }
            let queue = match routing {
                Routing::Central => &mut *central_queue,
                _ => &mut worker_queues[w],
            };
            if queue.is_empty() {
                continue;
            }
            self.dispatch(
                w, now, scheme, estimator, queue, cluster, sampler, metrics, heap, seq, tracer,
            );
        }
    }

    /// Asks the scheme for decisions for worker `w` until it starts
    /// service, idles, or drains its queue (consecutive `Drop`
    /// selections shed instantly and re-ask, §4.3.1's drop
    /// reformulation).
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &self,
        w: usize,
        now: Nanos,
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
        queue: &mut VecDeque<Query>,
        cluster: &mut Cluster,
        sampler: &mut LatencySampler,
        metrics: &mut MetricsCollector,
        heap: &mut BinaryHeap<Reverse<(Nanos, u64, EventKind)>>,
        seq: &mut u64,
        tracer: &mut Tracer<'_>,
    ) {
        debug_assert!(!cluster.busy[w], "dispatch on a busy worker");
        debug_assert!(cluster.alive[w], "dispatch on a dead worker");
        let profile = self.profile_of(w);
        while !queue.is_empty() {
            let earliest = queue.front().expect("queue checked non-empty");
            let ctx = SelectionContext {
                now_s: secs_from_nanos(now),
                load_qps: estimator.estimate(secs_from_nanos(now)),
                queued: queue.len(),
                earliest_slack_s: earliest.slack_at(now),
                worker: w,
                live_workers: cluster.live,
            };
            let selection = scheme.select(&ctx);
            tracer.drain_scheme(scheme);
            tracer.emit(|| Event::PolicyDecision {
                at: now,
                worker: w as u32,
                queued: ctx.queued as u32,
                slack_ns: (ctx.earliest_slack_s * 1e9).round() as i64,
                action: match selection {
                    Selection::Serve { model, batch } => Action::Serve {
                        model: model as u32,
                        batch,
                    },
                    Selection::Drop { count } => Action::Drop { count },
                    Selection::Idle => Action::Idle,
                },
            });
            match selection {
                Selection::Idle => return,
                Selection::Drop { count } => {
                    assert!(
                        count >= 1 && count as usize <= queue.len(),
                        "scheme shed {count} from a queue of {}",
                        queue.len()
                    );
                    let shed: Vec<Query> = queue.drain(..count as usize).collect();
                    if tracer.on {
                        let cause = scheme.shed_cause();
                        for q in &shed {
                            tracer.emit(|| Event::Shed {
                                at: now,
                                query: q.id,
                                cause,
                            });
                        }
                    }
                    metrics.record_dropped(&shed);
                    // Shedding takes no time; ask again for the rest.
                }
                Selection::Serve { model, batch } => {
                    assert!(
                        batch >= 1 && batch as usize <= queue.len(),
                        "scheme chose batch {batch} from a queue of {}",
                        queue.len()
                    );
                    assert!(
                        model < profile.n_models(),
                        "scheme chose unknown model {model}"
                    );
                    tracer.emit(|| Event::Dispatch {
                        at: now,
                        worker: w as u32,
                        model: model as u32,
                        batch,
                        depth: queue.len() as u32,
                    });
                    let batch_queries: Vec<Query> = queue.drain(..batch as usize).collect();
                    let service = sampler.sample(profile, model, batch) * cluster.slow[w];
                    cluster.busy[w] = true;
                    cluster.in_flight[w] = Some((model, batch_queries, now));
                    heap.push(Reverse((
                        now + nanos_from_secs(service),
                        *seq,
                        EventKind::WorkerDone(w, cluster.epochs[w]),
                    )));
                    *seq += 1;
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::RamsisScheme;
    use ramsis_core::{Discretization, PolicyConfig, PolicySet};
    use ramsis_profiles::{ModelCatalog, ProfilerConfig};
    use ramsis_workload::{LoadMonitor, OracleMonitor, TraceKind};
    use std::time::Duration;

    fn profile() -> &'static WorkerProfile {
        use std::sync::OnceLock;
        static PROFILE: OnceLock<WorkerProfile> = OnceLock::new();
        PROFILE.get_or_init(|| {
            WorkerProfile::build(
                &ModelCatalog::torchvision_image(),
                Duration::from_millis(150),
                ProfilerConfig::default(),
            )
        })
    }

    fn ramsis_scheme(workers: usize, loads: &[f64]) -> RamsisScheme {
        let config = PolicyConfig::builder(Duration::from_millis(150))
            .workers(workers)
            .discretization(Discretization::fixed_length(10))
            .build();
        RamsisScheme::new(PolicySet::generate_poisson(profile(), loads, &config).unwrap())
    }

    /// A trivially simple central-queue scheme for engine tests: always
    /// the fastest model, always the full visible queue.
    struct GreedyFastest {
        model: usize,
    }

    impl ServingScheme for GreedyFastest {
        fn name(&self) -> &str {
            "greedy-fastest"
        }
        fn routing(&self) -> Routing {
            Routing::Central
        }
        fn select(&mut self, ctx: &SelectionContext) -> Selection {
            Selection::Serve {
                model: self.model,
                batch: ctx.queued as u32,
            }
        }
    }

    /// Like [`GreedyFastest`] but with per-worker round-robin routing.
    struct GreedyFastestRr {
        model: usize,
    }

    impl ServingScheme for GreedyFastestRr {
        fn name(&self) -> &str {
            "greedy-fastest-rr"
        }
        fn routing(&self) -> Routing {
            Routing::PerWorkerRoundRobin
        }
        fn select(&mut self, ctx: &SelectionContext) -> Selection {
            Selection::Serve {
                model: self.model,
                batch: ctx.queued as u32,
            }
        }
    }

    #[test]
    fn conservation_every_arrival_is_served_once() {
        let trace = Trace::constant(300.0, 5.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(4, 0.15)).unwrap();
        let mut scheme = GreedyFastest {
            model: profile().fastest_model(),
        };
        let mut monitor = LoadMonitor::new();
        let report = sim.run(&trace, &mut scheme, &mut monitor);
        assert!(report.total_arrivals > 1_000);
        assert_eq!(report.served, report.total_arrivals);
        let per_model_total: u64 = report.per_model.iter().map(|&(_, c)| c).sum();
        assert_eq!(per_model_total, report.served);
    }

    #[test]
    fn runs_are_deterministic() {
        let trace = Trace::constant(200.0, 3.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(4, 0.15).seeded(9)).unwrap();
        let mut m1 = LoadMonitor::new();
        let mut m2 = LoadMonitor::new();
        let r1 = sim.run(
            &trace,
            &mut GreedyFastest {
                model: profile().fastest_model(),
            },
            &mut m1,
        );
        let r2 = sim.run(
            &trace,
            &mut GreedyFastest {
                model: profile().fastest_model(),
            },
            &mut m2,
        );
        assert_eq!(r1, r2);
    }

    #[test]
    fn runs_are_deterministic_under_faults() {
        // Same seeds + same non-trivial fault plan must reproduce the
        // report byte-for-byte, including its serialized form.
        let trace = Trace::constant(200.0, 8.0);
        let plan = FaultPlan::none()
            .crash(0, 1.0)
            .recover(0, 4.0)
            .crash(2, 2.0)
            .recover(2, 6.0)
            .slowdown(1, 2.0, 5.0, 2.5)
            .surge(3.0, 6.0, 2.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(4, 0.15).seeded(9)).unwrap();
        let run = || {
            let mut scheme = GreedyFastestRr {
                model: profile().fastest_model(),
            };
            let mut monitor = LoadMonitor::new();
            sim.run_faulted(&trace, &plan, &mut scheme, &mut monitor)
                .unwrap()
        };
        let r1 = run();
        let r2 = run();
        assert_eq!(r1, r2);
        assert_eq!(
            serde_json::to_string(&r1).unwrap(),
            serde_json::to_string(&r2).unwrap()
        );
        // The plan actually bit: downtime accrued and work moved.
        assert!(r1.faults.downtime_s > 0.0);
        assert!(r1.faults.served_in_fault > 0);
    }

    #[test]
    fn empty_fault_plan_matches_fault_free_run() {
        let trace = Trace::constant(250.0, 4.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(4, 0.15).seeded(5)).unwrap();
        let mut m1 = LoadMonitor::new();
        let mut m2 = LoadMonitor::new();
        let baseline = sim.run(
            &trace,
            &mut GreedyFastest {
                model: profile().fastest_model(),
            },
            &mut m1,
        );
        let with_empty_plan = sim
            .run_faulted(
                &trace,
                &FaultPlan::none(),
                &mut GreedyFastest {
                    model: profile().fastest_model(),
                },
                &mut m2,
            )
            .unwrap();
        assert_eq!(baseline, with_empty_plan);
    }

    #[test]
    fn crash_requeue_preserves_conservation() {
        // One of four workers dies mid-run and recovers; with requeue
        // every arrival is still served exactly once.
        let trace = Trace::constant(200.0, 6.0);
        let plan = FaultPlan::none().crash(1, 1.5).recover(1, 4.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(4, 0.15).seeded(3)).unwrap();
        let mut scheme = GreedyFastestRr {
            model: profile().fastest_model(),
        };
        let mut monitor = LoadMonitor::new();
        let report = sim
            .run_faulted(&trace, &plan, &mut scheme, &mut monitor)
            .unwrap();
        assert_eq!(report.served, report.total_arrivals);
        assert_eq!(report.dropped, 0);
        assert!(report.faults.crash_requeued > 0);
        assert!((report.faults.downtime_s - 2.5).abs() < 0.01);
    }

    #[test]
    fn crash_drop_policy_loses_displaced_queries() {
        let trace = Trace::constant(200.0, 6.0);
        let plan = FaultPlan::none()
            .with_crash_policy(CrashPolicy::Drop)
            .crash(1, 1.5)
            .recover(1, 4.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(4, 0.15).seeded(3)).unwrap();
        let mut scheme = GreedyFastestRr {
            model: profile().fastest_model(),
        };
        let mut monitor = LoadMonitor::new();
        let report = sim
            .run_faulted(&trace, &plan, &mut scheme, &mut monitor)
            .unwrap();
        assert!(report.faults.crash_dropped > 0);
        assert_eq!(report.dropped, report.faults.crash_dropped);
        assert_eq!(report.served + report.dropped, report.total_arrivals);
    }

    #[test]
    fn slowdown_window_degrades_latency() {
        let trace = Trace::constant(150.0, 6.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(2, 0.15).seeded(8)).unwrap();
        let run = |plan: &FaultPlan| {
            let mut scheme = GreedyFastest {
                model: profile().fastest_model(),
            };
            let mut monitor = LoadMonitor::new();
            sim.run_faulted(&trace, plan, &mut scheme, &mut monitor)
                .unwrap()
        };
        let nominal = run(&FaultPlan::none());
        let slowed = run(&FaultPlan::none()
            .slowdown(0, 1.0, 5.0, 4.0)
            .slowdown(1, 1.0, 5.0, 4.0));
        assert!(
            slowed.mean_response_s > nominal.mean_response_s,
            "slowdown must hurt: {} vs {}",
            slowed.mean_response_s,
            nominal.mean_response_s
        );
    }

    #[test]
    fn surge_increases_offered_load() {
        let trace = Trace::constant(100.0, 10.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(4, 0.15).seeded(4)).unwrap();
        let run = |plan: &FaultPlan| {
            let mut scheme = GreedyFastest {
                model: profile().fastest_model(),
            };
            let mut monitor = LoadMonitor::new();
            sim.run_faulted(&trace, plan, &mut scheme, &mut monitor)
                .unwrap()
        };
        let nominal = run(&FaultPlan::none());
        let surged = run(&FaultPlan::none().surge(2.0, 8.0, 3.0));
        // 3x load over 6 of 10 seconds: expected arrivals go from
        // ~1,000 to ~2,200.
        assert!(
            surged.total_arrivals as f64 > nominal.total_arrivals as f64 * 1.8,
            "{} vs {}",
            surged.total_arrivals,
            nominal.total_arrivals
        );
    }

    #[test]
    fn full_outage_strands_then_recovers() {
        // Both workers die; with requeue the stranded queries are
        // served after recovery, conserving every arrival.
        let trace = Trace::constant(50.0, 4.0);
        let plan = FaultPlan::none()
            .crash(0, 1.0)
            .crash(1, 1.0)
            .recover(0, 2.0)
            .recover(1, 2.5);
        let sim = Simulation::new(profile(), SimulationConfig::new(2, 0.15).seeded(6)).unwrap();
        let mut scheme = GreedyFastestRr {
            model: profile().fastest_model(),
        };
        let mut monitor = LoadMonitor::new();
        let report = sim
            .run_faulted(&trace, &plan, &mut scheme, &mut monitor)
            .unwrap();
        assert_eq!(report.served, report.total_arrivals);
        assert!(report.faults.downtime_s > 2.0);
    }

    #[test]
    fn invalid_plan_is_rejected() {
        let trace = Trace::constant(50.0, 1.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(2, 0.15)).unwrap();
        let mut scheme = GreedyFastest { model: 0 };
        let mut monitor = LoadMonitor::new();
        let plan = FaultPlan::none().crash(7, 1.0);
        assert!(sim
            .run_faulted(&trace, &plan, &mut scheme, &mut monitor)
            .is_err());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(SimulationConfig::new(0, 0.15).validate().is_err());
        assert!(SimulationConfig::new(4, 0.0).validate().is_err());
        assert!(SimulationConfig::new(4, -1.0).validate().is_err());
        assert!(SimulationConfig::new(4, f64::NAN).validate().is_err());
        assert!(SimulationConfig::new(4, 0.15).validate().is_ok());
        assert!(Simulation::new(profile(), SimulationConfig::new(0, 0.15)).is_err());
        assert!(Simulation::new(profile(), SimulationConfig::new(4, -0.5)).is_err());
    }

    #[test]
    fn underload_has_no_violations_with_fast_model() {
        // 40 QPS across 4 workers, fastest model: utilization ~20%.
        let trace = Trace::constant(40.0, 10.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(4, 0.15)).unwrap();
        let mut scheme = GreedyFastest {
            model: profile().fastest_model(),
        };
        let mut monitor = LoadMonitor::new();
        let report = sim.run(&trace, &mut scheme, &mut monitor);
        assert_eq!(
            report.violations, 0,
            "violation_rate={}",
            report.violation_rate
        );
        assert!(report.mean_response_s < 0.15);
    }

    #[test]
    fn overload_with_slow_model_violates() {
        // The most accurate model cannot sustain 400 QPS on 4 workers.
        let trace = Trace::constant(400.0, 5.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(4, 0.15)).unwrap();
        let slow = *profile().pareto_models().last().unwrap();
        let mut scheme = GreedyFastest { model: slow };
        let mut monitor = LoadMonitor::new();
        let report = sim.run(&trace, &mut scheme, &mut monitor);
        assert!(
            report.violation_rate > 0.5,
            "violation_rate={}",
            report.violation_rate
        );
        // Response times blow far past the SLO under queue buildup.
        assert!(report.p99_response_s > 0.15);
    }

    #[test]
    fn response_time_at_least_service_time() {
        let trace = Trace::constant(100.0, 5.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(2, 0.15)).unwrap();
        let mut scheme = GreedyFastest {
            model: profile().fastest_model(),
        };
        let mut monitor = LoadMonitor::new();
        let report = sim.run(&trace, &mut scheme, &mut monitor);
        let batch1 = profile().latency(profile().fastest_model(), 1).unwrap();
        assert!(report.mean_response_s >= batch1 * 0.9);
    }

    #[test]
    fn ramsis_end_to_end_low_load_beats_fastest_model_accuracy() {
        // At light load the RAMSIS policy should select models more
        // accurate than the fastest one, without violating.
        let trace = Trace::constant(80.0, 10.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(4, 0.15)).unwrap();
        let mut scheme = ramsis_scheme(4, &[100.0, 400.0]);
        let mut monitor = OracleMonitor::new(trace.clone());
        let report = sim.run(&trace, &mut scheme, &mut monitor);
        let fast_acc = profile().accuracy(profile().fastest_model());
        assert!(
            report.accuracy_per_satisfied_query > fast_acc + 5.0,
            "accuracy {}",
            report.accuracy_per_satisfied_query
        );
        assert!(
            report.violation_rate < 0.05,
            "violation_rate={}",
            report.violation_rate
        );
    }

    #[test]
    fn ramsis_guarantee_brackets_simulation() {
        // §5.1/§7.3.1: expected accuracy lower-bounds and expected
        // violation upper-bounds the deterministic simulation.
        let load = 120.0;
        let trace = Trace::constant(load, 20.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(4, 0.15)).unwrap();
        let config = PolicyConfig::builder(Duration::from_millis(150))
            .workers(4)
            .discretization(Discretization::fixed_length(10))
            .build();
        let set = PolicySet::generate_poisson(profile(), &[load], &config).unwrap();
        let g = *set.policies()[0].guarantees();
        let mut scheme = RamsisScheme::new(set);
        let mut monitor = OracleMonitor::new(trace.clone());
        let report = sim.run(&trace, &mut scheme, &mut monitor);
        assert!(
            report.accuracy_per_satisfied_query >= g.expected_accuracy - 1.0,
            "observed {} vs expected {}",
            report.accuracy_per_satisfied_query,
            g.expected_accuracy
        );
        assert!(
            report.violation_rate <= g.expected_violation_rate + 0.02,
            "observed {} vs expected {}",
            report.violation_rate,
            g.expected_violation_rate
        );
    }

    #[test]
    fn stochastic_latency_at_least_as_good_as_deterministic() {
        // §7.3.1: the implementation (stochastic) achieves equal or
        // better accuracy than the simulation (deterministic p95)
        // because real invocations usually finish before their p95.
        let trace = Trace::constant(150.0, 15.0);
        let det = Simulation::new(profile(), SimulationConfig::new(4, 0.15)).unwrap();
        let sto = Simulation::new(profile(), SimulationConfig::new(4, 0.15).stochastic()).unwrap();
        let mut sd = ramsis_scheme(4, &[150.0]);
        let mut ss = ramsis_scheme(4, &[150.0]);
        let mut m1 = OracleMonitor::new(trace.clone());
        let mut m2 = OracleMonitor::new(trace.clone());
        let r_det = det.run(&trace, &mut sd, &mut m1);
        let r_sto = sto.run(&trace, &mut ss, &mut m2);
        assert!(
            r_sto.accuracy_per_satisfied_query >= r_det.accuracy_per_satisfied_query - 0.3,
            "stochastic {} vs deterministic {}",
            r_sto.accuracy_per_satisfied_query,
            r_det.accuracy_per_satisfied_query
        );
    }

    #[test]
    fn shortest_queue_routing_balances() {
        // 120 QPS over 4 workers is ~50% of the fastest model's
        // capacity — satisfiable under either balancer.
        let trace = Trace::from_interval_qps(&[120.0], 10.0, TraceKind::Custom);
        let sim = Simulation::new(profile(), SimulationConfig::new(4, 0.15)).unwrap();
        let config = PolicyConfig::builder(Duration::from_millis(150))
            .workers(4)
            .balancing(ramsis_core::Balancing::ShortestQueueFirst)
            .discretization(Discretization::fixed_length(10))
            .build();
        let set = PolicySet::generate_poisson(profile(), &[120.0], &config).unwrap();
        let mut scheme = RamsisScheme::with_shortest_queue(set);
        let mut monitor = OracleMonitor::new(trace.clone());
        let report = sim.run(&trace, &mut scheme, &mut monitor);
        assert_eq!(report.served, report.total_arrivals);
        assert!(
            report.violation_rate < 0.10,
            "violation={}",
            report.violation_rate
        );
    }

    #[test]
    fn stochastic_seeds_differ_deterministic_seeds_do_not() {
        let trace = Trace::constant(150.0, 3.0);
        let run = |config: SimulationConfig| {
            let sim = Simulation::new(profile(), config).unwrap();
            let mut scheme = GreedyFastest {
                model: profile().fastest_model(),
            };
            let mut monitor = LoadMonitor::new();
            sim.run(&trace, &mut scheme, &mut monitor)
        };
        // Different latency seeds change stochastic outcomes...
        let a = run(SimulationConfig::new(2, 0.15).stochastic().seeded(1));
        let mut cfg_b = SimulationConfig::new(2, 0.15).stochastic().seeded(1);
        cfg_b.latency_seed = 999;
        let b = run(cfg_b);
        assert_ne!(a.mean_response_s, b.mean_response_s);
        // ...but not deterministic ones.
        let c = run(SimulationConfig::new(2, 0.15).seeded(1));
        let mut cfg_d = SimulationConfig::new(2, 0.15).seeded(1);
        cfg_d.latency_seed = 999;
        let d = run(cfg_d);
        assert_eq!(c, d);
    }

    #[test]
    fn empty_trace_is_a_noop() {
        let sim = Simulation::new(profile(), SimulationConfig::new(2, 0.15)).unwrap();
        let mut scheme = GreedyFastest { model: 0 };
        let mut monitor = LoadMonitor::new();
        let report = sim.run_arrivals(&[], &mut scheme, &mut monitor);
        assert_eq!(report.total_arrivals, 0);
        assert_eq!(report.served, 0);
    }

    #[test]
    #[should_panic(expected = "batch")]
    fn oversized_batch_is_rejected() {
        struct Bad;
        impl ServingScheme for Bad {
            fn name(&self) -> &str {
                "bad"
            }
            fn routing(&self) -> Routing {
                Routing::Central
            }
            fn select(&mut self, ctx: &SelectionContext) -> Selection {
                Selection::Serve {
                    model: 0,
                    batch: ctx.queued as u32 + 5,
                }
            }
        }
        let sim = Simulation::new(profile(), SimulationConfig::new(1, 0.15)).unwrap();
        let mut monitor = LoadMonitor::new();
        let _ = sim.run_arrivals(&[0.0], &mut Bad, &mut monitor);
    }
}
