//! The discrete-event simulation engine.
//!
//! Events are processed in `(time, sequence)` order from a binary heap,
//! so runs are exactly reproducible. Two event kinds exist: a query
//! arrival at the central queue, and a worker completing a batch.
//! Workers never idle while their visible queue is non-empty (unless
//! the scheme explicitly declines to serve).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use ramsis_profiles::WorkerProfile;
use ramsis_workload::{sample_poisson_arrivals, LoadEstimator, Trace};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::latency::{LatencyMode, LatencySampler};
use crate::metrics::{MetricsCollector, SimulationReport};
use crate::query::{nanos_from_secs, secs_from_nanos, Nanos, Query};
use crate::scheme::{Routing, Selection, SelectionContext, ServingScheme};

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationConfig {
    /// Number of workers.
    pub workers: usize,
    /// Response-latency SLO in seconds (stamps query deadlines).
    pub slo_s: f64,
    /// Service-time realization mode.
    pub latency: LatencyMode,
    /// Seed for arrival-time sampling.
    pub arrival_seed: u64,
    /// Seed for stochastic service times.
    pub latency_seed: u64,
    /// Collect a per-window timeline in the report (window length in
    /// seconds); `None` disables it.
    pub timeline_window_s: Option<f64>,
}

impl SimulationConfig {
    /// A config with the given worker count and SLO, deterministic
    /// latency, and fixed seeds.
    pub fn new(workers: usize, slo_s: f64) -> Self {
        Self {
            workers,
            slo_s,
            latency: LatencyMode::DeterministicP95,
            arrival_seed: 1,
            latency_seed: 2,
            timeline_window_s: None,
        }
    }

    /// Enables per-window timeline collection.
    pub fn with_timeline(mut self, window_s: f64) -> Self {
        self.timeline_window_s = Some(window_s);
        self
    }

    /// Switches to stochastic ("prototype implementation") latency.
    pub fn stochastic(mut self) -> Self {
        self.latency = LatencyMode::Stochastic;
        self
    }

    /// Sets both seeds from one value (different streams derived).
    pub fn seeded(mut self, seed: u64) -> Self {
        self.arrival_seed = seed;
        self.latency_seed = seed ^ 0x9E37_79B9_7F4A_7C15;
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// Index into the pre-sampled arrival array.
    Arrival(u64),
    /// Worker finished its in-flight batch.
    WorkerDone(usize),
}

/// A simulation run binding worker profiles, a trace, and a scheme.
pub struct Simulation<'a> {
    /// Per-worker profiles; length 1 means a homogeneous cluster.
    profiles: Vec<&'a WorkerProfile>,
    config: SimulationConfig,
}

impl<'a> Simulation<'a> {
    /// Creates a run harness over a homogeneous cluster (every worker
    /// runs `profile`'s hardware and models).
    ///
    /// # Panics
    ///
    /// Panics if the config has no workers or a non-positive SLO.
    pub fn new(profile: &'a WorkerProfile, config: SimulationConfig) -> Self {
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.slo_s > 0.0, "SLO must be positive");
        Self {
            profiles: vec![profile],
            config,
        }
    }

    /// Creates a run harness over a *heterogeneous* cluster: one profile
    /// per worker (§7: "Worker homogeneity is not a fundamental
    /// requirement for RAMSIS since policies are generated per worker").
    /// All profiles must share the SLO class of the config.
    ///
    /// # Panics
    ///
    /// Panics if `profiles.len() != config.workers`, the config is
    /// degenerate, or a profile's SLO disagrees with the config's.
    pub fn heterogeneous(profiles: Vec<&'a WorkerProfile>, config: SimulationConfig) -> Self {
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.slo_s > 0.0, "SLO must be positive");
        assert_eq!(
            profiles.len(),
            config.workers,
            "one profile per worker ({} vs {})",
            profiles.len(),
            config.workers
        );
        for (w, p) in profiles.iter().enumerate() {
            assert!(
                (p.slo() - config.slo_s).abs() < 1e-9,
                "worker {w}'s profile was built for SLO {}s, config says {}s",
                p.slo(),
                config.slo_s
            );
        }
        Self { profiles, config }
    }

    /// The profile worker `w` runs.
    fn profile_of(&self, w: usize) -> &'a WorkerProfile {
        if self.profiles.len() == 1 {
            self.profiles[0]
        } else {
            self.profiles[w]
        }
    }

    /// Runs `scheme` over Poisson arrivals sampled from `trace`,
    /// reporting per-query outcomes. `estimator` is the load monitor
    /// shared by all evaluated systems (§6).
    pub fn run(
        &self,
        trace: &Trace,
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
    ) -> SimulationReport {
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.arrival_seed);
        let arrivals = sample_poisson_arrivals(trace, &mut rng);
        self.run_arrivals(&arrivals, scheme, estimator)
    }

    /// Runs `scheme` over explicit arrival times (seconds, sorted).
    pub fn run_arrivals(
        &self,
        arrivals: &[f64],
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
    ) -> SimulationReport {
        let slo = nanos_from_secs(self.config.slo_s);
        let n_workers = self.config.workers;
        let routing = scheme.routing();

        let mut sampler = LatencySampler::new(self.config.latency, self.config.latency_seed);
        let mut metrics = match self.config.timeline_window_s {
            Some(w) => MetricsCollector::new().with_timeline(w),
            None => MetricsCollector::new(),
        };

        // Per-worker queues (per-worker routing) or one central queue.
        let mut worker_queues: Vec<VecDeque<Query>> = vec![VecDeque::new(); n_workers];
        let mut central_queue: VecDeque<Query> = VecDeque::new();
        let mut busy = vec![false; n_workers];
        // In-flight batch per worker: (model, queries, started).
        let mut in_flight: Vec<Option<(usize, Vec<Query>, Nanos)>> = vec![None; n_workers];
        let mut rr_next = 0usize;

        let mut heap: BinaryHeap<Reverse<(Nanos, u64, EventKind)>> = BinaryHeap::new();
        let mut seq = 0u64;
        if !arrivals.is_empty() {
            heap.push(Reverse((
                nanos_from_secs(arrivals[0]),
                seq,
                EventKind::Arrival(0),
            )));
            seq += 1;
        }

        let mut horizon: Nanos = 0;

        while let Some(Reverse((now, _, kind))) = heap.pop() {
            horizon = horizon.max(now);
            match kind {
                EventKind::Arrival(i) => {
                    let idx = i as usize;
                    let t = nanos_from_secs(arrivals[idx]);
                    let q = Query::new(i, t, slo);
                    estimator.record_arrival(secs_from_nanos(t));
                    // Schedule the next arrival.
                    if idx + 1 < arrivals.len() {
                        heap.push(Reverse((
                            nanos_from_secs(arrivals[idx + 1]),
                            seq,
                            EventKind::Arrival(i + 1),
                        )));
                        seq += 1;
                    }
                    match routing {
                        Routing::PerWorkerRoundRobin => {
                            let w = rr_next;
                            rr_next = (rr_next + 1) % n_workers;
                            worker_queues[w].push_back(q);
                            if !busy[w] {
                                Self::dispatch(
                                    w,
                                    now,
                                    self.profile_of(w),
                                    scheme,
                                    estimator,
                                    &mut worker_queues[w],
                                    &mut busy,
                                    &mut in_flight,
                                    &mut sampler,
                                    &mut metrics,
                                    &mut heap,
                                    &mut seq,
                                );
                            }
                        }
                        Routing::PerWorkerShortestQueue => {
                            let w = (0..n_workers)
                                .min_by_key(|&w| (worker_queues[w].len(), w))
                                .expect("at least one worker");
                            worker_queues[w].push_back(q);
                            if !busy[w] {
                                Self::dispatch(
                                    w,
                                    now,
                                    self.profile_of(w),
                                    scheme,
                                    estimator,
                                    &mut worker_queues[w],
                                    &mut busy,
                                    &mut in_flight,
                                    &mut sampler,
                                    &mut metrics,
                                    &mut heap,
                                    &mut seq,
                                );
                            }
                        }
                        Routing::Central => {
                            central_queue.push_back(q);
                            if let Some(w) = busy.iter().position(|&b| !b) {
                                Self::dispatch(
                                    w,
                                    now,
                                    self.profile_of(w),
                                    scheme,
                                    estimator,
                                    &mut central_queue,
                                    &mut busy,
                                    &mut in_flight,
                                    &mut sampler,
                                    &mut metrics,
                                    &mut heap,
                                    &mut seq,
                                );
                            }
                        }
                    }
                }
                EventKind::WorkerDone(w) => {
                    let (model, queries, started) = in_flight[w]
                        .take()
                        .expect("completion implies in-flight work");
                    metrics.record_batch(self.profile_of(w), model, &queries, started, now);
                    busy[w] = false;
                    let queue = match routing {
                        Routing::Central => &mut central_queue,
                        _ => &mut worker_queues[w],
                    };
                    Self::dispatch(
                        w,
                        now,
                        self.profile_of(w),
                        scheme,
                        estimator,
                        queue,
                        &mut busy,
                        &mut in_flight,
                        &mut sampler,
                        &mut metrics,
                        &mut heap,
                        &mut seq,
                    );
                }
            }
        }

        metrics.report(
            scheme.name().to_owned(),
            arrivals.len() as u64,
            horizon,
            n_workers,
        )
    }

    /// Asks the scheme for decisions for worker `w` until it starts
    /// service, idles, or drains its queue (consecutive `Drop`
    /// selections shed instantly and re-ask, §4.3.1's drop
    /// reformulation).
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        w: usize,
        now: Nanos,
        profile: &WorkerProfile,
        scheme: &mut dyn ServingScheme,
        estimator: &mut dyn LoadEstimator,
        queue: &mut VecDeque<Query>,
        busy: &mut [bool],
        in_flight: &mut [Option<(usize, Vec<Query>, Nanos)>],
        sampler: &mut LatencySampler,
        metrics: &mut MetricsCollector,
        heap: &mut BinaryHeap<Reverse<(Nanos, u64, EventKind)>>,
        seq: &mut u64,
    ) {
        debug_assert!(!busy[w], "dispatch on a busy worker");
        while !queue.is_empty() {
            let earliest = queue.front().expect("queue checked non-empty");
            let ctx = SelectionContext {
                now_s: secs_from_nanos(now),
                load_qps: estimator.estimate(secs_from_nanos(now)),
                queued: queue.len(),
                earliest_slack_s: earliest.slack_at(now),
                worker: w,
            };
            match scheme.select(&ctx) {
                Selection::Idle => return,
                Selection::Drop { count } => {
                    assert!(
                        count >= 1 && count as usize <= queue.len(),
                        "scheme shed {count} from a queue of {}",
                        queue.len()
                    );
                    let shed: Vec<Query> = queue.drain(..count as usize).collect();
                    metrics.record_dropped(&shed);
                    // Shedding takes no time; ask again for the rest.
                }
                Selection::Serve { model, batch } => {
                    assert!(
                        batch >= 1 && batch as usize <= queue.len(),
                        "scheme chose batch {batch} from a queue of {}",
                        queue.len()
                    );
                    assert!(
                        model < profile.n_models(),
                        "scheme chose unknown model {model}"
                    );
                    let batch_queries: Vec<Query> = queue.drain(..batch as usize).collect();
                    let service = sampler.sample(profile, model, batch);
                    busy[w] = true;
                    in_flight[w] = Some((model, batch_queries, now));
                    heap.push(Reverse((
                        now + nanos_from_secs(service),
                        *seq,
                        EventKind::WorkerDone(w),
                    )));
                    *seq += 1;
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::RamsisScheme;
    use ramsis_core::{Discretization, PolicyConfig, PolicySet};
    use ramsis_profiles::{ModelCatalog, ProfilerConfig};
    use ramsis_workload::{LoadMonitor, OracleMonitor, TraceKind};
    use std::time::Duration;

    fn profile() -> &'static WorkerProfile {
        use std::sync::OnceLock;
        static PROFILE: OnceLock<WorkerProfile> = OnceLock::new();
        PROFILE.get_or_init(|| {
            WorkerProfile::build(
                &ModelCatalog::torchvision_image(),
                Duration::from_millis(150),
                ProfilerConfig::default(),
            )
        })
    }

    fn ramsis_scheme(workers: usize, loads: &[f64]) -> RamsisScheme {
        let config = PolicyConfig::builder(Duration::from_millis(150))
            .workers(workers)
            .discretization(Discretization::fixed_length(10))
            .build();
        RamsisScheme::new(PolicySet::generate_poisson(profile(), loads, &config).unwrap())
    }

    /// A trivially simple central-queue scheme for engine tests: always
    /// the fastest model, always the full visible queue.
    struct GreedyFastest {
        model: usize,
    }

    impl ServingScheme for GreedyFastest {
        fn name(&self) -> &str {
            "greedy-fastest"
        }
        fn routing(&self) -> Routing {
            Routing::Central
        }
        fn select(&mut self, ctx: &SelectionContext) -> Selection {
            Selection::Serve {
                model: self.model,
                batch: ctx.queued as u32,
            }
        }
    }

    #[test]
    fn conservation_every_arrival_is_served_once() {
        let trace = Trace::constant(300.0, 5.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(4, 0.15));
        let mut scheme = GreedyFastest {
            model: profile().fastest_model(),
        };
        let mut monitor = LoadMonitor::new();
        let report = sim.run(&trace, &mut scheme, &mut monitor);
        assert!(report.total_arrivals > 1_000);
        assert_eq!(report.served, report.total_arrivals);
        let per_model_total: u64 = report.per_model.iter().map(|&(_, c)| c).sum();
        assert_eq!(per_model_total, report.served);
    }

    #[test]
    fn runs_are_deterministic() {
        let trace = Trace::constant(200.0, 3.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(4, 0.15).seeded(9));
        let mut m1 = LoadMonitor::new();
        let mut m2 = LoadMonitor::new();
        let r1 = sim.run(
            &trace,
            &mut GreedyFastest {
                model: profile().fastest_model(),
            },
            &mut m1,
        );
        let r2 = sim.run(
            &trace,
            &mut GreedyFastest {
                model: profile().fastest_model(),
            },
            &mut m2,
        );
        assert_eq!(r1, r2);
    }

    #[test]
    fn underload_has_no_violations_with_fast_model() {
        // 40 QPS across 4 workers, fastest model: utilization ~20%.
        let trace = Trace::constant(40.0, 10.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(4, 0.15));
        let mut scheme = GreedyFastest {
            model: profile().fastest_model(),
        };
        let mut monitor = LoadMonitor::new();
        let report = sim.run(&trace, &mut scheme, &mut monitor);
        assert_eq!(
            report.violations, 0,
            "violation_rate={}",
            report.violation_rate
        );
        assert!(report.mean_response_s < 0.15);
    }

    #[test]
    fn overload_with_slow_model_violates() {
        // The most accurate model cannot sustain 400 QPS on 4 workers.
        let trace = Trace::constant(400.0, 5.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(4, 0.15));
        let slow = *profile().pareto_models().last().unwrap();
        let mut scheme = GreedyFastest { model: slow };
        let mut monitor = LoadMonitor::new();
        let report = sim.run(&trace, &mut scheme, &mut monitor);
        assert!(
            report.violation_rate > 0.5,
            "violation_rate={}",
            report.violation_rate
        );
        // Response times blow far past the SLO under queue buildup.
        assert!(report.p99_response_s > 0.15);
    }

    #[test]
    fn response_time_at_least_service_time() {
        let trace = Trace::constant(100.0, 5.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(2, 0.15));
        let mut scheme = GreedyFastest {
            model: profile().fastest_model(),
        };
        let mut monitor = LoadMonitor::new();
        let report = sim.run(&trace, &mut scheme, &mut monitor);
        let batch1 = profile().latency(profile().fastest_model(), 1).unwrap();
        assert!(report.mean_response_s >= batch1 * 0.9);
    }

    #[test]
    fn ramsis_end_to_end_low_load_beats_fastest_model_accuracy() {
        // At light load the RAMSIS policy should select models more
        // accurate than the fastest one, without violating.
        let trace = Trace::constant(80.0, 10.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(4, 0.15));
        let mut scheme = ramsis_scheme(4, &[100.0, 400.0]);
        let mut monitor = OracleMonitor::new(trace.clone());
        let report = sim.run(&trace, &mut scheme, &mut monitor);
        let fast_acc = profile().accuracy(profile().fastest_model());
        assert!(
            report.accuracy_per_satisfied_query > fast_acc + 5.0,
            "accuracy {}",
            report.accuracy_per_satisfied_query
        );
        assert!(
            report.violation_rate < 0.05,
            "violation_rate={}",
            report.violation_rate
        );
    }

    #[test]
    fn ramsis_guarantee_brackets_simulation() {
        // §5.1/§7.3.1: expected accuracy lower-bounds and expected
        // violation upper-bounds the deterministic simulation.
        let load = 120.0;
        let trace = Trace::constant(load, 20.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(4, 0.15));
        let config = PolicyConfig::builder(Duration::from_millis(150))
            .workers(4)
            .discretization(Discretization::fixed_length(10))
            .build();
        let set = PolicySet::generate_poisson(profile(), &[load], &config).unwrap();
        let g = *set.policies()[0].guarantees();
        let mut scheme = RamsisScheme::new(set);
        let mut monitor = OracleMonitor::new(trace.clone());
        let report = sim.run(&trace, &mut scheme, &mut monitor);
        assert!(
            report.accuracy_per_satisfied_query >= g.expected_accuracy - 1.0,
            "observed {} vs expected {}",
            report.accuracy_per_satisfied_query,
            g.expected_accuracy
        );
        assert!(
            report.violation_rate <= g.expected_violation_rate + 0.02,
            "observed {} vs expected {}",
            report.violation_rate,
            g.expected_violation_rate
        );
    }

    #[test]
    fn stochastic_latency_at_least_as_good_as_deterministic() {
        // §7.3.1: the implementation (stochastic) achieves equal or
        // better accuracy than the simulation (deterministic p95)
        // because real invocations usually finish before their p95.
        let trace = Trace::constant(150.0, 15.0);
        let det = Simulation::new(profile(), SimulationConfig::new(4, 0.15));
        let sto = Simulation::new(profile(), SimulationConfig::new(4, 0.15).stochastic());
        let mut sd = ramsis_scheme(4, &[150.0]);
        let mut ss = ramsis_scheme(4, &[150.0]);
        let mut m1 = OracleMonitor::new(trace.clone());
        let mut m2 = OracleMonitor::new(trace.clone());
        let r_det = det.run(&trace, &mut sd, &mut m1);
        let r_sto = sto.run(&trace, &mut ss, &mut m2);
        assert!(
            r_sto.accuracy_per_satisfied_query >= r_det.accuracy_per_satisfied_query - 0.3,
            "stochastic {} vs deterministic {}",
            r_sto.accuracy_per_satisfied_query,
            r_det.accuracy_per_satisfied_query
        );
    }

    #[test]
    fn shortest_queue_routing_balances() {
        // 120 QPS over 4 workers is ~50% of the fastest model's
        // capacity — satisfiable under either balancer.
        let trace = Trace::from_interval_qps(&[120.0], 10.0, TraceKind::Custom);
        let sim = Simulation::new(profile(), SimulationConfig::new(4, 0.15));
        let config = PolicyConfig::builder(Duration::from_millis(150))
            .workers(4)
            .balancing(ramsis_core::Balancing::ShortestQueueFirst)
            .discretization(Discretization::fixed_length(10))
            .build();
        let set = PolicySet::generate_poisson(profile(), &[120.0], &config).unwrap();
        let mut scheme = RamsisScheme::with_shortest_queue(set);
        let mut monitor = OracleMonitor::new(trace.clone());
        let report = sim.run(&trace, &mut scheme, &mut monitor);
        assert_eq!(report.served, report.total_arrivals);
        assert!(
            report.violation_rate < 0.10,
            "violation={}",
            report.violation_rate
        );
    }

    #[test]
    fn stochastic_seeds_differ_deterministic_seeds_do_not() {
        let trace = Trace::constant(150.0, 3.0);
        let run = |config: SimulationConfig| {
            let sim = Simulation::new(profile(), config);
            let mut scheme = GreedyFastest {
                model: profile().fastest_model(),
            };
            let mut monitor = LoadMonitor::new();
            sim.run(&trace, &mut scheme, &mut monitor)
        };
        // Different latency seeds change stochastic outcomes...
        let a = run(SimulationConfig::new(2, 0.15).stochastic().seeded(1));
        let mut cfg_b = SimulationConfig::new(2, 0.15).stochastic().seeded(1);
        cfg_b.latency_seed = 999;
        let b = run(cfg_b);
        assert_ne!(a.mean_response_s, b.mean_response_s);
        // ...but not deterministic ones.
        let c = run(SimulationConfig::new(2, 0.15).seeded(1));
        let mut cfg_d = SimulationConfig::new(2, 0.15).seeded(1);
        cfg_d.latency_seed = 999;
        let d = run(cfg_d);
        assert_eq!(c, d);
    }

    #[test]
    fn empty_trace_is_a_noop() {
        let sim = Simulation::new(profile(), SimulationConfig::new(2, 0.15));
        let mut scheme = GreedyFastest { model: 0 };
        let mut monitor = LoadMonitor::new();
        let report = sim.run_arrivals(&[], &mut scheme, &mut monitor);
        assert_eq!(report.total_arrivals, 0);
        assert_eq!(report.served, 0);
    }

    #[test]
    #[should_panic(expected = "batch")]
    fn oversized_batch_is_rejected() {
        struct Bad;
        impl ServingScheme for Bad {
            fn name(&self) -> &str {
                "bad"
            }
            fn routing(&self) -> Routing {
                Routing::Central
            }
            fn select(&mut self, ctx: &SelectionContext) -> Selection {
                Selection::Serve {
                    model: 0,
                    batch: ctx.queued as u32 + 5,
                }
            }
        }
        let sim = Simulation::new(profile(), SimulationConfig::new(1, 0.15));
        let mut monitor = LoadMonitor::new();
        let _ = sim.run_arrivals(&[0.0], &mut Bad, &mut monitor);
    }
}
