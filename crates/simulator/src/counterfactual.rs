//! Counterfactual regret analysis (DESIGN.md §13).
//!
//! A factual run is recorded with decision provenance
//! ([`Simulation::run_faulted_traced_decisions`]); a sample of its
//! selection-site decisions is then replayed with one forced
//! alternative action each ([`Simulation::replay_counterfactual`]), and
//! the exact objective delta — the *regret* of the chosen action
//! against that alternative — is aggregated by regime, reason code, and
//! fault-window membership. Replays are full deterministic re-runs, so
//! regrets are exact, not estimates: forcing a decision's own chosen
//! action reproduces the factual report byte for byte (the baseline
//! check [`RegretStudyConfig::verify_baseline`] asserts exactly that).

use std::collections::BTreeMap;

use ramsis_telemetry::{ChosenAction, DecisionRecord, NullSink, VecDecisionSink};
use ramsis_workload::{LoadEstimator, Trace};

use crate::engine::{ForcedDecision, Simulation};
use crate::faults::{FaultEvent, FaultPlan};
use crate::metrics::SimulationReport;
use crate::query::Nanos;
use crate::scheme::{Selection, ServingScheme};
use crate::SimError;

/// Limits for a [`regret_study`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegretStudyConfig {
    /// Upper bound on selection-site decisions examined; when the run
    /// made more, they are sampled at an even stride so coverage spans
    /// the whole horizon.
    pub max_decisions: usize,
    /// Upper bound on alternative actions replayed per decision.
    pub alternatives_per_decision: usize,
    /// Additionally replay each examined decision's own chosen action
    /// and require the report to reproduce the factual run byte for
    /// byte — the exact-regret baseline. Costs one extra replay per
    /// decision.
    pub verify_baseline: bool,
}

impl Default for RegretStudyConfig {
    fn default() -> Self {
        Self {
            max_decisions: 8,
            alternatives_per_decision: 3,
            verify_baseline: false,
        }
    }
}

/// One replayed alternative at one factual decision.
#[derive(Debug, Clone, PartialEq)]
pub struct RegretEntry {
    /// Decision index in the factual run.
    pub k: u64,
    /// Simulated time of the decision.
    pub at: Nanos,
    /// Load regime the scheme reported at the decision, if any.
    pub regime: Option<String>,
    /// Reason code of the factual decision (`DecisionRecord::reason`).
    pub reason: String,
    /// Whether the decision fell inside an injected fault window
    /// (crash-to-recovery, slowdown, or surge interval).
    pub in_fault_window: bool,
    /// The factual run's raw choice at this decision.
    pub chosen: ChosenAction,
    /// The alternative forced in the replay.
    pub alternative: Selection,
    /// `objective(counterfactual) - objective(factual)`: positive means
    /// the alternative would have done better, i.e. the chosen action
    /// carries that much regret against it.
    pub regret: f64,
    /// Factual violations minus counterfactual violations (positive:
    /// the alternative violated less).
    pub delta_violations: i64,
    /// Factual drops minus counterfactual drops.
    pub delta_dropped: i64,
}

/// Aggregated regret over one `(regime, reason, fault-window)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct RegretBucket {
    /// Load regime (`None` groups decisions without one).
    pub regime: Option<String>,
    /// Reason-code name of the bucketed decisions.
    pub reason: String,
    /// Whether the bucket covers decisions inside fault windows.
    pub in_fault_window: bool,
    /// Alternatives replayed in this cell.
    pub replays: u64,
    /// Sum of per-replay regrets.
    pub total_regret: f64,
    /// Largest single regret seen.
    pub max_regret: f64,
    /// Replays where the alternative strictly beat the chosen action.
    pub better_alternatives: u64,
}

/// Output of [`regret_study`].
#[derive(Debug, Clone, PartialEq)]
pub struct RegretStudy {
    /// Objective of the factual run ([`run_objective`]).
    pub factual_objective: f64,
    /// Selection-site decisions the factual run made in total.
    pub decisions_total: u64,
    /// Decisions actually examined (≤ `max_decisions`).
    pub decisions_examined: u64,
    /// Baseline replays that reproduced the factual report byte for
    /// byte (equals `decisions_examined` when `verify_baseline` is on).
    pub baselines_verified: u64,
    /// Every replayed alternative, in decision order.
    pub entries: Vec<RegretEntry>,
    /// Aggregates keyed by `(regime, reason, in_fault_window)`, sorted
    /// by total regret descending.
    pub buckets: Vec<RegretBucket>,
}

/// Scalar run objective used for exact regret: accuracy-weighted
/// satisfied fraction — `(APSQ / 100) · satisfied / arrivals` where
/// `satisfied = served − violations`. Rewards serving accurately within
/// the SLO and charges both sheds and violations, matching the paper's
/// twin headline metrics (violation rate and accuracy per satisfied
/// query) in one number.
pub fn run_objective(report: &SimulationReport) -> f64 {
    if report.total_arrivals == 0 {
        return 0.0;
    }
    let satisfied = report.served.saturating_sub(report.violations) as f64;
    (report.accuracy_per_satisfied_query / 100.0) * satisfied / report.total_arrivals as f64
}

/// Active-fault intervals of a plan, in seconds: crash-to-recovery per
/// worker (unrecovered crashes extend to infinity), slowdown spans, and
/// surge spans.
fn fault_windows(plan: &FaultPlan) -> Vec<(f64, f64)> {
    let mut wins = Vec::new();
    for ev in &plan.events {
        match *ev {
            FaultEvent::WorkerCrash { worker, at_s } => {
                let end = plan
                    .events
                    .iter()
                    .filter_map(|e| match *e {
                        FaultEvent::WorkerRecover { worker: w, at_s: r }
                            if w == worker && r >= at_s =>
                        {
                            Some(r)
                        }
                        _ => None,
                    })
                    .fold(f64::INFINITY, f64::min);
                wins.push((at_s, end));
            }
            FaultEvent::WorkerSlowdown { from_s, to_s, .. }
            | FaultEvent::ArrivalSurge { from_s, to_s, .. }
            | FaultEvent::WorkerFlap { from_s, to_s, .. }
            | FaultEvent::WorkerErrorRate { from_s, to_s, .. } => wins.push((from_s, to_s)),
            FaultEvent::WorkerRecover { .. } | FaultEvent::HeartbeatPartition { .. } => {}
        }
    }
    wins
}

fn in_windows(wins: &[(f64, f64)], at: Nanos) -> bool {
    let t = at as f64 / 1e9;
    wins.iter().any(|&(a, b)| t >= a && t < b)
}

/// The forced selection that reproduces a factual record's raw choice.
fn selection_of(chosen: &ChosenAction) -> Option<Selection> {
    match *chosen {
        ChosenAction::Serve { model, batch } => Some(Selection::Serve {
            model: model as usize,
            batch,
        }),
        ChosenAction::Shed { count } => Some(Selection::Drop { count }),
        ChosenAction::Idle => Some(Selection::Idle),
        ChosenAction::Hedge { .. } | ChosenAction::Retry { .. } => None,
    }
}

/// Alternative actions worth replaying at a record: the other candidate
/// models at the decision's batch (for a `Serve` choice), or serving at
/// all (for an `Idle` / `Shed` choice), in candidate order.
fn alternatives_of(rec: &DecisionRecord, limit: usize) -> Vec<Selection> {
    let skip_model = match rec.chosen {
        ChosenAction::Serve { model, .. } => Some(model),
        _ => None,
    };
    rec.candidates
        .iter()
        .filter(|c| Some(c.model) != skip_model)
        .take(limit)
        .map(|c| Selection::Serve {
            model: c.model as usize,
            batch: c.batch.max(1),
        })
        .collect()
}

/// Records and replays: runs the factual scenario with decision
/// provenance, then replays sampled selection-site decisions with
/// forced alternatives and aggregates exact regret.
///
/// `make_scheme` / `make_estimator` must build a *fresh* scheme and
/// estimator per call — replays mutate them, and any state carried
/// across runs would break determinism.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] when the factual run fails, a
/// replay fails, or (with [`RegretStudyConfig::verify_baseline`]) a
/// baseline replay does not reproduce the factual report byte for
/// byte.
pub fn regret_study(
    sim: &Simulation<'_>,
    trace: &Trace,
    plan: &FaultPlan,
    make_scheme: &mut dyn FnMut() -> Box<dyn ServingScheme>,
    make_estimator: &mut dyn FnMut() -> Box<dyn LoadEstimator>,
    cfg: &RegretStudyConfig,
) -> Result<RegretStudy, SimError> {
    let mut recorder = VecDecisionSink::new();
    let factual = {
        let mut scheme = make_scheme();
        let mut estimator = make_estimator();
        sim.run_faulted_traced_decisions(
            trace,
            plan,
            scheme.as_mut(),
            estimator.as_mut(),
            &mut NullSink,
            &mut recorder,
        )?
    };
    let factual_json = serde_json::to_string(&factual)
        .map_err(|e| SimError::InvalidConfig(format!("factual report serialization: {e}")))?;
    let factual_objective = run_objective(&factual);
    let wins = fault_windows(plan);

    // Branch points are the selection-site records: they carry MDP
    // state coordinates; retry / hedge / timeout records do not.
    let sites: Vec<&DecisionRecord> = recorder
        .records()
        .iter()
        .filter(|r| r.state.is_some())
        .collect();
    let stride = (sites.len() / cfg.max_decisions.max(1)).max(1);
    let picked: Vec<&DecisionRecord> = sites
        .iter()
        .step_by(stride)
        .take(cfg.max_decisions)
        .copied()
        .collect();

    let mut entries = Vec::new();
    let mut baselines_verified = 0u64;
    for rec in &picked {
        if cfg.verify_baseline {
            let own = selection_of(&rec.chosen)
                .expect("selection-site records always map to a selection");
            let mut scheme = make_scheme();
            let mut estimator = make_estimator();
            let replayed = sim.replay_counterfactual(
                trace,
                plan,
                scheme.as_mut(),
                estimator.as_mut(),
                &mut NullSink,
                ForcedDecision {
                    k: rec.k,
                    action: own,
                },
            )?;
            let json = serde_json::to_string(&replayed).map_err(|e| {
                SimError::InvalidConfig(format!("baseline report serialization: {e}"))
            })?;
            if json != factual_json {
                return Err(SimError::InvalidConfig(format!(
                    "counterfactual baseline mismatch at k={}: replaying the chosen \
                     action did not reproduce the factual report",
                    rec.k
                )));
            }
            baselines_verified += 1;
        }
        for alt in alternatives_of(rec, cfg.alternatives_per_decision) {
            let mut scheme = make_scheme();
            let mut estimator = make_estimator();
            let cf = sim.replay_counterfactual(
                trace,
                plan,
                scheme.as_mut(),
                estimator.as_mut(),
                &mut NullSink,
                ForcedDecision {
                    k: rec.k,
                    action: alt,
                },
            )?;
            entries.push(RegretEntry {
                k: rec.k,
                at: rec.at,
                regime: rec.regime.clone(),
                reason: rec.reason.name().to_string(),
                in_fault_window: in_windows(&wins, rec.at),
                chosen: rec.chosen,
                alternative: alt,
                regret: run_objective(&cf) - factual_objective,
                delta_violations: factual.violations as i64 - cf.violations as i64,
                delta_dropped: factual.dropped as i64 - cf.dropped as i64,
            });
        }
    }

    let mut cells: BTreeMap<(String, String, bool), RegretBucket> = BTreeMap::new();
    for e in &entries {
        let key = (
            e.regime.clone().unwrap_or_default(),
            e.reason.clone(),
            e.in_fault_window,
        );
        let cell = cells.entry(key).or_insert_with(|| RegretBucket {
            regime: e.regime.clone(),
            reason: e.reason.clone(),
            in_fault_window: e.in_fault_window,
            replays: 0,
            total_regret: 0.0,
            max_regret: f64::NEG_INFINITY,
            better_alternatives: 0,
        });
        cell.replays += 1;
        cell.total_regret += e.regret;
        cell.max_regret = cell.max_regret.max(e.regret);
        if e.regret > 0.0 {
            cell.better_alternatives += 1;
        }
    }
    let mut buckets: Vec<RegretBucket> = cells.into_values().collect();
    buckets.sort_by(|a, b| {
        b.total_regret
            .partial_cmp(&a.total_regret)
            .expect("regrets are finite")
    });

    Ok(RegretStudy {
        factual_objective,
        decisions_total: sites.len() as u64,
        decisions_examined: picked.len() as u64,
        baselines_verified,
        entries,
        buckets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimulationConfig;
    use crate::scheme::RamsisScheme;
    use ramsis_core::{Discretization, PolicyConfig, PolicySet};
    use ramsis_profiles::{ModelCatalog, ProfilerConfig, WorkerProfile};
    use ramsis_workload::LoadMonitor;
    use std::time::Duration;

    fn profile() -> &'static WorkerProfile {
        use std::sync::OnceLock;
        static PROFILE: OnceLock<WorkerProfile> = OnceLock::new();
        PROFILE.get_or_init(|| {
            WorkerProfile::build(
                &ModelCatalog::torchvision_image(),
                Duration::from_millis(150),
                ProfilerConfig::default(),
            )
        })
    }

    fn scheme() -> Box<dyn ServingScheme> {
        let config = PolicyConfig::builder(Duration::from_millis(150))
            .workers(2)
            .discretization(Discretization::fixed_length(10))
            .build();
        Box::new(RamsisScheme::new(
            PolicySet::generate_poisson(profile(), &[40.0, 80.0], &config).unwrap(),
        ))
    }

    fn scenario() -> (Simulation<'static>, Trace, FaultPlan) {
        let sim = Simulation::new(profile(), SimulationConfig::new(2, 0.15)).unwrap();
        let trace = Trace::constant(60.0, 10.0);
        let plan = FaultPlan::none().crash(0, 3.0).recover(0, 6.0);
        (sim, trace, plan)
    }

    #[test]
    fn study_verifies_baselines_and_buckets_regret() {
        let (sim, trace, plan) = scenario();
        let cfg = RegretStudyConfig {
            max_decisions: 4,
            alternatives_per_decision: 2,
            verify_baseline: true,
        };
        let study = regret_study(
            &sim,
            &trace,
            &plan,
            &mut || scheme(),
            &mut || Box::new(LoadMonitor::new()),
            &cfg,
        )
        .unwrap();
        assert!(study.decisions_total > 0);
        assert!(study.decisions_examined <= 4);
        assert_eq!(study.baselines_verified, study.decisions_examined);
        assert!(!study.entries.is_empty());
        let bucketed: u64 = study.buckets.iter().map(|b| b.replays).sum();
        assert_eq!(bucketed, study.entries.len() as u64);
        for pair in study.buckets.windows(2) {
            assert!(pair[0].total_regret >= pair[1].total_regret);
        }
    }

    #[test]
    fn objective_is_zero_on_empty_runs_and_bounded() {
        let (sim, trace, plan) = scenario();
        let mut s = scheme();
        let mut est = LoadMonitor::new();
        let report = sim
            .run_faulted(&trace, &plan, s.as_mut(), &mut est)
            .unwrap();
        let obj = run_objective(&report);
        assert!((0.0..=1.0).contains(&obj), "objective {obj} out of range");
    }
}
